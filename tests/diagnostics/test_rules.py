"""Every diagnostics rule fires on its seeded-defect fixtures.

Each fixture under ``fixtures/`` plants exactly one kind of defect; the
parametrised test asserts that the intended rule fires at the intended
severity.  Co-findings are allowed (a provably dead branch legitimately
also makes its target unreachable) -- the assertion is membership, not
exclusivity.
"""

from __future__ import annotations

import json

import pytest

from repro.core import counters as counters_mod
from repro.core.propagation import FunctionPrediction
from repro.core.rangeset import RangeSet
from repro.diagnostics import (
    ERROR,
    RULES,
    RULES_BY_ID,
    WARNING,
    all_findings,
    check_source,
)
from repro.lang import compile_source
from repro.ir import prepare_module

# fixture file -> (rule id, severity) that must be among the findings.
EXPECTED = [
    ("dead_branch_a.toy", "dead-branch", WARNING),
    ("dead_branch_b.toy", "dead-branch", WARNING),
    ("bounds_a.toy", "array-bounds", ERROR),
    ("bounds_b.toy", "array-bounds", WARNING),
    ("div_a.toy", "div-by-zero", ERROR),
    ("div_b.toy", "div-by-zero", WARNING),
    ("unreachable_a.toy", "unreachable-block", WARNING),
    ("unreachable_b.toy", "unreachable-block", WARNING),
    ("zero_trip_a.toy", "zero-trip-loop", WARNING),
    ("zero_trip_b.toy", "zero-trip-loop", WARNING),
    ("nonterm_a.toy", "non-terminating-loop", ERROR),
    ("nonterm_b.toy", "non-terminating-loop", ERROR),
    ("uninit_a.toy", "uninit-value", ERROR),
    ("uninit_b.toy", "uninit-value", WARNING),
    ("unreachable_fn_a.toy", "unreachable-function", WARNING),
    ("unreachable_fn_b.toy", "unreachable-function", WARNING),
]


@pytest.mark.parametrize("name,rule,severity", EXPECTED)
def test_fixture_fires_rule(fixture_source, name, rule, severity):
    report = check_source(fixture_source(name), program=name)
    fired = {(f.rule, f.severity) for f in report.findings}
    assert (rule, severity) in fired, f"{name}: got {sorted(fired)}"


@pytest.mark.parametrize("name,rule,severity", EXPECTED)
def test_findings_are_well_formed(fixture_source, name, rule, severity):
    report = check_source(fixture_source(name), program=name)
    assert report.findings
    for finding in report.findings:
        assert finding.rule in RULES_BY_ID
        # Module-scoped rules (unreachable-function) report the affected
        # function, which is by definition not the entry point.
        assert finding.function
        assert finding.block
        assert finding.message
        if finding.line is not None:
            assert finding.line >= 1
        # Evidence payloads must be machine-readable (JSON-serialisable).
        json.dumps(finding.evidence)


def test_every_rule_covered_by_fixtures():
    covered = {rule for _, rule, _ in EXPECTED}
    assert covered == {rule.id for rule in RULES}


def test_findings_sorted_most_severe_first(fixture_source):
    report = check_source(fixture_source("nonterm_b.toy"), program="nonterm_b")
    severities = [f.severity for f in report.findings]
    assert severities[0] == ERROR
    assert severities == sorted(
        severities, key=lambda s: 0 if s == ERROR else 1
    )
    assert report.worst_severity() == ERROR
    assert report.fails("error")
    assert not report.fails("never")


def test_clean_source_has_no_findings():
    source = """
    func main(n) {
      array a[16];
      var total = 0;
      for (i = 0; i < 16; i = i + 1) {
        a[i] = input() % 100;
      }
      for (i = 0; i < 16; i = i + 1) {
        total = total + a[i];
      }
      if (n > 0) {
        total = total / n;
      }
      return total;
    }
    """
    report = check_source(source, program="clean")
    assert report.findings == []
    assert report.worst_severity() is None
    assert not report.fails("warning")


def test_aborted_prediction_is_silent(fixture_source):
    """No rule may fire on a best-effort (aborted) analysis."""
    module = compile_source(fixture_source("div_a.toy"), module_name="div_a")
    prepare_module(module)
    function = module.functions["main"]
    prediction = FunctionPrediction(
        function=function,
        branch_probability={},
        edge_frequency={},
        block_frequency={},
        values={},
        used_heuristic=set(),
        counters=counters_mod.Counters(),
        return_set=RangeSet.bottom(),
        aborted=True,
    )
    assert all_findings(function, prediction) == []
