"""Abstract syntax tree node classes for the toy language.

The AST is deliberately small: integers are the only scalar type, arrays
are one-dimensional integer buffers, and functions take and return
integers.  ``input()`` reads the next value of the external input stream
(statically unknown -- it is what forces the analysis into heuristic
fallback, like a memory load in the paper).
"""

from __future__ import annotations

from typing import List, Optional


class Node:
    """Base class for AST nodes; carries a source line for diagnostics."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0):
        self.line = line


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value

    def __repr__(self) -> str:
        return f"IntLit({self.value})"


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class BinaryExpr(Expr):
    """Arithmetic/bitwise/comparison binary expression (not && / ||)."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"BinaryExpr({self.op!r}, {self.lhs!r}, {self.rhs!r})"


class LogicalExpr(Expr):
    """Short-circuit ``&&`` / ``||``."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"LogicalExpr({self.op!r}, {self.lhs!r}, {self.rhs!r})"


class UnaryExpr(Expr):
    """Unary ``-`` (negation) or ``!`` (logical not)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"UnaryExpr({self.op!r}, {self.operand!r})"


class CallExpr(Expr):
    __slots__ = ("callee", "args")

    def __init__(self, callee: str, args: List[Expr], line: int = 0):
        super().__init__(line)
        self.callee = callee
        self.args = args

    def __repr__(self) -> str:
        return f"CallExpr({self.callee!r}, {self.args!r})"


class IndexExpr(Expr):
    """Array read ``name[index]``."""

    __slots__ = ("array", "index")

    def __init__(self, array: str, index: Expr, line: int = 0):
        super().__init__(line)
        self.array = array
        self.index = index

    def __repr__(self) -> str:
        return f"IndexExpr({self.array!r}, {self.index!r})"


class InputExpr(Expr):
    """``input()`` -- next external input value; statically unknown."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "InputExpr()"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: List[Stmt], line: int = 0):
        super().__init__(line)
        self.statements = statements

    def __repr__(self) -> str:
        return f"Block({self.statements!r})"


class Assign(Stmt):
    """``name = expr;`` (also produced by ``var name = expr;``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr, line: int = 0):
        super().__init__(line)
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"Assign({self.name!r}, {self.value!r})"


class ArrayDecl(Stmt):
    """``array name[size];``"""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int, line: int = 0):
        super().__init__(line)
        self.name = name
        self.size = size

    def __repr__(self) -> str:
        return f"ArrayDecl({self.name!r}, {self.size})"


class ArrayAssign(Stmt):
    """``name[index] = value;``"""

    __slots__ = ("array", "index", "value")

    def __init__(self, array: str, index: Expr, value: Expr, line: int = 0):
        super().__init__(line)
        self.array = array
        self.index = index
        self.value = value

    def __repr__(self) -> str:
        return f"ArrayAssign({self.array!r}, {self.index!r}, {self.value!r})"


class If(Stmt):
    __slots__ = ("condition", "then_block", "else_block")

    def __init__(self, condition: Expr, then_block: Block,
                 else_block: Optional[Block] = None, line: int = 0):
        super().__init__(line)
        self.condition = condition
        self.then_block = then_block
        self.else_block = else_block

    def __repr__(self) -> str:
        return f"If({self.condition!r}, {self.then_block!r}, {self.else_block!r})"


class While(Stmt):
    __slots__ = ("condition", "body")

    def __init__(self, condition: Expr, body: Block, line: int = 0):
        super().__init__(line)
        self.condition = condition
        self.body = body

    def __repr__(self) -> str:
        return f"While({self.condition!r}, {self.body!r})"


class DoWhile(Stmt):
    __slots__ = ("body", "condition")

    def __init__(self, body: Block, condition: Expr, line: int = 0):
        super().__init__(line)
        self.body = body
        self.condition = condition

    def __repr__(self) -> str:
        return f"DoWhile({self.body!r}, {self.condition!r})"


class For(Stmt):
    """``for (init; condition; update) body`` -- init/update are statements."""

    __slots__ = ("init", "condition", "update", "body")

    def __init__(self, init: Optional[Stmt], condition: Optional[Expr],
                 update: Optional[Stmt], body: Block, line: int = 0):
        super().__init__(line)
        self.init = init
        self.condition = condition
        self.update = update
        self.body = body

    def __repr__(self) -> str:
        return f"For({self.init!r}, {self.condition!r}, {self.update!r}, {self.body!r})"


class Break(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Break()"


class Continue(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Continue()"


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr] = None, line: int = 0):
        super().__init__(line)
        self.value = value

    def __repr__(self) -> str:
        return f"Return({self.value!r})"


class ExprStmt(Stmt):
    """An expression evaluated for side effects (typically a call)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr

    def __repr__(self) -> str:
        return f"ExprStmt({self.expr!r})"


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


class FuncDef(Node):
    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: List[str], body: Block, line: int = 0):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body

    def __repr__(self) -> str:
        return f"FuncDef({self.name!r}, {self.params!r})"


class ConstDef(Node):
    """Top-level ``const NAME = <constant expression>;``."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr, line: int = 0):
        super().__init__(line)
        self.name = name
        self.value = value

    def __repr__(self) -> str:
        return f"ConstDef({self.name!r}, {self.value!r})"


class Program(Node):
    __slots__ = ("functions", "constants")

    def __init__(self, functions: List[FuncDef], constants: Optional[List[ConstDef]] = None):
        super().__init__(0)
        self.functions = functions
        self.constants = constants or []

    def __repr__(self) -> str:
        return f"Program({[f.name for f in self.functions]!r})"
