"""Shard worker processes for the scale-out serving tier.

A shard is one OS process holding everything expensive to rebuild: the
imported engine, the perf layer's interning/memoization caches, and a
shard-local in-memory result LRU over the *shared* on-disk cache
directory.  The GIL caps a single Python process at roughly one core of
analysis no matter how many threads it runs; N shard processes are N
cores of analysis, and the consistent-hash router
(:mod:`repro.server.router`) keeps each shard's hot caches hot by
always sending the same content address to the same shard.

Wire protocol (pickled dicts over a duplex :func:`multiprocessing.Pipe`,
all sends complete messages so the selector-driven parent never blocks
mid-frame):

parent -> shard
    ``{"op": "request", "id": n, "body": {...}, "command": ..., "trace_id": ...}``
    ``None``                          -- drain: finish up and exit

shard -> parent
    ``{"op": "ready", "shard": i, "pid": p, "stats": {...}}``  once, at boot
    ``{"op": "response", "id": n, "response": {...},
       "http_status": 200|500, "shard": i, "stats": {...}}``

Every response piggybacks a small stats snapshot (cache counters +
served count), so the front end always has a recent per-shard view for
``/metricsz`` without a blocking round trip into a shard that may be
mid-analysis.

Shards process one request at a time: cross-request concurrency is the
*shard count*, which is the whole point -- in-shard thread pools would
just re-serialise on the GIL.  Per-request deadlines and degradation
still work exactly as in the single-process daemon because they live in
:class:`~repro.server.service.AnalysisService`, which runs here
unchanged; that is also what makes sharded responses byte-identical to
the one-shot CLI at every shard count.

Shards ignore SIGINT/SIGTERM: shutdown is the parent's drain protocol
(a ``None`` sentinel after all in-flight responses are collected), so a
Ctrl-C delivered to the process group cannot kill a shard while the
front end still owes its clients responses.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Dict, Optional

#: Analysed once at shard boot, result discarded: pulls the whole
#: lexer->predictor import chain and primes the perf layer before the
#: shard reports ready, so the first real request pays no import tax.
WARMUP_SOURCE = "func main(n) { if (n > 0) { return n; } return 0; }"


def _shard_stats(cache, served: int, degraded: int, incremental_store=None) -> dict:
    """The per-shard telemetry piggybacked on every reply."""
    stats = {"cache": cache.stats(), "served": served, "degraded": degraded}
    if incremental_store is not None:
        stats["incremental"] = incremental_store.stats()
    return stats


def shard_main(conn, shard_id: int, settings: dict) -> None:
    """The shard process body: serve requests from ``conn`` until drained.

    ``settings`` carries the picklable subset of the daemon's
    configuration: ``cache_dir`` (shared across shards),
    ``memory_cache_entries`` (the shard-local LRU bound), ``timeout_s``,
    ``base_options``, and ``incremental`` (consult the per-function
    summary store on whole-file cache misses; its disk tier, when
    ``cache_dir`` is set, is shared across shards like the result
    cache's).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    from repro.server.cache import ResultCache
    from repro.server.service import AnalysisService, analyze_payload

    cache = ResultCache(
        memory_entries=int(settings.get("memory_cache_entries", 1024)),
        disk_dir=settings.get("cache_dir"),
    )
    incremental_store = None
    if settings.get("incremental"):
        from repro.incremental import IncrementalStore

        cache_dir = settings.get("cache_dir")
        incremental_store = IncrementalStore(
            disk_dir=os.path.join(cache_dir, "incremental") if cache_dir else None
        )
    service = AnalysisService(
        cache=cache,
        timeout_s=settings.get("timeout_s"),
        base_options=settings.get("base_options"),
        incremental_store=incremental_store,
    )
    try:
        # Warm the resident engine outside the cache: the warmup result
        # must not occupy an LRU slot or write a disk entry.
        analyze_payload("predict", WARMUP_SOURCE, "-", {})
    except Exception:  # pragma: no cover -- warmup is best-effort
        pass

    served = 0
    degraded = 0
    try:
        conn.send(
            {
                "op": "ready",
                "shard": shard_id,
                "pid": os.getpid(),
                "stats": _shard_stats(cache, served, degraded, incremental_store),
            }
        )
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent died; nothing left to answer to
            if message is None:
                return  # drain sentinel
            if not isinstance(message, dict) or message.get("op") != "request":
                continue
            http_status = 200
            try:
                response = service.execute_item(
                    message.get("body"),
                    message.get("command"),
                    trace_id=message.get("trace_id"),
                )
            except Exception as error:  # noqa: BLE001 -- a shard must not die
                response = {
                    "status": "error",
                    "command": message.get("command"),
                    "output": "",
                    "exit_code": 1,
                    "degraded": False,
                    "error": f"internal error: {error}",
                    "key": None,
                    "cached": None,
                    "elapsed_ms": 0.0,
                }
                http_status = 500
            served += 1
            if response.get("degraded"):
                degraded += 1
            try:
                conn.send(
                    {
                        "op": "response",
                        "id": message.get("id"),
                        "response": response,
                        "http_status": http_status,
                        "shard": shard_id,
                        "stats": _shard_stats(cache, served, degraded, incremental_store),
                    }
                )
            except (BrokenPipeError, OSError):
                return
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardHandle:
    """The parent-side view of one shard: process + pipe + counters.

    All mutation happens on the front end's event-loop thread, so the
    counters need no locks; ``/metricsz`` reads go through the front
    end's snapshot methods which copy them.
    """

    def __init__(self, shard_id: int, settings: dict, mp_context=None):
        self.shard_id = shard_id
        self.settings = dict(settings)
        self._mp = mp_context if mp_context is not None else multiprocessing.get_context()
        #: Requests dispatched and not yet answered (the bounded queue).
        self.inflight = 0
        self.high_water = 0
        self.restarts = 0
        #: Latest piggybacked stats snapshot from the shard.
        self.stats_snapshot: dict = {"cache": {}, "served": 0, "degraded": 0}
        self.ready = False
        self.process = None
        self.conn = None
        self._spawn()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> None:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        self.process = self._mp.Process(
            target=shard_main,
            args=(child_conn, self.shard_id, self.settings),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.ready = False

    def wait_ready(self, timeout_s: float = 60.0) -> dict:
        """Block until the shard's ready handshake (boot-time only)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.conn.poll(0.05):
                message = self.conn.recv()
                if isinstance(message, dict) and message.get("op") == "ready":
                    self.stats_snapshot = message.get("stats") or self.stats_snapshot
                    self.ready = True
                    return message
            if not self.process.is_alive():
                break
        raise RuntimeError(
            f"shard {self.shard_id} never became ready "
            f"(alive={self.process.is_alive()})"
        )

    def respawn(self) -> None:
        """Replace a dead shard process (crash resilience, not drain)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():  # pragma: no cover -- defensive
            self.process.terminate()
        self.process.join(timeout=5.0)
        self.restarts += 1
        self.inflight = 0
        self._spawn()
        self.wait_ready()

    def shutdown(self, timeout_s: float = 10.0) -> bool:
        """Send the drain sentinel and collect the process."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=timeout_s)
        collected = not self.process.is_alive()
        if not collected:
            self.process.terminate()
            self.process.join(timeout=5.0)
            collected = not self.process.is_alive()
        try:
            self.conn.close()
        except OSError:
            pass
        return collected

    # -- event-loop-side accessors -------------------------------------------

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def fileno(self) -> int:
        return self.conn.fileno()

    def send_request(
        self,
        request_id: int,
        body: dict,
        command: Optional[str],
        trace_id: Optional[str],
    ) -> None:
        """Dispatch one request; the caller accounts ``inflight``."""
        self.conn.send(
            {
                "op": "request",
                "id": request_id,
                "body": body,
                "command": command,
                "trace_id": trace_id,
            }
        )
        self.inflight += 1
        self.high_water = max(self.high_water, self.inflight)

    def snapshot(self) -> Dict[str, object]:
        """The per-shard document for ``/metricsz`` (``server.shards``)."""
        out = {
            "shard": self.shard_id,
            "queue": {"depth": self.inflight, "high_water": self.high_water},
            "cache": dict(self.stats_snapshot.get("cache") or {}),
            "served": int(self.stats_snapshot.get("served", 0)),
            "degraded": int(self.stats_snapshot.get("degraded", 0)),
            "alive": self.alive,
            "restarts": self.restarts,
        }
        incremental = self.stats_snapshot.get("incremental")
        if incremental is not None:
            # Present only when the shard runs with the summary store,
            # so non-incremental snapshots keep their pre-store shape.
            out["incremental"] = dict(incremental)
        return out
