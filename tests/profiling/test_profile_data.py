"""Branch profile aggregation and the profile predictor."""

import pytest

from repro.profiling import BranchProfile, ProfilePredictor, run_module

from tests.helpers import compile_and_prepare

SOURCE = """
func main(n) {
  var low = 0;
  for (i = 0; i < n; i = i + 1) {
    if (input() % 4 == 0) { low = low + 1; }
  }
  return low;
}
"""


def run_once(args, inputs):
    module, _ = compile_and_prepare(SOURCE)
    return module, run_module(module, args=args, input_values=inputs)


class TestBranchProfile:
    def test_from_single_run(self):
        module, result = run_once([8], [0, 1, 2, 3, 4, 5, 6, 7])
        profile = BranchProfile.from_runs([result])
        branches = profile.branches_of("main")
        assert branches  # both branches observed
        # The mod-4 branch was taken exactly twice out of eight.
        assert any(abs(p - 0.25) < 1e-9 for p in branches.values())

    def test_accumulation_across_runs(self):
        module, first = run_once([4], [0, 0, 0, 0])
        _, second = run_once([4], [1, 1, 1, 1])
        profile = BranchProfile.from_runs([first, second])
        # Taken 4/8 across both runs for the mod branch.
        assert any(
            abs(p - 0.5) < 1e-9 for p in profile.branches_of("main").values()
        )

    def test_execution_count(self):
        module, result = run_once([5], [0] * 5)
        profile = BranchProfile.from_runs([result])
        counts = [
            profile.execution_count("main", label)
            for label in profile.branches_of("main")
        ]
        assert 5 in counts  # the if ran five times

    def test_probability_of_unknown_branch_is_none(self):
        profile = BranchProfile()
        assert profile.probability("main", "nowhere") is None
        assert profile.execution_count("main", "nowhere") == 0


class TestProfilePredictor:
    def test_predicts_observed_probability(self):
        module, result = run_once([8], [0, 1, 2, 3, 4, 5, 6, 7])
        predictor = ProfilePredictor(BranchProfile.from_runs([result]))
        predictions = predictor.predict_function(module.function("main"))
        assert any(abs(p - 0.25) < 1e-9 for p in predictions.values())

    def test_unseen_branch_gets_default(self):
        module, _ = compile_and_prepare(SOURCE)
        predictor = ProfilePredictor(BranchProfile(), unseen=0.7)
        predictions = predictor.predict_function(module.function("main"))
        assert predictions
        assert all(p == 0.7 for p in predictions.values())
