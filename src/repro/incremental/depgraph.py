"""The summary dependency graph: what an edit invalidates.

Interprocedural dependence is *bidirectional*: editing ``f`` moves the
jump functions of its callees (argument ranges and call-site weights
flow downward) and the return functions of its callers (return ranges
flow upward).  The set of functions whose summaries can change when
``f`` changes is therefore the transitive closure over the *undirected*
call graph -- the weakly connected component of ``f``.  Conversely, no
call edge crosses a component boundary (by definition of weak
connectivity), so each component's fixed point is exactly
self-contained: a clean component can be replayed from the store while
a dirty one re-runs its rounds in isolation, and the union is
byte-identical to a cold whole-module run.

Components are SCC-aware: member order mirrors the interprocedural
driver's bottom-up (callee-first, Tarjan condensation) order, which is
also the replay and storage order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.callgraph import CallGraph


class SummaryDepGraph:
    """Weakly connected callgraph components in bottom-up order."""

    def __init__(self, callgraph: CallGraph):
        self.callgraph = callgraph
        order = callgraph.bottom_up_order()
        position = {name: index for index, name in enumerate(order)}
        adjacency: Dict[str, Set[str]] = {name: set() for name in order}
        for name in order:
            for callee in callgraph.callees.get(name, ()):
                if callee in adjacency:
                    adjacency[name].add(callee)
                    adjacency[callee].add(name)
        #: Components as tuples of function names, callees first.
        self.components: List[Tuple[str, ...]] = []
        #: Function name -> index into :attr:`components`.
        self.component_index: Dict[str, int] = {}
        seen: Set[str] = set()
        for name in order:
            if name in seen:
                continue
            members = [name]
            seen.add(name)
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for neighbour in adjacency[current]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        members.append(neighbour)
                        frontier.append(neighbour)
            members.sort(key=position.__getitem__)
            index = len(self.components)
            self.components.append(tuple(members))
            for member in members:
                self.component_index[member] = index

    def component_of(self, name: str) -> Tuple[str, ...]:
        """The weakly connected component containing ``name``."""
        return self.components[self.component_index[name]]

    def affected(self, edited: Iterable[str]) -> Set[str]:
        """Every function whose summary an edit to ``edited`` can move:
        the edited functions plus their summary-dependents."""
        out: Set[str] = set()
        for name in edited:
            if name in self.component_index:
                out.update(self.component_of(name))
        return out

    def dependents(self, edited: Iterable[str]) -> Set[str]:
        """The summary-dependents alone (affected minus edited)."""
        edited = set(edited)
        return self.affected(edited) - edited
