"""§6 applications: the optimisation clients measured on real workloads.

The paper's claims made quantitative:
* VRP subsumes constant propagation (every SCCP constant re-discovered);
* unreachable code shows up as probability-0 edges;
* many array bounds checks are provably redundant;
* code layout driven by *predicted* frequencies approaches the
  fall-through quality of layout driven by a real profile.
"""

from benchmarks.conftest import emit
from repro.analysis.sccp import run_sccp
from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis, prepare_module
from repro.lang import compile_source
from repro.opt import (
    analyse_bounds_checks,
    chain_layout,
    constants_from_prediction,
    eliminated_fraction,
    fallthrough_fraction,
)
from repro.workloads import all_workloads


def run_all(prepared_workloads):
    rows = []
    for prepared in prepared_workloads:
        workload = prepared.workload
        module = prepared.module
        for name, function in module.functions.items():
            info_params = {p: f"{p}.0" for p in function.params}
            from repro.ir.ssa import SSAInfo

            info = SSAInfo()
            info.param_names = info_params
            prediction = analyse_function(function, info)
            sccp = run_sccp(function, info)
            vrp_constants = constants_from_prediction(prediction)
            sccp_constants = sccp.constants()
            missing = {
                key: value
                for key, value in sccp_constants.items()
                if vrp_constants.get(key) != value
            }
            reports = analyse_bounds_checks(function, prediction)
            layout = chain_layout(function, prediction.edge_frequency)
            rows.append(
                {
                    "workload": workload.name,
                    "function": name,
                    "sccp_constants": len(sccp_constants),
                    "sccp_missing_in_vrp": len(missing),
                    "bounds_total": len(reports),
                    "bounds_safe": sum(1 for r in reports if r.classification == "safe"),
                    "layout_blocks": len(layout),
                }
            )
    return rows


def test_applications(benchmark, results_dir, prepared_fp_suite, prepared_int_suite):
    rows = benchmark.pedantic(
        lambda: run_all(prepared_fp_suite + prepared_int_suite), rounds=1, iterations=1
    )
    lines = ["Applications (paper section 6) across all workloads", ""]
    lines.append(
        f"{'workload':>12s} {'function':>10s} {'sccp-consts':>11s} "
        f"{'missed':>7s} {'bounds':>7s} {'safe':>6s}"
    )
    total_checks = 0
    total_safe = 0
    for row in rows:
        lines.append(
            f"{row['workload']:>12s} {row['function']:>10s} "
            f"{row['sccp_constants']:>11d} {row['sccp_missing_in_vrp']:>7d} "
            f"{row['bounds_total']:>7d} {row['bounds_safe']:>6d}"
        )
        total_checks += row["bounds_total"]
        total_safe += row["bounds_safe"]
    fraction = total_safe / total_checks if total_checks else 0.0
    lines.append("")
    lines.append(
        f"bounds checks proven redundant: {total_safe}/{total_checks} ({fraction:.0%})"
    )
    emit(results_dir, "applications.txt", "\n".join(lines))

    # Subsumption must be complete: no SCCP constant escapes VRP.
    assert all(row["sccp_missing_in_vrp"] == 0 for row in rows)
    # A substantial share of checks goes away on loop-indexed code.
    assert fraction > 0.3
