"""Dominator tree and dominance frontier tests."""

from repro.ir.cfg import CFG
from repro.ir.dominance import DominatorTree
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Cmp, Jump, Return
from repro.ir.values import Constant, Temp


def build(edges, entry="entry"):
    """Build a function from an edge list; blocks get trivial contents."""
    function = Function("g")
    labels = []
    for src, dst in edges:
        for label in (src, dst):
            if label not in labels:
                labels.append(label)
    if entry in labels:
        labels.remove(entry)
    labels.insert(0, entry)
    successors = {}
    for src, dst in edges:
        successors.setdefault(src, []).append(dst)
    for label in labels:
        function.add_block(BasicBlock(label))
    for label in labels:
        block = function.block(label)
        succs = successors.get(label, [])
        if not succs:
            block.append(Return(Constant(0)))
        elif len(succs) == 1:
            block.append(Jump(succs[0]))
        else:
            block.append(Cmp(Temp(f"c_{label}"), "lt", Temp("n"), Constant(0)))
            block.append(Branch(Temp(f"c_{label}"), succs[0], succs[1]))
    return function


class TestImmediateDominators:
    def test_diamond(self):
        function = build(
            [("entry", "a"), ("entry", "b"), ("a", "join"), ("b", "join")]
        )
        dom = DominatorTree(CFG(function))
        assert dom.idom["a"] == "entry"
        assert dom.idom["b"] == "entry"
        assert dom.idom["join"] == "entry"
        assert dom.idom["entry"] is None

    def test_chain(self):
        function = build([("entry", "a"), ("a", "b"), ("b", "c")])
        dom = DominatorTree(CFG(function))
        assert dom.idom["c"] == "b"
        assert dom.idom["b"] == "a"

    def test_loop(self):
        function = build(
            [("entry", "header"), ("header", "body"), ("header", "exit"),
             ("body", "header")]
        )
        dom = DominatorTree(CFG(function))
        assert dom.idom["body"] == "header"
        assert dom.idom["exit"] == "header"

    def test_dominates_reflexive_and_transitive(self):
        function = build([("entry", "a"), ("a", "b")])
        dom = DominatorTree(CFG(function))
        assert dom.dominates("a", "a")
        assert dom.dominates("entry", "b")
        assert not dom.dominates("b", "a")
        assert dom.strictly_dominates("entry", "b")
        assert not dom.strictly_dominates("b", "b")

    def test_irreducible_graph_converges(self):
        # Two-entry cycle (irreducible): the iterative algorithm must
        # still terminate with entry dominating both.
        function = build(
            [("entry", "a"), ("entry", "b"), ("a", "b"), ("b", "a"), ("a", "x")]
        )
        dom = DominatorTree(CFG(function))
        assert dom.idom["a"] == "entry"
        assert dom.idom["b"] == "entry"


class TestDominanceFrontiers:
    def test_diamond_frontier(self):
        function = build(
            [("entry", "a"), ("entry", "b"), ("a", "join"), ("b", "join")]
        )
        dom = DominatorTree(CFG(function))
        assert dom.frontier["a"] == {"join"}
        assert dom.frontier["b"] == {"join"}
        assert dom.frontier["join"] == set()
        assert dom.frontier["entry"] == set()

    def test_loop_header_in_own_frontier(self):
        function = build(
            [("entry", "header"), ("header", "body"), ("header", "exit"),
             ("body", "header")]
        )
        dom = DominatorTree(CFG(function))
        assert "header" in dom.frontier["body"]
        assert "header" in dom.frontier["header"]

    def test_iterated_frontier(self):
        function = build(
            [("entry", "a"), ("entry", "b"), ("a", "join"), ("b", "join"),
             ("join", "c"), ("join", "d"), ("c", "end"), ("d", "end")]
        )
        dom = DominatorTree(CFG(function))
        result = dom.iterated_frontier({"a"})
        assert result == {"join"}
        result = dom.iterated_frontier({"c", "d"})
        assert result == {"end"}

    def test_dom_tree_preorder_covers_all(self):
        function = build(
            [("entry", "a"), ("entry", "b"), ("a", "join"), ("b", "join")]
        )
        dom = DominatorTree(CFG(function))
        order = dom.dom_tree_preorder()
        assert order[0] == "entry"
        assert set(order) == {"entry", "a", "b", "join"}
