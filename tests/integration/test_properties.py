"""Property-based tests (hypothesis) on the core algebra.

The range algebra's contract: whatever the probability weights say, the
*support* of a result must cover every value actually producible from
the operand supports.  These properties drive the algebra with random
strided ranges and cross-check against brute-force enumeration.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.bounds import Bound
from repro.core.comparisons import compare_sets
from repro.core.range_arith import evaluate_binop
from repro.core.ranges import StridedRange
from repro.core.rangeset import RangeSet
from repro.core.refine import refine_set


@st.composite
def strided_ranges(draw, max_abs=60, max_count=25):
    lo = draw(st.integers(min_value=-max_abs, max_value=max_abs))
    stride = draw(st.integers(min_value=0, max_value=7))
    count = draw(st.integers(min_value=1, max_value=max_count))
    if stride == 0:
        hi = lo
    else:
        hi = lo + stride * (count - 1)
    return StridedRange(1.0, Bound.number(lo), Bound.number(hi), stride)


def values_of(r: StridedRange):
    if r.is_single():
        return [int(r.lo.offset)]
    step = r.stride if r.stride else 1
    return list(range(int(r.lo.offset), int(r.hi.offset) + 1, step))


@st.composite
def range_sets(draw, pieces=2):
    count = draw(st.integers(min_value=1, max_value=pieces))
    ranges = [draw(strided_ranges()) for _ in range(count)]
    return RangeSet.from_ranges(
        [r.scaled(1.0 / count) for r in ranges], max_ranges=8
    )


def set_values(rangeset: RangeSet):
    out = set()
    for r in rangeset.ranges:
        out.update(values_of(r))
    return out


def hull_contains(rangeset: RangeSet, value: int) -> bool:
    hull = rangeset.hull()
    if hull is None:
        return False
    return hull.lo.offset <= value <= hull.hi.offset


class TestArithmeticSoundness:
    @settings(max_examples=120, deadline=None)
    @given(range_sets(), range_sets(), st.sampled_from(["add", "sub", "mul", "min", "max"]))
    def test_result_hull_covers_all_products(self, a, b, op):
        result = evaluate_binop(op, a, b, max_ranges=8)
        if not result.is_set:
            return  # ⊥ is always a sound answer
        python_op = {
            "add": lambda x, y: x + y,
            "sub": lambda x, y: x - y,
            "mul": lambda x, y: x * y,
            "min": min,
            "max": max,
        }[op]
        for x in set_values(a):
            for y in set_values(b):
                assert hull_contains(result, python_op(x, y)), (
                    f"{x} {op} {y} = {python_op(x, y)} outside {result}"
                )

    @settings(max_examples=80, deadline=None)
    @given(range_sets(), st.integers(min_value=1, max_value=40))
    def test_div_soundness(self, a, divisor):
        result = evaluate_binop("div", a, RangeSet.constant(divisor), max_ranges=8)
        if not result.is_set:
            return
        for x in set_values(a):
            assert hull_contains(result, x // divisor)

    @settings(max_examples=80, deadline=None)
    @given(range_sets(), st.integers(min_value=1, max_value=40))
    def test_mod_soundness(self, a, modulus):
        result = evaluate_binop("mod", a, RangeSet.constant(modulus), max_ranges=8)
        if not result.is_set:
            return
        for x in set_values(a):
            assert hull_contains(result, x % modulus)

    @settings(max_examples=80, deadline=None)
    @given(range_sets(), range_sets())
    def test_probabilities_sum_to_one(self, a, b):
        result = evaluate_binop("add", a, b, max_ranges=4)
        if result.is_set:
            assert sum(r.probability for r in result.ranges) == pytest.approx(1.0)


class TestComparisonExactness:
    @settings(max_examples=120, deadline=None)
    @given(
        strided_ranges(max_count=20),
        strided_ranges(max_count=20),
        st.sampled_from(["lt", "le", "gt", "ge", "eq", "ne"]),
    )
    def test_matches_brute_force(self, ra, rb, op):
        a = RangeSet.from_ranges([ra])
        b = RangeSet.from_ranges([rb])
        outcome = compare_sets(op, a, b)
        assert outcome is not None
        assert outcome.is_known()
        python_op = {
            "lt": lambda x, y: x < y,
            "le": lambda x, y: x <= y,
            "gt": lambda x, y: x > y,
            "ge": lambda x, y: x >= y,
            "eq": lambda x, y: x == y,
            "ne": lambda x, y: x != y,
        }[op]
        va, vb = values_of(ra), values_of(rb)
        expected = sum(1 for x in va for y in vb if python_op(x, y)) / (
            len(va) * len(vb)
        )
        assert outcome.probability == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(strided_ranges(), strided_ranges())
    def test_trichotomy(self, ra, rb):
        a = RangeSet.from_ranges([ra])
        b = RangeSet.from_ranges([rb])
        p_lt = compare_sets("lt", a, b).probability
        p_eq = compare_sets("eq", a, b).probability
        p_gt = compare_sets("gt", a, b).probability
        assert p_lt + p_eq + p_gt == pytest.approx(1.0, abs=1e-9)


class TestRefinementSemantics:
    @settings(max_examples=120, deadline=None)
    @given(
        strided_ranges(max_count=20),
        st.sampled_from(["lt", "le", "gt", "ge", "eq", "ne"]),
        st.integers(min_value=-70, max_value=70),
    )
    def test_refined_support_is_exact_subset(self, r, op, bound):
        source = RangeSet.from_ranges([r])
        refined = refine_set(source, op, Bound.number(bound))
        python_op = {
            "lt": lambda x: x < bound,
            "le": lambda x: x <= bound,
            "gt": lambda x: x > bound,
            "ge": lambda x: x >= bound,
            "eq": lambda x: x == bound,
            "ne": lambda x: x != bound,
        }[op]
        surviving = {x for x in values_of(r) if python_op(x)}
        if not surviving:
            assert refined.is_bottom
            return
        assert refined.is_set
        refined_values = set_values(refined)
        # Everything that satisfies the predicate must stay representable.
        missing = surviving - refined_values
        # 'ne' keeps interior holes, which over-approximates: the refined
        # set may contain the hole, but must never lose surviving values.
        assert not missing, f"lost values {missing} refining {r} by {op} {bound}"

    @settings(max_examples=80, deadline=None)
    @given(
        strided_ranges(max_count=20),
        st.sampled_from(["lt", "le", "gt", "ge"]),
        st.integers(min_value=-70, max_value=70),
    )
    def test_clip_is_tight_for_orderings(self, r, op, bound):
        # For orderings (no holes) refinement must be exact: the refined
        # support equals exactly the surviving values.
        source = RangeSet.from_ranges([r])
        refined = refine_set(source, op, Bound.number(bound))
        python_op = {
            "lt": lambda x: x < bound,
            "le": lambda x: x <= bound,
            "gt": lambda x: x > bound,
            "ge": lambda x: x >= bound,
        }[op]
        surviving = {x for x in values_of(r) if python_op(x)}
        if not surviving:
            assert refined.is_bottom
        else:
            assert set_values(refined) == surviving


class TestCompactionInvariants:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(strided_ranges(max_count=10), min_size=1, max_size=8))
    def test_compaction_preserves_mass_and_support(self, ranges):
        weighted = [r.scaled(1.0 / len(ranges)) for r in ranges]
        rs = RangeSet.from_ranges(weighted, max_ranges=3)
        if not rs.is_set:
            return
        assert len(rs.ranges) <= 3
        assert sum(r.probability for r in rs.ranges) == pytest.approx(1.0)
        # Support only grows under compaction.
        original = set()
        for r in ranges:
            original.update(values_of(r))
        for value in original:
            assert hull_contains(rs, value)
