"""The analysis service: byte parity with the CLI, caching, degradation."""

import pytest

from repro.cli import main
from repro.server.cache import ResultCache
from repro.server.protocol import ProtocolError
from repro.server.service import AnalysisService, analyze_payload
from repro.server.workers import WorkerPool

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i > 90) { total = total + i; }
  }
  if (total < 0) { total = 0; }
  return total;
}
"""

BROKEN = "func main( { oops"


def cli_stdout(capsys, argv):
    code = main(argv)
    return capsys.readouterr().out, code


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.toy"
    path.write_text(PROGRAM, encoding="utf-8")
    return str(path)


class TestByteParityWithCli:
    @pytest.mark.parametrize("command", ["predict", "ranges", "ir"])
    def test_matches_one_shot_output(self, capsys, program_file, command):
        expected, _ = cli_stdout(capsys, [command, program_file])
        response = AnalysisService().execute(
            {"command": command, "source": PROGRAM}
        )
        assert response["output"] == expected
        assert response["exit_code"] == 0
        assert response["degraded"] is False

    def test_run_matches(self, capsys, program_file):
        expected, _ = cli_stdout(capsys, ["run", program_file, "--args", "5"])
        response = AnalysisService().execute(
            {"command": "run", "source": PROGRAM, "options": {"args": [5]}}
        )
        assert response["output"] == expected

    @pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
    def test_check_matches_including_program_name(
        self, capsys, program_file, fmt
    ):
        expected, code = cli_stdout(
            capsys, ["check", program_file, "--format", fmt]
        )
        response = AnalysisService().execute(
            {
                "command": "check",
                "source": PROGRAM,
                "name": program_file,
                "options": {"format": fmt},
            }
        )
        assert response["output"] == expected
        assert response["exit_code"] == code

    def test_warm_tiers_are_byte_identical(self, tmp_path, capsys, program_file):
        expected, _ = cli_stdout(capsys, ["predict", program_file])
        disk = tmp_path / "cache"
        request = {"command": "predict", "source": PROGRAM}

        warm = AnalysisService(cache=ResultCache(disk_dir=str(disk)))
        cold = warm.execute(request)
        memory_hit = warm.execute(request)
        # A fresh service over the same disk dir simulates a restart.
        restarted = AnalysisService(cache=ResultCache(disk_dir=str(disk)))
        disk_hit = restarted.execute(request)

        assert cold["cached"] is None
        assert memory_hit["cached"] == "memory"
        assert disk_hit["cached"] == "disk"
        assert cold["output"] == memory_hit["output"] == disk_hit["output"]
        assert cold["output"] == expected
        assert cold["key"] == memory_hit["key"] == disk_hit["key"]


class TestCacheKeys:
    def test_display_name_does_not_shatter_predict(self):
        service = AnalysisService()
        a = service.execute(
            {"command": "predict", "source": PROGRAM, "name": "a.toy"}
        )
        b = service.execute(
            {"command": "predict", "source": PROGRAM, "name": "b.toy"}
        )
        assert a["key"] == b["key"]
        assert b["cached"] == "memory"

    def test_display_name_is_key_material_for_check(self):
        # The name appears verbatim in check reports, so it must key.
        service = AnalysisService()
        a = service.execute(
            {"command": "check", "source": PROGRAM, "name": "a.toy"}
        )
        b = service.execute(
            {"command": "check", "source": PROGRAM, "name": "b.toy"}
        )
        assert a["key"] != b["key"]
        assert "a.toy" in a["output"] and "b.toy" in b["output"]

    def test_spelled_out_defaults_hit_the_same_key(self):
        service = AnalysisService()
        a = service.execute({"command": "predict", "source": PROGRAM})
        b = service.execute(
            {
                "command": "predict",
                "source": PROGRAM,
                "options": {"max_ranges": 4, "intra": False},
            }
        )
        assert a["key"] == b["key"]
        assert b["cached"] == "memory"

    def test_engine_knobs_change_the_key(self):
        service = AnalysisService()
        a = service.execute({"command": "predict", "source": PROGRAM})
        b = service.execute(
            {
                "command": "predict",
                "source": PROGRAM,
                "options": {"max_ranges": 8},
            }
        )
        assert a["key"] != b["key"]


class TestErrors:
    def test_parse_errors_are_deterministic_responses(self):
        response = AnalysisService().execute(
            {"command": "predict", "source": BROKEN}
        )
        assert response["status"] == "error"
        assert response["exit_code"] == 1
        assert response["error"]

    def test_parse_errors_are_cached(self):
        service = AnalysisService()
        service.execute({"command": "predict", "source": BROKEN})
        again = service.execute({"command": "predict", "source": BROKEN})
        assert again["cached"] == "memory"
        assert again["status"] == "error"

    def test_protocol_errors_raise(self):
        with pytest.raises(ProtocolError):
            AnalysisService().execute({"command": "predict"})
        with pytest.raises(ProtocolError):
            AnalysisService().execute(
                {"command": "predict", "source": PROGRAM, "options": {"typo": 1}}
            )

    def test_execute_item_turns_protocol_errors_into_responses(self):
        response = AnalysisService().execute_item({"command": "nope", "source": "x"})
        assert response["status"] == "error"
        assert response["exit_code"] == 1
        assert response["cached"] is None


class TestDegradation:
    def test_predict_degrades_to_heuristics_only(self):
        service = AnalysisService(timeout_s=0.0)
        response = service.execute({"command": "predict", "source": PROGRAM})
        assert response["degraded"] is True
        assert response["status"] == "ok"
        body = response["output"].splitlines()[1:]
        assert body and all("heuristic" in line for line in body)

    def test_check_degrades_to_empty_report(self):
        service = AnalysisService(timeout_s=0.0)
        response = service.execute(
            {"command": "check", "source": PROGRAM, "name": "p.toy"}
        )
        assert response["degraded"] is True
        assert response["exit_code"] == 0

    def test_ranges_answers_a_timeout_error(self):
        service = AnalysisService(timeout_s=0.0)
        response = service.execute({"command": "ranges", "source": PROGRAM})
        assert response["degraded"] is True
        assert response["status"] == "error"
        assert "timed out" in response["error"]

    def test_degraded_results_are_never_cached(self):
        service = AnalysisService(timeout_s=0.0)
        service.execute({"command": "predict", "source": PROGRAM})
        assert service.cache.stats()["stores"] == 0
        # Lifting the deadline serves (and caches) the full result.
        service.timeout_s = None
        full = service.execute({"command": "predict", "source": PROGRAM})
        assert full["degraded"] is False
        assert full["cached"] is None
        assert service.cache.stats()["stores"] == 1

    def test_degraded_output_differs_from_full(self, capsys, program_file):
        expected, _ = cli_stdout(capsys, ["predict", program_file])
        degraded = AnalysisService(timeout_s=0.0).execute(
            {"command": "predict", "source": PROGRAM}
        )
        assert degraded["output"] != expected  # ranges rows became heuristic


class TestBatches:
    def test_results_come_back_in_submission_order(self):
        sources = [
            f"func main(n) {{ return {i}; }}" for i in range(6)
        ]
        pool = WorkerPool(workers=3, queue_size=16)
        try:
            results = AnalysisService().execute_batch(
                [
                    {"command": "run", "source": s, "options": {"args": [0]}}
                    for s in sources
                ],
                pool=pool,
            )
        finally:
            pool.shutdown(timeout=5)
        values = [r["output"].splitlines()[0] for r in results]
        assert values == [f"return value: {i}" for i in range(6)]

    def test_one_bad_item_fails_alone(self):
        results = AnalysisService().execute_batch(
            [
                {"command": "predict", "source": PROGRAM},
                {"command": "predict"},  # missing source
                {"command": "predict", "source": PROGRAM},
            ]
        )
        assert [r["status"] for r in results] == ["ok", "error", "ok"]

    def test_batch_shares_the_result_cache(self):
        service = AnalysisService()
        service.execute({"command": "predict", "source": PROGRAM})
        results = service.execute_batch(
            [{"command": "predict", "source": PROGRAM}]
        )
        assert results[0]["cached"] == "memory"


class TestAnalyzePayloadDirect:
    def test_unknown_command_raises(self):
        with pytest.raises(ProtocolError):
            analyze_payload("explode", PROGRAM, "-", {})
