"""Postdominator tests."""

from repro.ir.cfg import CFG
from repro.ir.postdominance import PostDominatorTree
from repro.lang import compile_source


def postdom_of(source: str):
    function = compile_source(source).function("main")
    cfg = CFG(function)
    return function, cfg, PostDominatorTree(cfg)


class TestPostdominance:
    def test_join_postdominates_both_arms(self):
        function, cfg, pdt = postdom_of(
            "func main(n) { if (n > 0) { n = 1; } else { n = 2; } return n; }"
        )
        # Find the branch block and its successors.
        from repro.ir.instructions import Branch

        for label, block in function.blocks.items():
            if isinstance(block.terminator, Branch):
                t, f = block.terminator.successors()
                join_candidates = set(cfg.successors[t]) & set(cfg.successors[f])
                for join in join_candidates:
                    assert pdt.postdominates(join, t)
                    assert pdt.postdominates(join, f)
                    assert pdt.postdominates(join, label)

    def test_then_does_not_postdominate_branch(self):
        function, cfg, pdt = postdom_of(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        from repro.ir.instructions import Branch

        for label, block in function.blocks.items():
            if isinstance(block.terminator, Branch):
                then_target = block.terminator.true_target
                assert not pdt.postdominates(then_target, label)

    def test_every_block_postdominated_by_itself(self):
        _, cfg, pdt = postdom_of(
            "func main(n) { while (n > 0) { n = n - 1; } return n; }"
        )
        for label in cfg.reachable():
            assert pdt.postdominates(label, label)

    def test_infinite_loop_handled(self):
        # No path to exit from the loop: the virtual exit edge keeps the
        # computation well-defined instead of crashing.
        _, cfg, pdt = postdom_of(
            "func main(n) { while (1) { n = n + 1; } return n; }"
        )
        for label in cfg.reachable():
            assert pdt.postdominates(label, label)

    def test_return_block_postdominates_entry_in_straight_line(self):
        function, cfg, pdt = postdom_of("func main(n) { var x = n + 1; return x; }")
        from repro.ir.instructions import Return

        return_blocks = [
            label
            for label, block in function.blocks.items()
            if isinstance(block.terminator, Return)
        ]
        assert any(
            pdt.postdominates(label, function.entry_label) for label in return_blocks
        )
