"""Per-pass / per-analysis profiler (the engine behind ``repro profile``).

One profiled run executes a pass pipeline under a recording tracer
inside a single root span, then turns the span tree into the three
classic profiler products:

* a **self/cumulative table** -- per span name: invocation count,
  cumulative seconds (time inside spans of that name) and self seconds
  (cumulative minus time inside child spans), so a pass's own cost
  separates from the analyses it demanded.  Self times partition the
  root span exactly: ``sum(self) == wall`` up to float rounding, which
  is the invariant ``repro profile`` prints and CI asserts;
* **hot transfer functions** -- per analysed function: worklist pops
  and lattice transitions from the engine's event stream, i.e. where
  the fixed-point iteration actually spun;
* **collapsed stacks** -- ``root;parent;child <microseconds>`` lines,
  the interchange format of ``flamegraph.pl`` and speedscope, weighted
  by self time.

Everything derives from the tracer's existing span hooks (the pass
manager's ``pass:<name>`` spans, the analysis cache's
``analysis:<name>`` spans, the engine's phase spans) -- profiling adds
no new instrumentation to the hot paths, so work counts stay
byte-identical to the seed when the profiler is not running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.tracer import Tracer

#: Root span wrapping one profiled run.
ROOT_SPAN = "profile"

#: Event kinds counted as "the engine evaluated a transfer function".
HOT_EVENT_KINDS = ("worklist.pop", "lattice.transition")


@dataclass
class SpanProfile:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    self_seconds: float = 0.0
    cum_seconds: float = 0.0


@dataclass
class ProfileReport:
    """Everything one profiled run produced."""

    program: str
    wall_seconds: float
    spans: List[SpanProfile] = field(default_factory=list)
    hot_functions: List[Tuple[str, int]] = field(default_factory=list)
    collapsed: Dict[str, int] = field(default_factory=dict)
    pipeline: List[str] = field(default_factory=list)

    @property
    def self_seconds_total(self) -> float:
        return sum(profile.self_seconds for profile in self.spans)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_tracer(
        cls,
        tracer: Tracer,
        program: str = "module",
        pipeline: Optional[Sequence[str]] = None,
    ) -> "ProfileReport":
        """Aggregate a recording tracer's spans and events."""
        closed = [span for span in tracer.spans if span.end is not None]
        # Self time: a span's duration minus its direct children's.
        child_seconds = [0.0] * len(tracer.spans)
        for span in closed:
            if span.parent is not None:
                child_seconds[span.parent] += span.seconds

        by_name: Dict[str, SpanProfile] = {}
        collapsed: Dict[str, int] = {}
        stacks: Dict[int, str] = {}
        wall = 0.0
        for span in closed:
            if span.name == ROOT_SPAN and span.parent is None:
                wall += span.seconds
            profile = by_name.setdefault(span.name, SpanProfile(span.name))
            profile.count += 1
            profile.cum_seconds += span.seconds
            self_seconds = max(0.0, span.seconds - child_seconds[span.index])
            profile.self_seconds += self_seconds
            if span.parent is not None and span.parent in stacks:
                stack = stacks[span.parent] + ";" + span.name
            else:
                stack = span.name
            stacks[span.index] = stack
            collapsed[stack] = collapsed.get(stack, 0) + int(self_seconds * 1e6)
        if wall == 0.0 and closed:
            # No explicit root span: fall back to top-level span total.
            wall = sum(s.seconds for s in closed if s.parent is None)

        hot: Dict[str, int] = {}
        for event in tracer.events:
            if event.kind in HOT_EVENT_KINDS:
                function = getattr(event, "function", None)
                if function:
                    hot[function] = hot.get(function, 0) + 1

        ordered = sorted(
            by_name.values(), key=lambda p: (-p.self_seconds, p.name)
        )
        hot_ordered = sorted(hot.items(), key=lambda item: (-item[1], item[0]))
        return cls(
            program=program,
            wall_seconds=wall,
            spans=ordered,
            hot_functions=hot_ordered,
            collapsed=collapsed,
            pipeline=list(pipeline or []),
        )

    # -- renderings ----------------------------------------------------------

    def render_text(self, top: int = 10) -> str:
        """The human table ``repro profile`` prints."""
        lines = [f"profile of {self.program}  (pipeline: "
                 f"{' -> '.join(self.pipeline) if self.pipeline else 'predict'})",
                 "",
                 f"{'span':<24s} {'count':>6s} {'self s':>10s} {'cum s':>10s} "
                 f"{'self %':>7s}"]
        wall = self.wall_seconds or 1e-12
        for profile in self.spans:
            lines.append(
                f"{profile.name:<24s} {profile.count:>6d} "
                f"{profile.self_seconds:>10.6f} {profile.cum_seconds:>10.6f} "
                f"{100.0 * profile.self_seconds / wall:>6.1f}%"
            )
        lines.append("")
        lines.append(
            f"wall: {self.wall_seconds:.6f}s   "
            f"self-time sum: {self.self_seconds_total:.6f}s"
        )
        if self.hot_functions:
            lines.append("")
            lines.append(f"hot functions (transfer evaluations, top {top}):")
            for name, count in self.hot_functions[:top]:
                lines.append(f"  {name:<24s} {count:>8d}")
        return "\n".join(lines) + "\n"

    def render_collapsed(self) -> str:
        """flamegraph.pl / speedscope collapsed-stack lines."""
        lines = [
            f"{stack} {value}"
            for stack, value in sorted(self.collapsed.items())
            if value > 0
        ]
        return "\n".join(lines) + "\n" if lines else ""

    def as_metrics(self) -> dict:
        """The metrics schema v6 ``profile`` document fragment."""
        return {
            "wall_seconds": self.wall_seconds,
            "self_seconds_total": self.self_seconds_total,
            "pipeline": self.pipeline,
            "spans": [
                {
                    "name": profile.name,
                    "count": profile.count,
                    "self_seconds": profile.self_seconds,
                    "cum_seconds": profile.cum_seconds,
                }
                for profile in self.spans
            ],
            "hot_functions": [
                {"function": name, "evaluations": count}
                for name, count in self.hot_functions
            ],
        }


@dataclass
class ProfileSession:
    """A profiled run: the report plus the raw tracer and prediction."""

    report: ProfileReport
    tracer: Tracer
    module: object
    prediction: object


def profile_source(
    source: str,
    module_name: str = "module",
    config=None,
    pipeline: str = "predict",
    passes: Optional[Sequence[str]] = None,
    max_events: int = 1_000_000,
) -> ProfileSession:
    """Compile and run a pass pipeline under the profiler.

    The whole run -- front end, SSA preparation, every pass, every
    demanded analysis -- happens inside one ``profile`` root span on a
    recording tracer, so self times partition the wall time exactly.
    """
    from repro.ir import prepare_module
    from repro.observability import tracer as tracing
    from repro.observability.instrument import compile_source_traced
    from repro.passes.pipeline import PassPipeline

    tracer = Tracer(record_events=True, max_events=max_events)
    with tracing.use(tracer):
        with tracer.span(ROOT_SPAN):
            module = compile_source_traced(source, module_name=module_name)
            ssa_infos = prepare_module(module)
            if passes:
                manager = PassPipeline(list(passes), config=config)
            else:
                manager = PassPipeline.named(pipeline, config=config)
            result = manager.run(module, ssa_infos)
            prediction = result.cache.prediction()
    report = ProfileReport.from_tracer(
        tracer,
        program=module.name,
        pipeline=[pass_.name for pass_ in manager.passes],
    )
    return ProfileSession(
        report=report, tracer=tracer, module=module, prediction=prediction
    )
