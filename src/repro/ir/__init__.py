"""Three-address SSA intermediate representation.

The IR is the substrate the paper's analysis runs over: basic blocks,
explicit control-flow edges, phi-functions, and the paper's post-branch
assertion nodes (:class:`~repro.ir.instructions.Pi`).

Typical pipeline::

    from repro.ir import prepare_for_analysis
    prepare_for_analysis(function)   # unreachable removal, edge splitting,
                                     # assertions, SSA construction
"""

from repro.ir.assertions import insert_assertions
from repro.ir.cfg import CFG, remove_unreachable_blocks, split_critical_edges
from repro.ir.dominance import DominatorTree
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BINARY_OPS,
    CMP_NEGATION,
    CMP_OPS,
    CMP_SWAP,
    UNARY_OPS,
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.printer import format_function, format_module
from repro.ir.ssa import (
    PARAM_DEF,
    SSAEdges,
    SSAInfo,
    build_ssa_edges,
    construct_ssa,
)
from repro.ir.values import Constant, Temp, UNDEF, Undef, Value
from repro.ir.verifier import VerificationError, verify_function, verify_module


def prepare_for_analysis(function: Function, assertions: bool = True) -> SSAInfo:
    """Canonicalise a freshly lowered function for analysis.

    Removes unreachable blocks, splits conditional out-edges so each has
    a unique destination, inserts assertion (Pi) nodes, and rewrites into
    SSA form.  Returns the :class:`SSAInfo` from SSA construction.

    Each stage runs under a tracer span ("cfg-cleanup" / "assert" /
    "ssa"), so phase timings cover the whole pipeline when a tracer is
    active; the default NullTracer makes the spans no-ops.
    """
    from repro.observability import tracer as tracing

    tracer = tracing.active()
    with tracer.span("cfg-cleanup"):
        remove_unreachable_blocks(function)
        split_critical_edges(function)
    if assertions:
        with tracer.span("assert"):
            insert_assertions(function)
    with tracer.span("ssa"):
        info = construct_ssa(function)
        verify_function(
            function, ssa=True, param_names=set(info.param_names.values())
        )
    return info


def prepare_module(module: Module, assertions: bool = True) -> dict:
    """Run :func:`prepare_for_analysis` on every function in a module.

    Returns a mapping of function name to :class:`SSAInfo`.
    """
    return {
        name: prepare_for_analysis(function, assertions=assertions)
        for name, function in module.functions.items()
    }


__all__ = [
    "BINARY_OPS",
    "CMP_NEGATION",
    "CMP_OPS",
    "CMP_SWAP",
    "UNARY_OPS",
    "BasicBlock",
    "BinOp",
    "Branch",
    "CFG",
    "Call",
    "Cmp",
    "Constant",
    "Copy",
    "DominatorTree",
    "Function",
    "Input",
    "Instruction",
    "Jump",
    "Load",
    "Module",
    "PARAM_DEF",
    "Phi",
    "Pi",
    "Return",
    "SSAEdges",
    "SSAInfo",
    "Store",
    "Temp",
    "UNDEF",
    "UnOp",
    "Undef",
    "Value",
    "VerificationError",
    "build_ssa_edges",
    "construct_ssa",
    "format_function",
    "format_module",
    "insert_assertions",
    "prepare_for_analysis",
    "prepare_module",
    "remove_unreachable_blocks",
    "split_critical_edges",
    "verify_function",
    "verify_module",
]
