"""ASCII rendering of evaluation results (the paper's figures as tables).

The paper presents Figures 7-8 as line charts of "percentage of branches
predicted to within a given error margin"; a terminal reproduction
renders the same series as a table with one column per predictor plus a
coarse sparkline, so orderings and crossovers are visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.evalharness.accuracy import DEFAULT_THRESHOLDS, area_under_cdf
from repro.evalharness.runner import SuiteEvaluation


def format_cdf_table(
    series: Dict[str, Sequence[float]],
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    title: str = "",
) -> str:
    """Render predictor CDF series side by side.

    Rows are error margins ("<K" percentage points), columns are
    predictors, cells are the percentage of branches within the margin.
    """
    names = list(series)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "margin  " + "  ".join(f"{name:>12s}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    for index, threshold in enumerate(thresholds):
        row = f"<{threshold:>3d}    " + "  ".join(
            f"{series[name][index]:>11.1f}%" for name in names
        )
        lines.append(row)
    lines.append("-" * len(header))
    summary = "AUC     " + "  ".join(
        f"{area_under_cdf(series[name]):>11.1f} " for name in names
    )
    lines.append(summary)
    return "\n".join(lines)


def format_suite_figure(
    evaluation: SuiteEvaluation, weighted: bool, title: str
) -> str:
    """One panel of Figure 7/8: a suite, weighted or unweighted."""
    series = {
        name: evaluation.aggregate_cdf(name, weighted=weighted)
        for name in evaluation.predictors()
    }
    mode = "weighted by execution count" if weighted else "unweighted"
    return format_cdf_table(series, evaluation.thresholds, f"{title} ({mode})")


def ranking(series: Dict[str, Sequence[float]]) -> List[Tuple[str, float]]:
    """Predictors ordered best-first by area under the CDF."""
    scored = [(name, area_under_cdf(values)) for name, values in series.items()]
    return sorted(scored, key=lambda pair: -pair[1])


def format_scatter(
    points: Sequence[Tuple[int, int]],
    x_label: str,
    y_label: str,
    title: str = "",
) -> str:
    """Render (x, y) pairs plus a least-squares fit line summary.

    Used for the Figure 5/6 linearity plots: the fit's relative residual
    tells you at a glance how linear the relationship is.
    """
    import numpy as np

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>12s}  {y_label:>14s}")
    for x, y in points:
        lines.append(f"{x:>12d}  {y:>14d}")
    if len(points) >= 2:
        xs = np.array([p[0] for p in points], dtype=float)
        ys = np.array([p[1] for p in points], dtype=float)
        slope, intercept = np.polyfit(xs, ys, 1)
        predicted = slope * xs + intercept
        residual = float(np.sqrt(np.mean((ys - predicted) ** 2)))
        scale = float(np.mean(ys)) or 1.0
        lines.append(
            f"linear fit: y = {slope:.3f}x + {intercept:.1f}  "
            f"(rms residual {100.0 * residual / scale:.1f}% of mean)"
        )
    return "\n".join(lines)
