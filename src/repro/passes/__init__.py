"""Unified pass manager: declarative passes over cached analyses.

* :mod:`repro.passes.base`     -- :class:`Pass` / :class:`FunctionPass` /
  :class:`ModulePass` with ``requires``/``preserves`` contracts;
* :mod:`repro.passes.cache`    -- :class:`AnalysisCache`, demand-computed
  CFG/dominance/postdominance/loop/frequency/prediction analyses with
  ``preserves``-driven invalidation (and the single construction site
  for the structural trees, :func:`dominator_tree` and friends);
* :mod:`repro.passes.library`  -- every §6 client as a registered pass;
* :mod:`repro.passes.pipeline` -- the registry, the named pipelines
  (``predict`` / ``optimize`` / ``diagnose``) and :class:`PassPipeline`.

Everything is loaded lazily (PEP 562): the cache is imported from
low-level modules (``ir/ssa.py``, ``ir/verifier.py``,
``heuristics/base.py``), so the package import must stay side-effect
free and cycle-proof.
"""

_LAZY = {
    "ANALYSIS_NAMES": "repro.passes.base",
    "PRESERVES_ALL": "repro.passes.base",
    "PRESERVES_NONE": "repro.passes.base",
    "STRUCTURAL": "repro.passes.base",
    "FunctionPass": "repro.passes.base",
    "ModulePass": "repro.passes.base",
    "Pass": "repro.passes.base",
    "PassResult": "repro.passes.base",
    "AnalysisCache": "repro.passes.cache",
    "SEMANTIC_ANALYSES": "repro.passes.cache",
    "dominator_tree": "repro.passes.cache",
    "loop_info": "repro.passes.cache",
    "postdominator_tree": "repro.passes.cache",
    "PASS_REGISTRY": "repro.passes.pipeline",
    "PIPELINES": "repro.passes.pipeline",
    "PassPipeline": "repro.passes.pipeline",
    "PassRun": "repro.passes.pipeline",
    "PipelineResult": "repro.passes.pipeline",
    "available_passes": "repro.passes.pipeline",
    "create_pass": "repro.passes.pipeline",
    "parse_passes": "repro.passes.pipeline",
    "register_pass": "repro.passes.pipeline",
    "run_pipeline": "repro.passes.pipeline",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    if name == "PASS_REGISTRY":
        importlib.import_module("repro.passes.library")
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ANALYSIS_NAMES",
    "PASS_REGISTRY",
    "PIPELINES",
    "PRESERVES_ALL",
    "PRESERVES_NONE",
    "SEMANTIC_ANALYSES",
    "STRUCTURAL",
    "AnalysisCache",
    "FunctionPass",
    "ModulePass",
    "Pass",
    "PassPipeline",
    "PassResult",
    "PassRun",
    "PipelineResult",
    "available_passes",
    "create_pass",
    "dominator_tree",
    "loop_info",
    "parse_passes",
    "postdominator_tree",
    "register_pass",
    "run_pipeline",
]
