"""Lowering (AST -> IR) unit tests."""

import pytest

from repro.ir.cfg import CFG
from repro.ir.function import Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Jump,
    Load,
    Return,
    Store,
)
from repro.ir.verifier import verify_function
from repro.lang.lowering import LoweringError, compile_source


def lower_main(body: str, extra: str = ""):
    module = compile_source(f"{extra}\nfunc main(n) {{ {body} }}")
    return module.function("main")


def instructions_of_type(function, instr_type):
    return [i for i in function.instructions() if isinstance(i, instr_type)]


class TestBasicLowering:
    def test_assignment_produces_copy(self):
        function = lower_main("x = 5; return x;")
        copies = instructions_of_type(function, Copy)
        assert any(c.dest.name == "x" for c in copies)

    def test_arithmetic_produces_binop(self):
        function = lower_main("x = n + 2 * n; return x;")
        ops = {b.op for b in instructions_of_type(function, BinOp)}
        assert ops == {"add", "mul"}

    def test_every_block_terminated(self):
        function = lower_main("if (n) { return 1; } return 2;")
        for block in function.blocks.values():
            assert block.is_terminated()

    def test_verifies(self):
        function = lower_main(
            "var t = 0; for (i = 0; i < n; i = i + 1) { t = t + i; } return t;"
        )
        verify_function(function)

    def test_implicit_return_zero(self):
        function = lower_main("x = 1;")
        returns = instructions_of_type(function, Return)
        assert returns  # lowering appended a return


class TestControlFlow:
    def test_if_creates_branch(self):
        function = lower_main("if (n > 0) { n = 1; } return n;")
        branches = instructions_of_type(function, Branch)
        assert len(branches) == 1

    def test_branch_targets_are_distinct(self):
        function = lower_main("if (n > 0) { n = 1; } else { n = 2; } return n;")
        for branch in instructions_of_type(function, Branch):
            assert branch.true_target != branch.false_target

    def test_while_back_edge(self):
        function = lower_main("while (n > 0) { n = n - 1; } return n;")
        assert CFG(function).back_edges

    def test_do_while_executes_body_first(self):
        function = lower_main("do { n = n - 1; } while (n > 0); return n;")
        cfg = CFG(function)
        # The entry must reach the body without passing a branch.
        entry_succs = cfg.successors[function.entry_label]
        assert len(entry_succs) == 1

    def test_break_jumps_to_exit(self):
        function = lower_main("while (1) { break; } return 0;")
        cfg = CFG(function)
        # Reachable blocks must include the return block.
        reachable = cfg.reachable()
        return_blocks = [
            label
            for label in reachable
            if isinstance(function.block(label).terminator, Return)
        ]
        assert return_blocks

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("continue;")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("break;")

    def test_logical_and_short_circuits(self):
        function = lower_main("if (n > 0 && n < 10) { n = 1; } return n;")
        # Two comparisons, two branches: the second only on the first's true path.
        assert len(instructions_of_type(function, Branch)) == 2
        assert len(instructions_of_type(function, Cmp)) == 2

    def test_logical_or_value_materialisation(self):
        function = lower_main("x = (n > 0) || (n < -5); return x;")
        verify_function(function)
        assert len(instructions_of_type(function, Branch)) >= 1

    def test_not_swaps_targets(self):
        plain = lower_main("if (n > 0) { n = 1; } else { n = 2; } return n;")
        negated = lower_main("if (!(n > 0)) { n = 2; } else { n = 1; } return n;")
        # Same number of branches either way; negation costs nothing.
        assert len(instructions_of_type(plain, Branch)) == len(
            instructions_of_type(negated, Branch)
        )

    def test_constant_condition_becomes_jump(self):
        function = lower_main("while (1) { break; } return 0;")
        # The while(1) header must not contain a conditional branch.
        assert all(
            not isinstance(b.cond, int) for b in instructions_of_type(function, Branch)
        )


class TestArraysAndCalls:
    def test_array_roundtrip(self):
        function = lower_main("array a[10]; a[0] = 5; x = a[0]; return x;")
        assert function.arrays == {"a": 10}
        assert len(instructions_of_type(function, Store)) == 1
        assert len(instructions_of_type(function, Load)) == 1

    def test_unknown_array_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("a[0] = 1;")

    def test_array_as_scalar_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("array a[4]; x = a; return x;")

    def test_array_redeclaration_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("array a[4]; array a[8];")

    def test_call_lowered(self):
        function = lower_main("x = f(n); return x;", extra="func f(v) { return v; }")
        calls = instructions_of_type(function, Call)
        assert len(calls) == 1
        assert calls[0].callee == "f"

    def test_call_unknown_function_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("x = nosuch(1); return x;")

    def test_call_arity_mismatch_rejected(self):
        with pytest.raises(LoweringError):
            lower_main("x = f(1, 2); return x;", extra="func f(v) { return v; }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(LoweringError):
            compile_source("func f() { return 0; } func f() { return 1; }")

    def test_input_lowered(self):
        function = lower_main("x = input(); return x;")
        assert len(instructions_of_type(function, Input)) == 1

    def test_module_holds_all_functions(self):
        module = compile_source(
            "func a() { return 1; } func b() { return a(); } func main(n) { return b(); }"
        )
        assert isinstance(module, Module)
        assert sorted(module.functions) == ["a", "b", "main"]
