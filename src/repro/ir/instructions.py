"""Instruction classes for the three-address IR.

Instruction layout inside a basic block::

    [Phi*] [Pi*] [body instructions*] terminator

Phis must come first (they execute "on the edge"), Pis (assertion nodes,
the paper's post-branch assertions) come next, and exactly one terminator
(:class:`Jump`, :class:`Branch` or :class:`Return`) ends the block.

All non-terminator instructions that produce a value define a single
:class:`~repro.ir.values.Temp` held in ``instr.result``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.values import Constant, Temp, Value

# Binary opcodes.  Division and modulo are C-style (truncated toward zero).
BINARY_OPS = ("add", "sub", "mul", "div", "mod", "shl", "shr", "and", "or", "xor", "min", "max")
# Unary opcodes.
UNARY_OPS = ("neg", "not")
# Comparison opcodes (produce 0 or 1).
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

CMP_NEGATION: Dict[str, str] = {
    "eq": "ne",
    "ne": "eq",
    "lt": "ge",
    "le": "gt",
    "gt": "le",
    "ge": "lt",
}

CMP_SWAP: Dict[str, str] = {
    "eq": "eq",
    "ne": "ne",
    "lt": "gt",
    "le": "ge",
    "gt": "lt",
    "ge": "le",
}


class Instruction:
    """Base class for all IR instructions."""

    __slots__ = ("block", "loc")

    def __init__(self) -> None:
        # Back-pointer to the owning block; set when appended to a block.
        self.block = None
        # Source line this instruction was lowered from (None for
        # synthesised instructions: phis, split-edge jumps, ...).
        self.loc: Optional[int] = None

    @property
    def result(self) -> Optional[Temp]:
        """The Temp defined by this instruction, or None."""
        return None

    def operands(self) -> List[Value]:
        """All value operands read by this instruction."""
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        """Replace every occurrence of ``old`` among the operands."""
        raise NotImplementedError

    def is_terminator(self) -> bool:
        return False


class BinOp(Instruction):
    """``result = lhs <op> rhs``"""

    __slots__ = ("dest", "op", "lhs", "rhs")

    def __init__(self, dest: Temp, op: str, lhs: Value, rhs: Value):
        super().__init__()
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.dest = dest
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.lhs == old:
            self.lhs = new
        if self.rhs == old:
            self.rhs = new

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op} {self.lhs}, {self.rhs}"


class UnOp(Instruction):
    """``result = <op> operand``"""

    __slots__ = ("dest", "op", "operand")

    def __init__(self, dest: Temp, op: str, operand: Value):
        super().__init__()
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.dest = dest
        self.op = op
        self.operand = operand

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [self.operand]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.operand == old:
            self.operand = new

    def __repr__(self) -> str:
        return f"{self.dest} = {self.op} {self.operand}"


class Cmp(Instruction):
    """``result = lhs <relop> rhs`` producing 0 or 1."""

    __slots__ = ("dest", "op", "lhs", "rhs")

    def __init__(self, dest: Temp, op: str, lhs: Value, rhs: Value):
        super().__init__()
        if op not in CMP_OPS:
            raise ValueError(f"unknown comparison op {op!r}")
        self.dest = dest
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.lhs == old:
            self.lhs = new
        if self.rhs == old:
            self.rhs = new

    def __repr__(self) -> str:
        return f"{self.dest} = cmp.{self.op} {self.lhs}, {self.rhs}"


class Copy(Instruction):
    """``result = src``"""

    __slots__ = ("dest", "src")

    def __init__(self, dest: Temp, src: Value):
        super().__init__()
        self.dest = dest
        self.src = src

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [self.src]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new

    def __repr__(self) -> str:
        return f"{self.dest} = {self.src}"


class Phi(Instruction):
    """SSA phi-function: ``result = phi [pred_label, value]*``.

    ``incomings`` maps predecessor block labels to incoming values; the
    order matches the block's predecessor list at construction time but
    lookups are by label so edge reordering is safe.
    """

    __slots__ = ("dest", "incomings")

    def __init__(self, dest: Temp, incomings: Optional[List[Tuple[str, Value]]] = None):
        super().__init__()
        self.dest = dest
        self.incomings: List[Tuple[str, Value]] = list(incomings or [])

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [value for _, value in self.incomings]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incomings = [
            (label, new if value == old else value) for label, value in self.incomings
        ]

    def value_for(self, pred_label: str) -> Value:
        for label, value in self.incomings:
            if label == pred_label:
                return value
        raise KeyError(f"phi {self.dest} has no incoming for predecessor {pred_label!r}")

    def set_value_for(self, pred_label: str, value: Value) -> None:
        for i, (label, _) in enumerate(self.incomings):
            if label == pred_label:
                self.incomings[i] = (label, value)
                return
        self.incomings.append((pred_label, value))

    def __repr__(self) -> str:
        pairs = ", ".join(f"[{label}: {value}]" for label, value in self.incomings)
        return f"{self.dest} = phi {pairs}"


class Pi(Instruction):
    """Assertion node (the paper's post-branch assertion).

    ``result = pi src  assuming  (src <relop> bound)`` -- semantically a
    copy of ``src``, but the analysis may refine ``result``'s range with
    the asserted relation.  ``parent`` records the SSA variable the
    assertion derives from, used by the paper's footnote-4 merge rule.
    """

    __slots__ = ("dest", "src", "op", "bound", "parent")

    def __init__(self, dest: Temp, src: Value, op: str, bound: Value,
                 parent: Optional[str] = None):
        super().__init__()
        if op not in CMP_OPS:
            raise ValueError(f"unknown assertion relop {op!r}")
        self.dest = dest
        self.src = src
        self.op = op
        self.bound = bound
        # Name of the original (pre-assertion) SSA variable.
        self.parent = parent

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [self.src, self.bound]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new
        if self.bound == old:
            self.bound = new

    def __repr__(self) -> str:
        return f"{self.dest} = pi {self.src} assuming ({self.src} {self.op} {self.bound})"


class Load(Instruction):
    """``result = array[index]`` -- loads are ⊥ for the analysis."""

    __slots__ = ("dest", "array", "index")

    def __init__(self, dest: Temp, array: str, index: Value):
        super().__init__()
        self.dest = dest
        self.array = array
        self.index = index

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return [self.index]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.index == old:
            self.index = new

    def __repr__(self) -> str:
        return f"{self.dest} = load {self.array}[{self.index}]"


class Store(Instruction):
    """``array[index] = value``"""

    __slots__ = ("array", "index", "value")

    def __init__(self, array: str, index: Value, value: Value):
        super().__init__()
        self.array = array
        self.index = index
        self.value = value

    def operands(self) -> List[Value]:
        return [self.index, self.value]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.index == old:
            self.index = new
        if self.value == old:
            self.value = new

    def __repr__(self) -> str:
        return f"store {self.array}[{self.index}] = {self.value}"


class Call(Instruction):
    """``result = call callee(args...)``"""

    __slots__ = ("dest", "callee", "args")

    def __init__(self, dest: Optional[Temp], callee: str, args: List[Value]):
        super().__init__()
        self.dest = dest
        self.callee = callee
        self.args = list(args)

    @property
    def result(self) -> Optional[Temp]:
        return self.dest

    def operands(self) -> List[Value]:
        return list(self.args)

    def replace_operand(self, old: Value, new: Value) -> None:
        self.args = [new if arg == old else arg for arg in self.args]

    def __repr__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        if self.dest is None:
            return f"call {self.callee}({args})"
        return f"{self.dest} = call {self.callee}({args})"


class Input(Instruction):
    """``result = input()`` -- an external, statically unknown value.

    At runtime the interpreter pops the next element of the program's
    input vector.  Statically the result is ⊥ (like a load from memory),
    which is what forces heuristic fallback on branches that depend on it.
    """

    __slots__ = ("dest",)

    def __init__(self, dest: Temp):
        super().__init__()
        self.dest = dest

    @property
    def result(self) -> Temp:
        return self.dest

    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def __repr__(self) -> str:
        return f"{self.dest} = input()"


class Jump(Instruction):
    """Unconditional terminator."""

    __slots__ = ("target",)

    def __init__(self, target: str):
        super().__init__()
        self.target = target

    def is_terminator(self) -> bool:
        return True

    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    def successors(self) -> List[str]:
        return [self.target]

    def __repr__(self) -> str:
        return f"jump {self.target}"


class Branch(Instruction):
    """Conditional terminator: if cond != 0 goto true_target else false_target."""

    __slots__ = ("cond", "true_target", "false_target")

    def __init__(self, cond: Value, true_target: str, false_target: str):
        super().__init__()
        self.cond = cond
        self.true_target = true_target
        self.false_target = false_target

    def is_terminator(self) -> bool:
        return True

    def operands(self) -> List[Value]:
        return [self.cond]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.cond == old:
            self.cond = new

    def successors(self) -> List[str]:
        return [self.true_target, self.false_target]

    def __repr__(self) -> str:
        return f"branch {self.cond} ? {self.true_target} : {self.false_target}"


class Return(Instruction):
    """Function return terminator."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Value] = None):
        super().__init__()
        self.value = value if value is not None else Constant(0)

    def is_terminator(self) -> bool:
        return True

    def operands(self) -> List[Value]:
        return [self.value]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value == old:
            self.value = new

    def successors(self) -> List[str]:
        return []

    def __repr__(self) -> str:
        return f"return {self.value}"
