"""§4 runtime claim: VRP "maintains the linear runtime behavior of
constant propagation experienced in practice".

Times whole analyses over the size-scaled synthetic family and checks
that per-instruction analysis time does not blow up with program size.
"""

import time

from benchmarks.conftest import emit
from repro.core import VRPPredictor
from repro.evalharness import synthetic_program
from repro.ir import prepare_module
from repro.lang import compile_source


def prepare(units):
    module = compile_source(synthetic_program(units))
    infos = prepare_module(module)
    return module, infos


def test_runtime_scales_linearly(benchmark, results_dir):
    sizes = [4, 8, 16, 32, 64]
    prepared = {units: prepare(units) for units in sizes}

    def analyse_all():
        timings = {}
        for units, (module, infos) in prepared.items():
            start = time.perf_counter()
            VRPPredictor().predict_module(module, infos)
            timings[units] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(analyse_all, rounds=1, iterations=1, warmup_rounds=1)

    lines = ["Runtime linearity (paper section 4)", ""]
    lines.append(f"{'units':>6s} {'instructions':>13s} {'seconds':>9s} {'us/instr':>9s}")
    per_instruction = {}
    for units, (module, _) in prepared.items():
        count = module.instruction_count()
        seconds = timings[units]
        per_instruction[units] = seconds / count * 1e6
        lines.append(
            f"{units:>6d} {count:>13d} {seconds:>9.3f} {per_instruction[units]:>9.1f}"
        )
    emit(results_dir, "runtime_linearity.txt", "\n".join(lines))

    # Per-instruction cost may wobble but must not grow with size:
    # allow 3x drift between the smallest and largest program.
    assert per_instruction[sizes[-1]] < 3.0 * max(per_instruction[sizes[0]], 1e-9)
