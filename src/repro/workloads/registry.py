"""Workload registry: the reproduction's SPEC92 stand-in.

Each :class:`Workload` is a toy-language program with two input sets:

* ``train`` -- the paper's "SPEC feedback collection inputs"
  (``input.short``): used to build the execution profile;
* ``ref`` -- the paper's reference inputs: used as ground truth.

Keeping the two genuinely different (different sizes *and* different
data) reproduces the paper's observation that profiles collected on one
input imperfectly predict another -- especially visible in the weighted
SPECint results.

Input data is generated with a small deterministic LCG so runs are
reproducible without any global RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


def lcg_stream(seed: int, count: int, modulus: int = 1 << 16) -> List[int]:
    """Deterministic pseudo-random ints in [0, modulus)."""
    state = seed & 0x7FFFFFFF
    out: List[int] = []
    for _ in range(count):
        state = (1103515245 * state + 12345) % (1 << 31)
        out.append(state % modulus)
    return out


@dataclass
class Workload:
    """One benchmark program with train and ref runs."""

    name: str
    suite: str  # "int", "fp", or "inter"
    description: str
    source: str
    train_args: List[int]
    ref_args: List[int]
    train_inputs: List[int] = field(default_factory=list)
    ref_inputs: List[int] = field(default_factory=list)
    # Interpreter step budget for the ref run (train is always smaller).
    max_steps: int = 2_000_000

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp", "inter"):
            raise ValueError(f"unknown suite {self.suite!r}")


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda w: (w.suite, w.name))


def suite(name: str) -> List[Workload]:
    """All workloads of the "int", "fp", or "inter" suite."""
    _ensure_loaded()
    return [w for w in all_workloads() if w.suite == name]


def _ensure_loaded() -> None:
    # Importing the suite modules registers their workloads.
    import repro.workloads.fpsuite  # noqa: F401
    import repro.workloads.intersuite  # noqa: F401
    import repro.workloads.intsuite  # noqa: F401
