"""Trace-context mechanics: ids, minting, ambient propagation."""

import re

from repro.observability import context as tracecontext


class TestIds:
    def test_trace_id_shape(self):
        assert re.fullmatch(r"[0-9a-f]{32}", tracecontext.new_trace_id())

    def test_span_id_shape(self):
        assert re.fullmatch(r"[0-9a-f]{16}", tracecontext.new_span_id())

    def test_ids_are_unique(self):
        assert len({tracecontext.new_trace_id() for _ in range(64)}) == 64

    def test_valid_trace_id(self):
        assert tracecontext.valid_trace_id("ab" * 16)
        assert not tracecontext.valid_trace_id("AB" * 16)  # uppercase
        assert not tracecontext.valid_trace_id("ab" * 8)  # too short
        assert not tracecontext.valid_trace_id(None)
        assert not tracecontext.valid_trace_id(12345)

    def test_valid_span_id(self):
        assert tracecontext.valid_span_id("cd" * 8)
        assert not tracecontext.valid_span_id("cd" * 16)


class TestMint:
    def test_mint_fresh(self):
        context = tracecontext.mint()
        assert tracecontext.valid_trace_id(context.trace_id)
        assert tracecontext.valid_span_id(context.span_id)
        assert context.parent_span_id is None

    def test_mint_adopts_given_trace_id(self):
        trace_id = "12" * 16
        assert tracecontext.mint(trace_id).trace_id == trace_id

    def test_child_keeps_trace_links_parent(self):
        parent = tracecontext.mint()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.parent_span_id == parent.span_id

    def test_as_dict(self):
        context = tracecontext.TraceContext("a" * 32, "b" * 16)
        assert context.as_dict() == {
            "trace_id": "a" * 32,
            "span_id": "b" * 16,
            "parent_span_id": None,
        }


class TestAmbient:
    def test_default_is_none(self):
        assert tracecontext.current() is None
        assert tracecontext.current_trace_id() is None

    def test_use_scopes_the_context(self):
        context = tracecontext.mint()
        with tracecontext.use(context):
            assert tracecontext.current() is context
            assert tracecontext.current_trace_id() == context.trace_id
        assert tracecontext.current() is None

    def test_use_nests_and_restores(self):
        outer, inner = tracecontext.mint(), tracecontext.mint()
        with tracecontext.use(outer):
            with tracecontext.use(inner):
                assert tracecontext.current() is inner
            assert tracecontext.current() is outer

    def test_tracer_spans_pick_up_the_trace_id(self):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        context = tracecontext.mint()
        with tracer.span("outside"):
            pass
        with tracecontext.use(context):
            with tracer.span("inside"):
                pass
        outside, inside = tracer.spans
        assert outside.trace_id is None
        assert inside.trace_id == context.trace_id

    def test_header_name(self):
        assert tracecontext.TRACE_HEADER == "X-Repro-Trace-Id"
