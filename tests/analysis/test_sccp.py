"""SCCP (constant propagation baseline) tests."""

import pytest

from repro.analysis.sccp import LatticeValue, run_sccp

from tests.helpers import prepare_single


def sccp_of(source):
    function, info = prepare_single(source)
    return run_sccp(function, info), function


class TestLattice:
    def test_meet_rules(self):
        top = LatticeValue.top()
        bottom = LatticeValue.bottom()
        c1 = LatticeValue.const(1)
        c2 = LatticeValue.const(2)
        assert top.meet(c1) == c1
        assert c1.meet(top) == c1
        assert c1.meet(c1) == c1
        assert c1.meet(c2).is_bottom
        assert bottom.meet(c1).is_bottom


class TestConstants:
    def test_straight_line_folding(self):
        result, _ = sccp_of("func main(n) { var a = 2; var b = a + 3; return b; }")
        constants = result.constants()
        assert constants["a.0"] == 2
        assert constants["b.0"] == 5

    def test_parameter_is_bottom(self):
        result, _ = sccp_of("func main(n) { var x = n + 1; return x; }")
        assert result.value_of("x.0").is_bottom

    def test_phi_of_equal_constants(self):
        result, _ = sccp_of(
            "func main(n) { if (n > 0) { x = 7; } else { x = 7; } return x; }"
        )
        phi_versions = [
            name for name in result.values if name.startswith("x.")
        ]
        assert any(result.value_of(name).constant == 7 for name in phi_versions)

    def test_phi_of_unequal_constants_is_bottom(self):
        result, _ = sccp_of(
            "func main(n) { if (n > 0) { x = 7; } else { x = 8; } return x; }"
        )
        merged = [
            result.value_of(name)
            for name in result.values
            if name.startswith("x.") and result.value_of(name).is_bottom
        ]
        assert merged  # the join version is not constant

    def test_division_by_zero_is_bottom(self):
        result, _ = sccp_of("func main(n) { var x = 1 / 0; return x; }")
        assert result.value_of("x.0").is_bottom


class TestConditionalPart:
    def test_one_sided_branch_keeps_constant(self):
        # The classic SCCP win: x is 5 on the only executable path.
        result, _ = sccp_of(
            """
            func main(n) {
              var x = 5;
              if (x < 10) { y = 1; } else { y = 2; }
              return y;
            }
            """
        )
        y_constants = {
            name: result.value_of(name).constant
            for name in result.values
            if name.startswith("y.") and result.value_of(name).is_const
        }
        assert 1 in y_constants.values()
        # The merge at the join is still the constant 1 (dead arm ignored).
        assert all(value == 1 for value in y_constants.values() if value is not None)

    def test_unreachable_block_not_executable(self):
        result, function = sccp_of(
            "func main(n) { var x = 5; if (x > 10) { n = 1; } return n; }"
        )
        assert result.reachable_blocks < set(function.blocks) or any(
            label not in result.reachable_blocks for label in function.blocks
        )

    def test_loop_variable_is_bottom(self):
        result, _ = sccp_of(
            "func main(n) { var t = 0; for (i = 0; i < 10; i = i + 1) { t = t + 1; } return t; }"
        )
        loop_versions = [
            result.value_of(name)
            for name in result.values
            if name.startswith("i.") and not name.endswith(".0")
        ]
        assert any(value.is_bottom for value in loop_versions)


class TestVRPSubsumption:
    def test_every_sccp_constant_found_by_vrp(self):
        source = """
        func main(n) {
          var a = 3;
          var b = a * 4;
          var c = b - 2;
          if (n > 0) { d = c; } else { d = 10; }
          var e = d + 1;
          return e;
        }
        """
        from tests.helpers import analyse, prepare_single as prep

        function, info = prep(source)
        sccp_result = run_sccp(function, info)
        vrp_prediction = analyse(source)
        for name, value in sccp_result.constants().items():
            assert vrp_prediction.values[name].constant_value() == value, name
