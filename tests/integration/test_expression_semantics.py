"""Interpreter semantics cross-checked against Python evaluation.

Hypothesis generates arithmetic expression trees, renders them as toy
source *and* evaluates them with Python's own operators; the interpreter
must agree exactly (the language definition says "Python semantics").
Division/modulo by zero must agree as traps.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.ir import prepare_module
from repro.profiling import InterpreterError, run_module


class _Node:
    """An expression tree that can render to toy source and evaluate."""

    def __init__(self, kind, children=(), value=0):
        self.kind = kind
        self.children = children
        self.value = value

    def render(self) -> str:
        if self.kind == "lit":
            return f"({self.value})" if self.value >= 0 else f"(0 - {-self.value})"
        if self.kind == "var":
            return "n"
        a = self.children[0].render()
        if self.kind == "neg":
            return f"(-({a}))"
        if self.kind == "not":
            return f"(!({a}))"
        b = self.children[1].render()
        op = {
            "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
            "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
            "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
        }[self.kind]
        return f"(({a}) {op} ({b}))"

    def evaluate(self, n):
        if self.kind == "lit":
            return self.value
        if self.kind == "var":
            return n
        a = self.children[0].evaluate(n)
        if self.kind == "neg":
            return -a
        if self.kind == "not":
            return int(not a)
        b = self.children[1].evaluate(n)
        if self.kind == "add":
            return a + b
        if self.kind == "sub":
            return a - b
        if self.kind == "mul":
            return a * b
        if self.kind == "div":
            if b == 0:
                raise ZeroDivisionError
            return a // b
        if self.kind == "mod":
            if b == 0:
                raise ZeroDivisionError
            return a % b
        if self.kind == "and":
            return a & b
        if self.kind == "or":
            return a | b
        if self.kind == "xor":
            return a ^ b
        if self.kind == "shl":
            if not 0 <= b <= 512:
                raise ZeroDivisionError  # trap-equivalent
            return a << b
        if self.kind == "shr":
            if not 0 <= b <= 512:
                raise ZeroDivisionError
            return a >> b
        return {
            "lt": a < b, "le": a <= b, "gt": a > b,
            "ge": a >= b, "eq": a == b, "ne": a != b,
        }[self.kind] and 1 or 0


@st.composite
def expression_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()) and depth > 0:
        if draw(st.booleans()):
            return _Node("lit", value=draw(st.integers(-50, 50)))
        return _Node("var")
    kind = draw(
        st.sampled_from(
            ["add", "sub", "mul", "div", "mod", "and", "or", "xor",
             "lt", "le", "gt", "ge", "eq", "ne", "neg", "not"]
        )
    )
    if kind in ("neg", "not"):
        return _Node(kind, (draw(expression_trees(depth + 1)),))
    return _Node(
        kind,
        (draw(expression_trees(depth + 1)), draw(expression_trees(depth + 1))),
    )


@settings(max_examples=150, deadline=None)
@given(expression_trees(), st.integers(min_value=-30, max_value=30))
def test_interpreter_matches_python(tree, n):
    source = f"func main(n) {{ return {tree.render()}; }}"
    module = compile_source(source)
    prepare_module(module)
    try:
        expected = tree.evaluate(n)
    except ZeroDivisionError:
        try:
            run_module(module, args=[n])
        except InterpreterError:
            return  # both trap: agreement
        raise AssertionError(f"Python trapped but interpreter did not: {source}")
    result = run_module(module, args=[n])
    assert result.return_value == expected, source
