"""Shared helpers for the incremental-analysis test suite."""

from repro import rendering
from repro.ir import prepare_module
from repro.lang import compile_source


def build(source: str):
    """Compile and prepare a toy-language module: (module, ssa_infos)."""
    module = compile_source(source)
    infos = prepare_module(module)
    return module, infos


def rendered(prediction):
    """The byte-identity surface: predict table + ranges listing."""
    return (
        rendering.branch_table(
            prediction.all_branches(), prediction.heuristic_branches()
        ),
        rendering.ranges_listing(prediction),
    )


#: A three-component module: {helper, apply, main}, {leaf, outer}, {island}.
MULTI_COMPONENT = """
func helper(x) {
  if (x > 10) { return x - 10; }
  return x + 1;
}

func apply(n) {
  var t = 0;
  for (i = 0; i < n; i = i + 1) { t = t + helper(i); }
  return t;
}

func main(n) {
  if (n > 0) { return apply(n); }
  return helper(0 - n);
}

func leaf(v) {
  if (v < 3) { return v * 2; }
  return v;
}

func outer(v) {
  var s = leaf(v) + leaf(v + 1);
  if (s > 7) { return s; }
  return 0 - s;
}

func island(k) {
  var acc = 1;
  while (k > 1) { acc = acc * k; k = k - 1; }
  return acc;
}
"""
