"""Static diagnostics from value range propagation (``repro check``).

The analysis computes, per SSA variable, a weighted strided range set --
strong enough to *prove* facts, not just predict branches.  This package
turns those proofs into structured findings:

========================  ===================================================
rule id                   fires when
========================  ===================================================
``dead-branch``           a branch probability is provably exactly 0 or 1
``array-bounds``          an index range lies (partly) outside [0, size)
``div-by-zero``           a divisor range contains zero
``unreachable-block``     a surviving block has range-proven frequency 0
``zero-trip-loop``        a loop's body provably never executes
``non-terminating-loop``  a loop provably never exits
``uninit-value``          an undefined (⊥) value is used on a live path
========================  ===================================================

Findings render as human text, JSON, and SARIF 2.1.0
(:mod:`repro.diagnostics.render`, :mod:`repro.diagnostics.sarif`), and
are emitted into the observability event stream as
``diagnostic.finding`` events.  See ``docs/DIAGNOSTICS.md``.
"""

from repro.diagnostics.engine import (
    CheckReport,
    check_module,
    check_prepared,
    check_source,
)
from repro.diagnostics.findings import (
    ERROR,
    INFO,
    RULES,
    RULES_BY_ID,
    SEVERITIES,
    WARNING,
    Finding,
    Rule,
    rangeset_payload,
    severity_rank,
)
from repro.diagnostics.render import render_json, render_text
from repro.diagnostics.rules import all_findings
from repro.diagnostics.sarif import (
    LEVEL_FOR_SEVERITY,
    SARIF_VERSION,
    render_sarif,
    sarif_report,
    validate_sarif,
)

__all__ = [
    "CheckReport",
    "ERROR",
    "Finding",
    "INFO",
    "LEVEL_FOR_SEVERITY",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "SARIF_VERSION",
    "SEVERITIES",
    "WARNING",
    "all_findings",
    "check_module",
    "check_prepared",
    "check_source",
    "rangeset_payload",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_report",
    "severity_rank",
    "validate_sarif",
]
