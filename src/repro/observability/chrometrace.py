"""Chrome trace-event JSON export (``about:tracing`` / Perfetto).

The tracer's :class:`~repro.observability.tracer.SpanRecord` tree and
the serving daemon's shipped span lists both flatten into the Chrome
trace-event format's complete events (``"ph": "X"``), the one trace
interchange format every browser ships a viewer for.  ``repro submit
--trace-out t.json`` and ``repro profile --trace-out t.json`` write
these documents; load them in ``chrome://tracing`` or
https://ui.perfetto.dev to see the request tree on a timeline.

Document shape (the JSON-object flavour, which Perfetto and Chrome both
accept)::

    {
      "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {...}},
        {"name": "submit:p.toy", "ph": "X", "ts": 12.0, "dur": 830.5,
         "pid": 1, "tid": 1, "args": {"trace_id": "..."}},
        ...
      ],
      "displayTimeUnit": "ms",
      "otherData": {"trace_id": "..."}
    }

Timestamps (``ts``) and durations (``dur``) are microseconds.  Spans
shipped across the process boundary arrive as *relative* offsets from
the server's request start; the client re-bases them onto its own
clock (its request-start instant), which nests them correctly under
the client span without needing synchronised clocks.

:func:`validate_chrome_trace` is the structural check CI runs on every
exported artifact -- it enforces exactly the invariants the viewers
need, nothing more.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: Span dict keys used on the wire (server -> client ``trace`` field).
WIRE_SPAN_KEYS = ("name", "start_us", "dur_us", "parent")


def serialize_spans(spans: Sequence[object]) -> List[dict]:
    """Tracer ``SpanRecord`` objects -> wire-format span dicts.

    Offsets are microseconds relative to the first span's start (the
    request/root span), so the receiver can re-base them on any clock.
    Open spans (``end is None``) are skipped -- a shipped trace
    describes finished work only.
    """
    closed = [span for span in spans if getattr(span, "end", None) is not None]
    if not closed:
        return []
    base = min(span.start for span in closed)
    out = []
    for span in closed:
        out.append(
            {
                "name": span.name,
                "start_us": round((span.start - base) * 1e6, 1),
                "dur_us": round((span.end - span.start) * 1e6, 1),
                "parent": span.parent,
            }
        )
    return out


def complete_event(
    name: str,
    ts_us: float,
    dur_us: float,
    pid: int = 1,
    tid: int = 1,
    args: Optional[dict] = None,
) -> dict:
    """One ``"ph": "X"`` (complete) trace event."""
    event = {
        "name": name,
        "ph": "X",
        "ts": ts_us,
        "dur": dur_us,
        "pid": pid,
        "tid": tid,
        "cat": "repro",
    }
    if args:
        event["args"] = args
    return event


def metadata_event(name: str, pid: int, value: str, tid: int = 0) -> dict:
    """A ``"ph": "M"`` metadata event naming a process or thread track."""
    key = "name"
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {key: value},
    }


def events_from_wire_spans(
    wire_spans: Sequence[dict],
    base_ts_us: float,
    pid: int = 1,
    tid: int = 1,
    trace_id: Optional[str] = None,
) -> List[dict]:
    """Wire-format spans -> complete events re-based at ``base_ts_us``."""
    events = []
    for span in wire_spans:
        if not isinstance(span, dict) or "name" not in span:
            continue
        args: Dict[str, object] = {}
        if trace_id:
            args["trace_id"] = trace_id
        events.append(
            complete_event(
                str(span["name"]),
                base_ts_us + float(span.get("start_us", 0.0)),
                float(span.get("dur_us", 0.0)),
                pid=pid,
                tid=tid,
                args=args or None,
            )
        )
    return events


def chrome_trace_document(
    events: Sequence[dict], trace_id: Optional[str] = None
) -> dict:
    """Wrap events in the JSON-object trace container."""
    document: dict = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if trace_id:
        document["otherData"] = {"trace_id": trace_id}
    return document


def write_chrome_trace(
    path: str, events: Sequence[dict], trace_id: Optional[str] = None
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_document(events, trace_id), handle, indent=1)
        handle.write("\n")


def validate_chrome_trace(document: object) -> List[str]:
    """Structural check of an exported trace; returns problems (empty = ok).

    Accepts both container flavours the viewers accept: a JSON object
    with a ``traceEvents`` list, or a bare JSON array of events.
    """
    problems: List[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["'traceEvents' must be a list"]
    elif isinstance(document, list):
        events = document
    else:
        return ["trace must be a JSON object or array"]
    if not events:
        problems.append("trace contains no events")
        return problems
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing 'name'")
        if phase not in ("X", "B", "E", "M", "I", "i"):
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: 'pid' must be an integer")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"{where}: {key!r} must be a number")
                elif value < 0:
                    problems.append(f"{where}: {key!r} must be >= 0")
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: 'tid' must be an integer")
    return problems
