"""Explain mode: per-branch provenance tags and the round-cap note.

Every explained branch says where its probability came from -- an
interprocedural summary, plain intraprocedural propagation, or the
Ball-Larus heuristic fallback -- and branches inside a recursive
component whose fixed point hit the round cap carry a warning note.
"""

import functools

import pytest

from repro.core import VRPConfig
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.observability import explain_module
from repro.observability.explain import PROVENANCE_TEXT, BranchExplanation

# One unanalysable call site (raw input()) poisons affine's merged
# parameter range; the k=1 context re-derives the narrow site.
MIXED = """
func affine(v) {
  return v * 3 + 1;
}

func main(n) {
  var x = input();
  var a = affine(x % 8);
  var w = affine(x);
  var t = x % 4;
  if (a < 12) { t = t + 1; }
  if (w < 0) { t = t + 2; }
  if (t < 9) { return 1; }
  return t;
}
"""


def _prepared(source):
    module = compile_source(source)
    return module, prepare_module(module)


def _by_label(explanations, function="main"):
    return {
        label: explanation
        for (fn, label), explanation in explanations.items()
        if fn == function
    }


class TestProvenanceTags:
    @pytest.fixture(scope="class")
    def contextual(self):
        module, infos = _prepared(MIXED)
        return explain_module(
            module, infos, config=VRPConfig(context_depth=1)
        )

    def test_all_three_tags_appear(self, contextual):
        tags = {e.provenance for e in contextual.values()}
        assert {"interprocedural", "intraprocedural", "heuristic"} <= tags

    def test_context_recovered_branch_is_interprocedural(self, contextual):
        recovered = [
            e
            for e in contextual.values()
            if e.provenance == "interprocedural"
        ]
        assert recovered
        for explanation in recovered:
            assert explanation.source == "ranges"
            assert 0.0 <= explanation.probability <= 1.0
            assert "interprocedural summary" in explanation.render()

    def test_poisoned_branch_stays_heuristic(self, contextual):
        fallbacks = [
            e for e in contextual.values() if e.provenance == "heuristic"
        ]
        assert fallbacks
        for explanation in fallbacks:
            assert explanation.source == "heuristic"

    def test_rendered_lines_carry_the_tag_text(self, contextual):
        for explanation in contextual.values():
            rendered = explanation.render()
            assert (
                f"provenance: {PROVENANCE_TEXT[explanation.provenance]}"
                in rendered
            )

    def test_depth_zero_has_no_interprocedural_tag(self):
        module, infos = _prepared(MIXED)
        explanations = explain_module(module, infos)
        tags = {e.provenance for e in explanations.values()}
        assert "interprocedural" not in tags
        assert "heuristic" in tags


class TestProvenanceText:
    def test_table_is_total_over_known_tags(self):
        for tag in ("interprocedural", "intraprocedural", "heuristic"):
            assert tag in PROVENANCE_TEXT

    def test_unknown_tag_degrades_to_itself(self):
        explanation = BranchExplanation(
            function="f",
            label="entry0",
            probability=0.5,
            source="ranges",
            provenance="mystery",
        )
        assert "provenance: mystery" in explanation.render()


MUTUAL = """
func ping(n) {
  if (n < 1) { return 0; }
  return pong(n - 1) + 1;
}

func pong(n) {
  if (n < 1) { return 0; }
  return ping(n - 1) + 1;
}

func main(n) {
  return ping(9);
}
"""


class TestRoundCapNote:
    def test_capped_component_branches_carry_the_note(self, monkeypatch):
        import repro.core.interprocedural as inter
        import repro.core.predictor as predictor_mod

        monkeypatch.setattr(
            predictor_mod,
            "analyse_module",
            functools.partial(inter.analyse_module, max_rounds=1),
        )
        module, infos = _prepared(MUTUAL)
        explanations = explain_module(module, infos)
        capped = [
            e
            for (fn, _), e in explanations.items()
            if fn in ("ping", "pong")
        ]
        assert capped
        for explanation in capped:
            assert any(
                "round cap hit after 1 rounds" in note
                for note in explanation.notes
            ), explanation.notes
            assert "may not have converged" in explanation.render()

    def test_converged_run_has_no_cap_note(self):
        # MUTUAL's growing return ranges genuinely exhaust the default
        # round budget, so the converged control is the call-only MIXED
        # module.
        module, infos = _prepared(MIXED)
        explanations = explain_module(module, infos)
        for explanation in explanations.values():
            assert not any(
                "round cap" in note for note in explanation.notes
            )
