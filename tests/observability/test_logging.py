"""Structured JSON logging: line shape, trace correlation, idempotence."""

import io
import json
import logging

import pytest

from repro.observability import context as tracecontext
from repro.observability.logging import (
    FIELDS_KEY,
    ROOT_LOGGER,
    JsonFormatter,
    configure_json_logging,
    get_logger,
    log_event,
)


@pytest.fixture
def clean_root():
    """Restore the repro root logger after each test."""
    root = logging.getLogger(ROOT_LOGGER)
    saved = (list(root.handlers), root.level, root.propagate)
    yield root
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


def capture(stream: io.StringIO) -> list:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLines:
    def test_one_line_one_object(self, clean_root):
        stream = io.StringIO()
        configure_json_logging(stream)
        log_event(get_logger("t"), "hello", status=200)
        (line,) = capture(stream)
        assert line["message"] == "hello"
        assert line["status"] == 200
        assert line["level"] == "INFO"
        assert line["logger"] == "repro.t"
        assert line["ts"].endswith("Z")

    def test_trace_correlation(self, clean_root):
        stream = io.StringIO()
        configure_json_logging(stream)
        context = tracecontext.mint()
        with tracecontext.use(context):
            log_event(get_logger("t"), "traced")
        log_event(get_logger("t"), "untraced")
        traced, untraced = capture(stream)
        assert traced["trace_id"] == context.trace_id
        assert traced["span_id"] == context.span_id
        assert "trace_id" not in untraced

    def test_unserialisable_fields_degrade_to_repr(self, clean_root):
        stream = io.StringIO()
        configure_json_logging(stream)
        log_event(get_logger("t"), "odd", thing=object())
        (line,) = capture(stream)
        assert "object object" in line["thing"]

    def test_exception_info_is_rendered(self, clean_root):
        stream = io.StringIO()
        configure_json_logging(stream)
        log = get_logger("t")
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("failed")
        (line,) = capture(stream)
        assert line["level"] == "ERROR"
        assert "ValueError: boom" in line["exc_info"]

    def test_fields_cannot_clobber_core_keys(self, clean_root):
        stream = io.StringIO()
        configure_json_logging(stream)
        log = get_logger("t")
        log.info("msg", extra={FIELDS_KEY: {"message": "spoof", "level": "spoof"}})
        (line,) = capture(stream)
        assert line["message"] == "msg"
        assert line["level"] == "INFO"


class TestConfigure:
    def test_idempotent(self, clean_root):
        stream = io.StringIO()
        configure_json_logging(stream)
        configure_json_logging(stream)
        json_handlers = [
            h
            for h in logging.getLogger(ROOT_LOGGER).handlers
            if getattr(h, "_repro_json", False)
        ]
        assert len(json_handlers) == 1
        log_event(get_logger("t"), "once")
        assert len(capture(stream)) == 1

    def test_unconfigured_library_use_is_silent(self, clean_root):
        # No handler installed: INFO events go nowhere and raise nothing.
        log_event(get_logger("quiet"), "nobody hears this")

    def test_formatter_direct(self):
        record = logging.LogRecord(
            "repro.x", logging.WARNING, __file__, 1, "warn %s", ("me",), None
        )
        setattr(record, FIELDS_KEY, {"k": "v"})
        line = json.loads(JsonFormatter().format(record))
        assert line["message"] == "warn me"
        assert line["k"] == "v"
        assert line["level"] == "WARNING"
