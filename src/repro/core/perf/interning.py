"""Hash-consing for the lattice value types.

Structurally-equal :class:`~repro.core.bounds.Bound`,
:class:`~repro.core.ranges.StridedRange` and
:class:`~repro.core.rangeset.RangeSet` values are mapped to one
canonical object, so

* ``__eq__`` / ``approx_equal`` fast-path on identity,
* the engine's "did this value change?" checks become pointer
  comparisons, and
* memoization caches can key on the values themselves with cheap
  (cached) hashes.

The tables are **bounded** (FIFO eviction past the cap): eviction never
changes results -- two canonical objects for the same value merely lose
the identity fast path, and every consumer falls back to structural
equality.  ⊤ and ⊥ always intern to the module singletons
:data:`repro.core.rangeset.TOP` / :data:`repro.core.rangeset.BOTTOM`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TypeVar

from repro.core.perf.stats import stats

T = TypeVar("T")

DEFAULT_INTERN_SIZE = 65536


class InternTable:
    """A bounded value -> canonical-object map (first one wins)."""

    __slots__ = ("name", "capacity", "_table", "_stats")

    def __init__(self, name: str, capacity: int = DEFAULT_INTERN_SIZE):
        self.name = name
        self.capacity = capacity
        self._table: "OrderedDict" = OrderedDict()
        # The CacheStats objects live as long as the process (reset()
        # zeroes them in place), so binding once avoids a lookup per hit.
        self._stats = stats().caches[name]

    def intern(self, value: T) -> T:
        table = self._table
        record = self._stats
        canonical = table.get(value)
        if canonical is not None:
            record.hits += 1
            table.move_to_end(value)
            return canonical
        record.misses += 1
        table[value] = value
        if len(table) > self.capacity:
            table.popitem(last=False)
            record.evictions += 1
        return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()


_BOUNDS = InternTable("intern_bound")
_RANGES = InternTable("intern_range")
_RANGESETS = InternTable("intern_rangeset")


def intern_bound(bound):
    """The canonical object for a :class:`Bound` (``is``-comparable)."""
    return _BOUNDS.intern(bound)


def intern_range(rng):
    """The canonical object for a :class:`StridedRange`, bounds included."""
    canonical = _RANGES.intern(rng)
    if canonical is rng:
        # First sighting: canonicalise the bounds in place (same values).
        rng.lo = _BOUNDS.intern(rng.lo)
        rng.hi = _BOUNDS.intern(rng.hi)
    return canonical


def intern_rangeset(rangeset):
    """The canonical object for a :class:`RangeSet` (⊤/⊥ -> singletons).

    Member ranges are deliberately *not* re-interned: identity of the
    set itself is what the engine's change checks and the memo keys use,
    and per-member table probes measurably outweigh the cross-set
    sharing they would buy.
    """
    from repro.core.rangeset import BOTTOM, TOP

    if rangeset.is_top:
        return TOP
    if rangeset.is_bottom:
        return BOTTOM
    return _RANGESETS.intern(rangeset)


def configure(capacity: int) -> None:
    """Resize all intern tables (shrinking evicts oldest entries)."""
    for table in (_BOUNDS, _RANGES, _RANGESETS):
        table.capacity = capacity
        while len(table._table) > capacity:
            table._table.popitem(last=False)


def clear() -> None:
    """Drop every interned value (identity guarantees start over)."""
    _BOUNDS.clear()
    _RANGES.clear()
    _RANGESETS.clear()


def table_sizes() -> dict:
    return {
        "bound": len(_BOUNDS),
        "range": len(_RANGES),
        "rangeset": len(_RANGESETS),
    }
