"""Per-function summaries and k-limited calling contexts (paper §3.7).

A :class:`FunctionSummary` is the immutable interprocedural digest of
one function after the bottom-up fixed point converged:

* **parameter jump functions** -- the call-frequency weighted merge of
  the argument ranges over every call site (what the callee's formal
  parameters were seeded with);
* **return range** -- the frequency-weighted merge of the function's
  return values (what callers' call results were seeded with);
* **call frequency** -- how much weighted call traffic reached the
  function, plus the number of syntactic call sites;
* **purity bit** -- whether the function is provably *range-effect
  free*: it never reads external input (``input()``) and only calls
  defined, pure functions.  A pure callee's return range is a function
  of its argument ranges alone, which is exactly the property that
  makes context-sensitive memoization sound.

Context sensitivity is k-limited: a calling context is the tuple of
*abstracted* argument range sets at one call site
(:func:`abstract_argument_set` strips caller-local symbols), and
``k = VRPConfig.context_depth`` bounds how deep contexts nest through
chained calls.  ``k = 0`` asks no context questions at all and
reproduces the context-insensitive analysis byte-for-byte.

The (function, context) → return-range memo is a :class:`SummaryCache`:
a bounded LRU whose hit/miss/eviction counts feed the perf layer's
statistics under the ``summary_context`` cache name.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.callgraph import CallGraph
from repro.core.perf.stats import stats as perf_stats
from repro.core.rangeset import BOTTOM, RangeSet
from repro.ir.function import Module
from repro.ir.instructions import Call, Input

#: Default capacity of the (function, context) → summary memo.
DEFAULT_CONTEXT_CACHE_SIZE = 256


# -- purity ------------------------------------------------------------------


def compute_purity(module: Module, callgraph: Optional[CallGraph] = None) -> Dict[str, bool]:
    """The range-effect-free bit for every defined function.

    Optimistic fixed point over the call graph: a function starts pure
    and becomes impure when it reads ``input()``, calls an undefined
    function, or (transitively) calls an impure one.  Recursive cycles
    of otherwise-effect-free functions therefore stay pure.
    """
    callgraph = callgraph if callgraph is not None else CallGraph(module)
    pure: Dict[str, bool] = {}
    for name, function in module.functions.items():
        impure = False
        for block in function.blocks.values():
            for instr in block.instructions:
                if isinstance(instr, Input):
                    impure = True
                elif isinstance(instr, Call) and instr.callee not in module.functions:
                    impure = True
            if impure:
                break
        pure[name] = not impure
    changed = True
    while changed:
        changed = False
        for name in module.functions:
            if not pure[name]:
                continue
            if any(not pure.get(callee, False) for callee in callgraph.callees[name]):
                pure[name] = False
                changed = True
    return pure


# -- summaries ---------------------------------------------------------------


@dataclass(frozen=True)
class FunctionSummary:
    """Immutable interprocedural digest of one analysed function."""

    function: str
    params: Tuple[str, ...]
    #: Parameter jump functions: formal name → merged argument range.
    param_ranges: Tuple[Tuple[str, RangeSet], ...]
    #: Frequency-weighted merge of the function's return values.
    return_range: RangeSet
    #: Total weighted call frequency over every call site.
    call_frequency: float
    #: Number of syntactic call sites targeting the function.
    call_sites: int
    #: Range-effect free: return range is a function of arguments alone.
    pure: bool

    def param_range(self, name: str) -> RangeSet:
        for param, rangeset in self.param_ranges:
            if param == name:
                return rangeset
        return BOTTOM

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "params": list(self.params),
            "param_ranges": {name: str(r) for name, r in self.param_ranges},
            "return_range": str(self.return_range),
            "call_frequency": self.call_frequency,
            "call_sites": self.call_sites,
            "pure": self.pure,
        }


class ModuleSummaries:
    """All function summaries of one module, plus the purity map."""

    def __init__(self, module_name: str, summaries: Dict[str, FunctionSummary]):
        self.module_name = module_name
        self._summaries = dict(summaries)

    def of(self, function: str) -> Optional[FunctionSummary]:
        return self._summaries.get(function)

    def __contains__(self, function: str) -> bool:
        return function in self._summaries

    def __iter__(self):
        return iter(sorted(self._summaries))

    def __len__(self) -> int:
        return len(self._summaries)

    def as_dict(self) -> dict:
        return {name: self._summaries[name].as_dict() for name in sorted(self._summaries)}

    def __repr__(self) -> str:
        return f"ModuleSummaries({self.module_name!r}, {len(self)} functions)"


def build_summaries(
    module: Module,
    callgraph: CallGraph,
    purity: Dict[str, bool],
    param_sets: Dict[str, Dict[str, RangeSet]],
    return_sets: Dict[str, RangeSet],
    block_frequencies: Dict[str, Dict[str, float]],
) -> ModuleSummaries:
    """Assemble :class:`ModuleSummaries` from a converged fixed point.

    ``param_sets``/``return_sets`` are the driver's jump- and
    return-function results; ``block_frequencies`` maps each function to
    its blocks' execution frequencies (used to weigh call traffic).
    """
    frequency: Dict[str, float] = {name: 0.0 for name in module.functions}
    sites: Dict[str, int] = {name: 0 for name in module.functions}
    for site in callgraph.call_sites:
        callee = site.callee
        if callee not in module.functions:
            continue
        sites[callee] += 1
        caller_blocks = block_frequencies.get(site.caller, {})
        frequency[callee] += caller_blocks.get(site.block_label, 0.0)
    summaries: Dict[str, FunctionSummary] = {}
    for name, function in module.functions.items():
        params = tuple(function.params)
        merged = param_sets.get(name, {})
        summaries[name] = FunctionSummary(
            function=name,
            params=params,
            param_ranges=tuple(
                (param, merged.get(param, BOTTOM)) for param in params
            ),
            return_range=return_sets.get(name, BOTTOM),
            call_frequency=frequency[name],
            call_sites=sites[name],
            pure=purity.get(name, False),
        )
    return ModuleSummaries(module.name, summaries)


# -- contexts ----------------------------------------------------------------

#: A calling context: (callee, remaining depth, abstracted argument sets).
ContextKey = Tuple[str, int, Tuple[RangeSet, ...]]


def abstract_argument_set(rangeset: RangeSet) -> RangeSet:
    """Abstract one argument range for use as callee-side context.

    Symbolic bounds name SSA variables of the *caller*; they are
    meaningless inside the callee, so symbolic sets widen to their
    numeric hull (or ⊥ when even the hull is symbolic).  ⊤ arguments
    (not yet computed) abstract to ⊥ -- a context must never be more
    optimistic than the merge it refines.
    """
    if rangeset.is_top:
        return BOTTOM
    if rangeset.is_set and rangeset.symbols():
        hull = rangeset.hull()
        if hull is not None and not hull.symbols():
            return RangeSet.from_ranges([hull])
        return BOTTOM
    return rangeset


def context_key(
    callee: str, arg_sets: Sequence[RangeSet], depth: int
) -> ContextKey:
    """The memo key for one k-limited calling context.

    Range sets hash-cons under the perf layer and define value-based
    ``__hash__``/``__eq__`` regardless, so the tuple is usable as a
    dictionary key either way.
    """
    return (callee, depth, tuple(arg_sets))


class SummaryCache:
    """Bounded-LRU memo of (function, context) → return range.

    Hit/miss/eviction counts are tallied into the perf layer's global
    statistics under the ``summary_context`` cache name, so
    ``--emit-metrics`` reports and the interprocedural benchmark see
    exactly how much context reuse the workload exhibited.
    """

    def __init__(self, capacity: int = DEFAULT_CONTEXT_CACHE_SIZE):
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[ContextKey, RangeSet]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _record(self):
        return perf_stats().caches["summary_context"]

    def get(self, key: ContextKey) -> Optional[RangeSet]:
        entry = self._entries.get(key)
        record = self._record()
        if entry is None:
            record.misses += 1
            return None
        record.hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: ContextKey, value: RangeSet) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._record().evictions += 1

    def clear(self) -> None:
        """Drop entries (statistics are cumulative and survive)."""
        self._entries.clear()

    def stats(self) -> Dict[str, float]:
        return self._record().as_dict()
