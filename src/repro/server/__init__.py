"""Prediction-as-a-service: the long-running ``repro serve`` daemon.

Every other entry point in the package is one-shot: it pays full
startup plus analysis cost for a single program and exits, so the perf
layer's caches (PR 3) and the pass manager's analysis cache (PR 4) only
amortize *within* one process.  This package is the resident shape of
the paper's claim that VRP is cheap enough to run routinely: a threaded
HTTP daemon that accepts program text and answers with predictions,
diagnostics, IR, or execution profiles -- byte-identical to the
corresponding one-shot CLI output (see ``docs/SERVING.md``).

Layers, bottom up:

* :mod:`.cache`    -- content-addressed result cache (SHA-256 of source
  + config fingerprint), memory tier over an on-disk tier that survives
  restarts;
* :mod:`.workers`  -- bounded worker pool with request queueing; a full
  queue is backpressure (HTTP 503), not an unbounded backlog;
* :mod:`.service`  -- command execution with per-request analysis
  timeouts and graceful degradation to heuristics-only prediction;
* :mod:`.stats`    -- per-endpoint request counts and latency
  histograms, cache tiers, degraded/rejected counters;
* :mod:`.httpd`    -- the HTTP front end (``/v1/*``, ``/healthz``,
  ``/metricsz``) plus SIGTERM drain;
* :mod:`.client`   -- the stdlib client behind ``repro submit``.

Everything is standard library only.
"""

from __future__ import annotations

from repro.server.cache import ResultCache, request_key
from repro.server.client import ServeClient, ServerError
from repro.server.httpd import ReproServer, serve_daemon
from repro.server.protocol import (
    COMMANDS,
    ProtocolError,
    validate_request,
)
from repro.server.service import AnalysisService, AnalysisTimeout
from repro.server.stats import ServerStats
from repro.server.workers import QueueFullError, WorkerPool

__all__ = [
    "COMMANDS",
    "AnalysisService",
    "AnalysisTimeout",
    "ProtocolError",
    "QueueFullError",
    "ReproServer",
    "ResultCache",
    "ServeClient",
    "ServerError",
    "ServerStats",
    "WorkerPool",
    "request_key",
    "serve_daemon",
    "validate_request",
]
