"""Branch profiles: aggregated execution counts and the profile-based
predictor.

A :class:`BranchProfile` accumulates one or more
:class:`~repro.profiling.interpreter.ExecutionResult` runs (the paper's
"feedback collection" runs on the *train* inputs) and answers branch
probabilities; :class:`ProfilePredictor` exposes it under the common
predictor interface so the evaluation harness can score it against the
ground-truth behaviour on different (*ref*) inputs -- reproducing the
paper's train/ref methodology.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.ir.function import Function
from repro.profiling.interpreter import ExecutionResult


class BranchProfile:
    """Aggregated branch statistics over any number of runs."""

    def __init__(self) -> None:
        #: (function, branch block) -> [taken, not taken]
        self.branch_counts: Dict[Tuple[str, str], list] = {}
        #: (function, block) -> execution count
        self.block_counts: Dict[Tuple[str, str], int] = {}

    @classmethod
    def from_runs(cls, runs: Iterable[ExecutionResult]) -> "BranchProfile":
        profile = cls()
        for run in runs:
            profile.add_run(run)
        return profile

    def add_run(self, run: ExecutionResult) -> None:
        for key, counts in run.branch_counts.items():
            mine = self.branch_counts.setdefault(key, [0, 0])
            mine[0] += counts[0]
            mine[1] += counts[1]
        for key, count in run.block_counts.items():
            self.block_counts[key] = self.block_counts.get(key, 0) + count

    # -- queries -----------------------------------------------------------

    def probability(self, function: str, label: str) -> Optional[float]:
        """Observed P(true) for a branch; None when never executed."""
        counts = self.branch_counts.get((function, label))
        if counts is None:
            return None
        total = counts[0] + counts[1]
        if total == 0:
            return None
        return counts[0] / total

    def execution_count(self, function: str, label: str) -> int:
        counts = self.branch_counts.get((function, label))
        if counts is None:
            return 0
        return counts[0] + counts[1]

    def branches_of(self, function: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (func, label), counts in self.branch_counts.items():
            if func != function:
                continue
            total = counts[0] + counts[1]
            if total:
                out[label] = counts[0] / total
        return out


class ProfilePredictor:
    """Predict branches from a (train-input) profile.

    Branches the profile never saw get the ``unseen`` probability
    (default 0.5), mirroring how feedback-directed compilers handle
    never-executed code.
    """

    name = "profile"

    def __init__(self, profile: BranchProfile, unseen: float = 0.5):
        self.profile = profile
        self.unseen = unseen

    def predict_function(self, function: Function) -> Dict[str, float]:
        from repro.ir.instructions import Branch

        out: Dict[str, float] = {}
        for label, block in function.blocks.items():
            if not isinstance(block.terminator, Branch):
                continue
            probability = self.profile.probability(function.name, label)
            out[label] = self.unseen if probability is None else probability
        return out
