"""§4 runtime claim: VRP "maintains the linear runtime behavior of
constant propagation experienced in practice".

Times whole analyses over the size-scaled synthetic family and checks
that per-instruction analysis time does not blow up with program size.
One predictor (one shared :class:`VRPConfig`) is constructed outside
the timed region, so the loop times analysis work only -- not object
construction.  Alongside wall time the worklist pressure (flow + SSA
pushes) is recorded; work per instruction is the noise-free linearity
signal, so the hard assertion is on it.
"""

import time

from benchmarks.conftest import emit
from repro.core import VRPConfig, VRPPredictor
from repro.evalharness import synthetic_program
from repro.ir import prepare_module
from repro.lang import compile_source


def prepare(units):
    module = compile_source(synthetic_program(units))
    infos = prepare_module(module)
    return module, infos


def test_runtime_scales_linearly(benchmark, results_dir):
    sizes = [4, 8, 16, 32, 64]
    prepared = {units: prepare(units) for units in sizes}
    config = VRPConfig()
    predictor = VRPPredictor(config=config)

    pushes = {}

    def analyse_all():
        timings = {}
        for units, (module, infos) in prepared.items():
            start = time.perf_counter()
            prediction = predictor.predict_module(module, infos)
            timings[units] = time.perf_counter() - start
            counters = prediction.counters
            pushes[units] = counters.flow_pushes + counters.ssa_pushes
        return timings

    timings = benchmark.pedantic(analyse_all, rounds=1, iterations=1, warmup_rounds=1)

    lines = ["Runtime linearity (paper section 4)", ""]
    lines.append(
        f"{'units':>6s} {'instructions':>13s} {'seconds':>9s} {'us/instr':>9s} "
        f"{'pushes':>8s} {'push/instr':>11s}"
    )
    per_instruction = {}
    pushes_per_instruction = {}
    for units, (module, _) in prepared.items():
        count = module.instruction_count()
        seconds = timings[units]
        per_instruction[units] = seconds / count * 1e6
        pushes_per_instruction[units] = pushes[units] / count
        lines.append(
            f"{units:>6d} {count:>13d} {seconds:>9.3f} {per_instruction[units]:>9.1f} "
            f"{pushes[units]:>8d} {pushes_per_instruction[units]:>11.2f}"
        )
    emit(results_dir, "runtime_linearity.txt", "\n".join(lines))

    # Worklist pushes are deterministic, so linearity of the analysis
    # work itself is asserted tightly: per-instruction pushes must not
    # grow with program size (2x covers structural differences between
    # the smallest and largest family members).
    assert pushes_per_instruction[sizes[-1]] < 2.0 * pushes_per_instruction[sizes[0]]

    # Per-instruction cost may wobble but must not grow with size:
    # allow 3x drift between the smallest and largest program.
    assert per_instruction[sizes[-1]] < 3.0 * max(per_instruction[sizes[0]], 1e-9)
