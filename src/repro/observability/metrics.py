"""Machine-readable metrics for one analysis run.

A :class:`MetricsReport` aggregates the three observability products --
work counters, span phase timings, and per-branch provenance -- into a
stable JSON document (schema documented in ``docs/OBSERVABILITY.md``).
The evaluation harness and the ``benchmarks/`` suite write these as
``BENCH_*.json`` files so figures can be post-processed by tools
instead of scraped from tables.

Top-level schema keys (``SCHEMA_KEYS``):

* ``schema_version`` -- integer, currently 8;
* ``program``        -- module/workload name;
* ``phases``         -- {span name: {"count": int, "seconds": float}};
* ``counters``       -- the :class:`repro.core.counters.Counters` dict;
* ``branches``       -- list of per-branch provenance records;
* ``diagnostics``    -- findings from ``repro check`` (since v2; absent
  in v1 documents, which still validate);
* ``perf``           -- cache hit/miss statistics from the perf layer
  (since v3; absent when the layer is disabled, older documents still
  validate);
* ``passes``         -- pass-manager telemetry from ``repro opt``
  (since v4; ``pipeline`` order, per-pass wall time / rewrite counts /
  cache traffic under ``runs``, per-analysis hit/miss/invalidation
  totals under ``analyses``; absent outside pipeline runs, v1-v3
  documents still validate);
* ``server``         -- serving-daemon telemetry from ``repro serve``
  (since v5; per-endpoint request/latency histograms, result-cache
  hit/miss per tier, degraded/rejected counts; absent outside the
  daemon, v1-v4 documents still validate);
* ``profile``        -- profiler output from ``repro profile`` (since
  v6; per-span self/cumulative seconds and counts, hot transfer
  functions, wall time; absent outside profiled runs, v1-v5 documents
  still validate);
* ``tracing``        -- request-trace correlation (since v6; the
  ``trace_id`` of the run plus span totals; absent when no trace
  context was active, v1-v5 documents still validate);
* ``interprocedural`` -- fixed-point telemetry from the module driver
  (since v7; rounds vs the round cap, convergence, context depth,
  contexts analysed, summary-cache hit/miss/eviction stats; absent on
  single-function runs, v1-v6 documents still validate);
* ``incremental``    -- incremental-analysis telemetry (since v8;
  functions reanalyzed vs replayed, component-level splits, store
  hit/miss/eviction counts; absent outside ``--incremental`` runs,
  v1-v7 documents still validate);
* ``meta``           -- rounds, function/event totals, drop counts.

Each branch record has ``function``, ``label``, ``probability``,
``source`` ("ranges" or "heuristic"), and -- when a recording tracer
was active -- ``cond``, ``cond_range``, ``cmp_op``, ``operands`` and
``heuristics`` (the Ball-Larus chain with per-heuristic estimates).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.observability.events import BranchResolution, HeuristicChain

SCHEMA_VERSION = 8

SCHEMA_KEYS = (
    "schema_version",
    "program",
    "phases",
    "counters",
    "branches",
    "diagnostics",
    "perf",
    "passes",
    "server",
    "profile",
    "tracing",
    "interprocedural",
    "incremental",
    "meta",
)

# Keys a report may omit (documents written by older schema versions,
# runs with the perf layer disabled, non-pipeline or non-daemon runs).
OPTIONAL_KEYS = (
    "diagnostics",
    "perf",
    "passes",
    "server",
    "profile",
    "tracing",
    "interprocedural",
    "incremental",
)

BRANCH_KEYS = ("function", "label", "probability", "source")


@dataclass
class MetricsReport:
    """Aggregated, serialisable metrics of one analysis run."""

    program: str
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    branches: List[dict] = field(default_factory=list)
    diagnostics: List[dict] = field(default_factory=list)
    perf: Dict[str, dict] = field(default_factory=dict)
    passes: Dict[str, object] = field(default_factory=dict)
    server: Dict[str, object] = field(default_factory=dict)
    profile: Dict[str, object] = field(default_factory=dict)
    tracing: Dict[str, object] = field(default_factory=dict)
    interprocedural: Dict[str, object] = field(default_factory=dict)
    incremental: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "program": self.program,
            "phases": self.phases,
            "counters": self.counters,
            "branches": self.branches,
            "diagnostics": self.diagnostics,
            "perf": self.perf,
            "passes": self.passes,
            "server": self.server,
            "profile": self.profile,
            "tracing": self.tracing,
            "interprocedural": self.interprocedural,
            "incremental": self.incremental,
            "meta": self.meta,
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsReport":
        return cls(
            program=data["program"],
            phases=data.get("phases", {}),
            counters=data.get("counters", {}),
            branches=data.get("branches", []),
            diagnostics=data.get("diagnostics", []),
            perf=data.get("perf", {}),
            passes=data.get("passes", {}),
            server=data.get("server", {}),
            profile=data.get("profile", {}),
            tracing=data.get("tracing", {}),
            interprocedural=data.get("interprocedural", {}),
            incremental=data.get("incremental", {}),
            meta=data.get("meta", {}),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "MetricsReport":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def read(cls, path: str) -> "MetricsReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def build_metrics_report(
    prediction,
    tracer=None,
    program: str = "module",
    findings=None,
    perf_stats=None,
    passes=None,
    server_stats=None,
    profile=None,
    incremental=None,
) -> "MetricsReport":
    """Assemble a report from a :class:`ModulePrediction` and a tracer.

    Works with a disabled (or absent) tracer: phase timings come out
    empty and branch provenance degrades to probability + source, both
    reconstructable from the prediction alone.  ``findings`` (an
    iterable of :class:`repro.diagnostics.Finding`) populates the
    ``diagnostics`` key when ``repro check`` is the caller;
    ``perf_stats`` (a ``repro.core.perf.snapshot()`` dict) populates
    the ``perf`` key when the perf layer was on for the run;
    ``passes`` (a :meth:`repro.passes.PipelineResult.passes_metrics`
    dict) populates the ``passes`` key when a pass pipeline drove the
    analysis; ``server_stats`` (a ``repro.server.ServerStats.snapshot()``
    dict) populates the ``server`` key when the serving daemon is the
    caller; ``profile`` (a
    :meth:`repro.observability.profiler.ProfileReport.as_metrics` dict)
    populates the ``profile`` key when ``repro profile`` is the caller.
    ``incremental`` (an
    :meth:`repro.incremental.IncrementalOutcome.as_metrics` dict)
    populates the ``incremental`` key when the incremental driver ran.
    The ``tracing`` key fills itself from the ambient trace context
    (``repro.observability.context``) when one is active, and the
    ``interprocedural`` key from the prediction's fixed-point telemetry
    when the module driver produced one (absent on single-function runs).
    """
    from repro.observability import context as tracecontext
    phases: Dict[str, Dict[str, float]] = {}
    meta: Dict[str, object] = {
        "rounds": getattr(prediction, "rounds", 1),
        "functions": len(prediction.functions),
        "aborted_functions": sorted(
            name
            for name, function_prediction in prediction.functions.items()
            if function_prediction.aborted
        ),
    }
    provenance: Dict[tuple, BranchResolution] = {}
    chains: Dict[tuple, HeuristicChain] = {}
    if tracer is not None and tracer.enabled:
        for name, timing in tracer.phase_timings().items():
            phases[name] = {"count": timing.count, "seconds": timing.seconds}
        # Later events overwrite earlier ones: the final resolution wins.
        for event in tracer.events_of(BranchResolution):
            provenance[(event.function, event.label)] = event
        for event in tracer.events_of(HeuristicChain):
            chains[(event.function, event.label)] = event
        meta["event_counts"] = dict(tracer.event_counts)
        meta["dropped_events"] = tracer.dropped_events

    heuristic_branches = prediction.heuristic_branches()
    branches: List[dict] = []
    for (function, label), probability in sorted(prediction.all_branches().items()):
        record: dict = {
            "function": function,
            "label": label,
            "probability": probability,
            "source": (
                "heuristic" if (function, label) in heuristic_branches else "ranges"
            ),
        }
        resolution = provenance.get((function, label))
        if resolution is not None:
            record["cond"] = resolution.cond
            record["cond_range"] = resolution.cond_range
            record["cmp_op"] = resolution.cmp_op
            record["operands"] = [list(pair) for pair in resolution.operands]
        chain = chains.get((function, label))
        if chain is not None:
            record["heuristics"] = [list(pair) for pair in chain.chain]
        branches.append(record)

    tracing: Dict[str, object] = {}
    context = tracecontext.current()
    if context is not None:
        tracing = {"trace_id": context.trace_id, "span_id": context.span_id}
        if tracer is not None and tracer.enabled:
            tracing["spans"] = len(tracer.spans)

    return MetricsReport(
        program=program,
        phases=phases,
        counters=prediction.counters.as_dict(),
        branches=branches,
        diagnostics=[f.as_dict() for f in findings] if findings else [],
        perf=perf_stats or {},
        passes=passes or {},
        server=server_stats or {},
        profile=profile or {},
        tracing=tracing,
        interprocedural=getattr(prediction, "interprocedural", None) or {},
        incremental=incremental or {},
        meta=meta,
    )


def validate_report_dict(data: dict) -> Optional[str]:
    """Schema check; returns an error message or None when valid."""
    for key in SCHEMA_KEYS:
        if key not in data and key not in OPTIONAL_KEYS:
            return f"missing top-level key {key!r}"
    if not isinstance(data["schema_version"], int):
        return "schema_version must be an integer"
    for record in data["branches"]:
        for key in BRANCH_KEYS:
            if key not in record:
                return f"branch record missing key {key!r}"
    return None
