"""Top-level constants and min/max/abs intrinsics."""

import pytest

import repro
from repro.lang.lowering import LoweringError, compile_source
from repro.profiling import run_module

from tests.helpers import compile_and_prepare


def run(source, args=None, inputs=None):
    module, _ = compile_and_prepare(source)
    return run_module(module, args=args or [0], input_values=inputs).return_value


class TestConstants:
    def test_const_in_expression(self):
        assert run("const K = 7; func main(n) { return K * 6; }") == 42

    def test_const_expression_folding(self):
        assert run(
            "const A = 4; const B = A * A + 2; func main(n) { return B; }"
        ) == 18

    def test_const_as_array_size(self):
        source = """
        const SIZE = 16;
        func main(n) {
          array buf[SIZE];
          for (i = 0; i < SIZE; i = i + 1) { buf[i] = i; }
          return buf[SIZE - 1];
        }
        """
        assert run(source) == 15

    def test_const_as_loop_bound_predicts_exactly(self):
        source = """
        const LIMIT = 25;
        func main(n) {
          var t = 0;
          for (i = 0; i < LIMIT; i = i + 1) { t = t + 1; }
          return t;
        }
        """
        probabilities = repro.compile_and_predict(source)
        (probability,) = probabilities.values()
        assert probability == pytest.approx(25 / 26)

    def test_assignment_to_const_rejected(self):
        with pytest.raises(LoweringError, match="assign to constant"):
            compile_source("const K = 1; func main(n) { K = 2; return K; }")

    def test_parameter_shadowing_const_rejected(self):
        with pytest.raises(LoweringError, match="shadows a constant"):
            compile_source("const K = 1; func main(K) { return K; }")

    def test_const_redefinition_rejected(self):
        with pytest.raises(LoweringError, match="redefined"):
            compile_source("const K = 1; const K = 2; func main(n) { return 0; }")

    def test_unknown_name_in_const_rejected(self):
        with pytest.raises(LoweringError, match="unknown name"):
            compile_source("const K = J + 1; func main(n) { return 0; }")

    def test_unknown_array_size_constant_rejected(self):
        with pytest.raises(LoweringError, match="not a known constant"):
            compile_source("func main(n) { array a[NOPE]; return 0; }")

    def test_non_positive_array_size_rejected(self):
        with pytest.raises(LoweringError, match="positive size"):
            compile_source("const Z = 0; func main(n) { array a[Z]; return 0; }")

    def test_const_division_by_zero_rejected(self):
        with pytest.raises(LoweringError, match="bad constant expression"):
            compile_source("const K = 1 / 0; func main(n) { return 0; }")


class TestIntrinsics:
    def test_min_max(self):
        assert run("func main(n) { return min(3, 8) + max(3, 8) * 10; }") == 83

    def test_abs(self):
        assert run("func main(n) { return abs(0 - 9) + abs(4); }") == 13

    def test_min_arity_checked(self):
        with pytest.raises(LoweringError, match="expects 2"):
            compile_source("func main(n) { return min(1); }")

    def test_abs_arity_checked(self):
        with pytest.raises(LoweringError, match="expects 1"):
            compile_source("func main(n) { return abs(1, 2); }")

    def test_user_function_overrides_intrinsic(self):
        source = """
        func min(a, b) { return 999; }
        func main(n) { return min(1, 2); }
        """
        assert run(source) == 999

    def test_intrinsic_ranges_propagate(self):
        source = """
        func main(n) {
          var clamped = min(n, 100);
          var raised = max(clamped, 0);
          if (raised <= 100) { return 1; }
          return 0;
        }
        """
        probabilities = repro.compile_and_predict(source)
        # raised is in [0:100] whatever n is: the branch is certain.
        (probability,) = probabilities.values()
        assert probability == pytest.approx(1.0)

    def test_clamp_pattern_bounds_check(self):
        source = """
        const SIZE = 32;
        func main(n) {
          array a[SIZE];
          var index = min(max(n, 0), SIZE - 1);
          a[index] = 1;
          return a[index];
        }
        """
        from repro.core.propagation import analyse_function
        from repro.ir.ssa import SSAInfo
        from repro.opt import analyse_bounds_checks, SAFE

        module, infos = compile_and_prepare(source)
        function = module.function("main")
        from repro.core.propagation import analyse_function as analyse_fn

        prediction = analyse_fn(function, infos["main"])
        reports = analyse_bounds_checks(function, prediction)
        assert all(report.classification == SAFE for report in reports)
