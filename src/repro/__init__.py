"""repro: Accurate Static Branch Prediction by Value Range Propagation.

A from-scratch Python reproduction of Jason R. C. Patterson's PLDI 1995
paper.  The package contains everything the paper's system needs:

* :mod:`repro.lang` -- a toy imperative language (the SPEC stand-in's
  source language);
* :mod:`repro.ir` -- a three-address SSA IR with assertion (Pi) nodes;
* :mod:`repro.core` -- weighted value ranges and the propagation engine
  (the paper's contribution), including interprocedural analysis and
  procedure cloning;
* :mod:`repro.heuristics` -- the 90/50 rule, Ball–Larus heuristics with
  Wu–Larus combination, and random prediction (the baselines);
* :mod:`repro.profiling` -- an IR interpreter with edge profiling
  (execution profiling baseline + ground truth);
* :mod:`repro.analysis` -- SCCP, copy propagation, loops, frequencies;
* :mod:`repro.opt` -- the applications: unreachable code, constant/copy
  subsumption, bounds-check elimination, array alias tests, code layout;
* :mod:`repro.workloads` -- the synthetic SPECint/SPECfp-style suites;
* :mod:`repro.evalharness` -- the error-CDF evaluation reproducing the
  paper's figures.

Quickstart::

    from repro import compile_and_predict
    probabilities = compile_and_predict(source_text)
"""

from typing import Dict, Optional, Tuple

from repro.core import VRPConfig, VRPPredictor
from repro.ir import prepare_module
from repro.lang import compile_source

__version__ = "1.0.0"


def compile_and_predict(
    source: str,
    config: Optional[VRPConfig] = None,
    interprocedural: bool = True,
) -> Dict[Tuple[str, str], float]:
    """Compile toy-language source and predict every conditional branch.

    Returns a mapping ``(function name, branch block label) -> P(true)``.
    This is the paper's headline capability in one call.
    """
    module = compile_source(source)
    ssa_infos = prepare_module(module)
    predictor = VRPPredictor(config=config, interprocedural=interprocedural)
    prediction = predictor.predict_module(module, ssa_infos)
    return prediction.all_branches()


__all__ = ["VRPConfig", "VRPPredictor", "compile_and_predict", "__version__"]
