"""Context sensitivity: heuristic fallback and miss rate at k=0/1/2.

The paper's §3.7 interprocedural propagation merges every call site
into one parameter range per function; one unanalysable site therefore
poisons the summary for all of them.  The k-limited contexts
(``--context-depth k``) re-analyse pure callees per abstracted argument
tuple, so narrow call sites keep narrow answers.

This benchmark measures, per suite and per k in {0, 1, 2}:

* the number of branches that fell back to heuristics,
* the weighted static miss rate against the ref-input ground truth,
* the weighted mean error in percentage points (the Figure 7/8 metric),
* the engine's own telemetry (contexts analysed, summary-cache stats),

and asserts the contract the feature ships under:

* on the ``inter`` suite the fallback count *strictly* decreases at
  every step k=0 -> k=1 -> k=2 (``inter_pipeline`` needs the second
  level: its helper chain is two deep) and accuracy improves;
* on the existing ``int``/``fp`` suites nothing regresses -- their
  helpers have single call sites or impure callees, so the merged
  summaries were already exact and every k produces identical counts.

Results land in ``BENCH_interprocedural.json``.
"""

from __future__ import annotations

import json

from benchmarks.conftest import emit
from repro.core import VRPConfig, VRPPredictor
from repro.evalharness.accuracy import branch_errors, mean_error

DEPTHS = (0, 1, 2)


def _weighted_miss_rate(records) -> float:
    """Execution-weighted rate of statically mispredicted directions."""
    total = sum(r.weight for r in records)
    if total == 0:
        return 0.0
    missed = sum(
        ((1.0 - r.actual) if r.predicted >= 0.5 else r.actual) * r.weight
        for r in records
    )
    return missed / total


def _measure_suite(prepared_workloads, depth: int) -> dict:
    config = VRPConfig(context_depth=depth)
    heuristic = 0
    total = 0
    contexts = 0
    cache = {"hits": 0, "misses": 0, "evictions": 0}
    per_workload = {}
    records = []
    for prepared in prepared_workloads:
        prediction = VRPPredictor(config=config).predict_module(
            prepared.module, prepared.ssa_infos
        )
        fallbacks = len(prediction.heuristic_branches())
        branches = len(prediction.all_branches())
        heuristic += fallbacks
        total += branches
        stats = getattr(prediction, "interprocedural", None) or {}
        contexts += int(stats.get("contexts_analyzed", 0))
        for key, value in (stats.get("summary_cache") or {}).items():
            if key in cache:
                cache[key] += int(value)
        per_workload[prepared.workload.name] = {
            "heuristic_branches": fallbacks,
            "total_branches": branches,
        }
        records.extend(
            branch_errors(prediction.all_branches(), prepared.truth_profile)
        )
    return {
        "heuristic_branches": heuristic,
        "total_branches": total,
        "miss_rate_weighted": _weighted_miss_rate(records),
        "mean_error_weighted": mean_error(records, weighted=True),
        "contexts_analyzed": contexts,
        "summary_cache": cache,
        "per_workload": per_workload,
    }


def _table(name: str, by_depth: dict) -> str:
    lines = [
        f"Context sensitivity on the {name} suite",
        "",
        f"{'k':>3s} {'fallback':>9s} {'branches':>9s} "
        f"{'miss rate':>10s} {'mean err':>9s} {'contexts':>9s}",
    ]
    for depth in DEPTHS:
        row = by_depth[depth]
        lines.append(
            f"{depth:3d} {row['heuristic_branches']:9d} "
            f"{row['total_branches']:9d} {row['miss_rate_weighted']:10.4f} "
            f"{row['mean_error_weighted']:9.3f} {row['contexts_analyzed']:9d}"
        )
    return "\n".join(lines)


def test_context_depth_on_inter_suite(results_dir, prepared_inter_suite):
    by_depth = {k: _measure_suite(prepared_inter_suite, k) for k in DEPTHS}
    emit(results_dir, "interprocedural_inter.txt", _table("inter", by_depth))

    # The headline claim: each extra context level strictly removes
    # heuristic-fallback branches on call-dominated code.
    assert (
        by_depth[1]["heuristic_branches"] < by_depth[0]["heuristic_branches"]
    ), by_depth
    assert (
        by_depth[2]["heuristic_branches"] < by_depth[1]["heuristic_branches"]
    ), by_depth
    # Recovered ranges must not cost accuracy.
    assert (
        by_depth[1]["miss_rate_weighted"]
        <= by_depth[0]["miss_rate_weighted"] + 1e-12
    ), by_depth
    assert (
        by_depth[2]["miss_rate_weighted"]
        <= by_depth[0]["miss_rate_weighted"] + 1e-12
    ), by_depth
    assert (
        by_depth[1]["mean_error_weighted"] < by_depth[0]["mean_error_weighted"]
    ), by_depth
    assert (
        by_depth[2]["mean_error_weighted"] < by_depth[0]["mean_error_weighted"]
    ), by_depth
    # Context machinery actually ran at k >= 1.
    assert by_depth[0]["contexts_analyzed"] == 0, by_depth
    assert by_depth[1]["contexts_analyzed"] > 0, by_depth

    report = {
        "benchmark": "interprocedural",
        "suite": "inter",
        "depths": {str(k): by_depth[k] for k in DEPTHS},
    }
    (results_dir / "BENCH_interprocedural.json").write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n"
    )


def test_context_depth_is_neutral_on_existing_suites(
    results_dir, prepared_int_suite, prepared_fp_suite
):
    """k >= 1 must not disturb the int/fp reproduction baselines."""
    merged = {}
    for name, prepared in (
        ("int", prepared_int_suite),
        ("fp", prepared_fp_suite),
    ):
        by_depth = {k: _measure_suite(prepared, k) for k in DEPTHS}
        merged[name] = by_depth
        emit(
            results_dir,
            f"interprocedural_{name}.txt",
            _table(name, by_depth),
        )
        for depth in (1, 2):
            assert (
                by_depth[depth]["heuristic_branches"]
                == by_depth[0]["heuristic_branches"]
            ), (name, by_depth)
            assert (
                by_depth[depth]["mean_error_weighted"]
                <= by_depth[0]["mean_error_weighted"] + 1e-9
            ), (name, by_depth)
            assert (
                by_depth[depth]["miss_rate_weighted"]
                <= by_depth[0]["miss_rate_weighted"] + 1e-12
            ), (name, by_depth)

    # Fold the neutrality evidence into the same machine-readable file.
    path = results_dir / "BENCH_interprocedural.json"
    report = json.loads(path.read_text()) if path.exists() else {
        "benchmark": "interprocedural"
    }
    for name, by_depth in merged.items():
        report[f"suite_{name}"] = {
            str(k): {
                key: value
                for key, value in by_depth[k].items()
                if key != "per_workload"
            }
            for k in DEPTHS
        }
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
