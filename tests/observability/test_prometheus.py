"""Prometheus exposition: rendering from ServerStats and the strict parser."""

import pytest

from repro.observability.prometheus import (
    MetricFamily,
    PrometheusParseError,
    parse_prometheus_text,
    render_server_metrics,
)
from repro.server.stats import LATENCY_BUCKETS_MS, ServerStats


def populated_snapshot() -> dict:
    stats = ServerStats()
    stats.record_request("/v1/predict", 200, 3.0, cached="memory")
    stats.record_request("/v1/predict", 200, 30.0)
    stats.record_request("/v1/predict", 400, 1.0)
    stats.record_request("/healthz", 200, 0.5)
    stats.record_request("/v1/check", 200, 9000.0, degraded=True)
    stats.record_rejected("queue_full")
    return stats.snapshot(
        cache_stats={
            "memory": {"entries": 2, "hits": 1, "misses": 4},
            "disk": {"hits": 0, "misses": 0},
        },
        queue_depth=1,
        queue_high_water=3,
    )


class TestRender:
    def test_round_trips_through_the_parser(self):
        text = render_server_metrics(
            populated_snapshot(), uptime_s=12.5, workers=4
        )
        families = parse_prometheus_text(text)
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_request_latency_seconds"]["type"] == "histogram"
        assert families["repro_uptime_seconds"]["type"] == "gauge"

    def test_counter_values(self):
        text = render_server_metrics(populated_snapshot())
        families = parse_prometheus_text(text)

        def value(family, wanted_labels, name=None):
            for sample_name, labels, sample_value in families[family]["samples"]:
                if labels == wanted_labels and (
                    name is None or sample_name == name
                ):
                    return sample_value
            raise AssertionError(f"no sample {wanted_labels} in {family}")

        assert value("repro_requests_total", {"endpoint": "/v1/predict"}) == 3
        assert value("repro_request_errors_total", {"endpoint": "/v1/predict"}) == 1
        assert value("repro_responses_total", {"status": "200"}) == 4
        assert value("repro_results_total", {"tier": "memory"}) == 1
        assert value("repro_results_total", {"tier": "fresh"}) == 3
        assert value("repro_degraded_total", {}) == 1
        assert value("repro_rejected_total", {"reason": "queue_full"}) == 1
        assert value("repro_cache_entries", {"tier": "memory"}) == 2
        assert value("repro_queue_depth", {}) == 1
        assert value("repro_queue_high_water", {}) == 3

    def test_histogram_is_cumulative_with_inf(self):
        text = render_server_metrics(populated_snapshot())
        families = parse_prometheus_text(text)
        samples = families["repro_request_latency_seconds"]["samples"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name.endswith("_bucket") and labels["endpoint"] == "/v1/predict"
        ]
        # One bucket per SLO bound plus +Inf.
        assert len(buckets) == len(LATENCY_BUCKETS_MS) + 1
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 3  # total count
        count = [
            value
            for name, labels, value in samples
            if name.endswith("_count") and labels == {"endpoint": "/v1/predict"}
        ]
        assert count == [3]

    def test_slow_request_lands_in_inf_only(self):
        text = render_server_metrics(populated_snapshot())
        families = parse_prometheus_text(text)
        check_buckets = {
            labels["le"]: value
            for name, labels, value in families[
                "repro_request_latency_seconds"
            ]["samples"]
            if name.endswith("_bucket") and labels["endpoint"] == "/v1/check"
        }
        assert check_buckets["5"] == 0  # 9s is past the last 5s bound
        assert check_buckets["+Inf"] == 1

    def test_invalid_metric_name_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MetricFamily("bad name", "counter", "help")


def sharded_snapshot() -> dict:
    """A snapshot as the sharded tier produces it (with ``shards``)."""
    stats = ServerStats()
    stats.record_request("/v1/predict", 200, 3.0)
    return stats.snapshot(
        cache_stats={
            "memory": {"entries": 3, "hits": 1, "misses": 2},
            "disk": {"hits": 1, "misses": 1},
        },
        queue_depth=2,
        queue_high_water=5,
        shards=[
            {
                "shard": 0,
                "queue": {"depth": 2, "high_water": 4},
                "cache": {
                    "memory": {"entries": 2, "hits": 1, "misses": 1},
                    "disk": {"hits": 1, "misses": 0},
                },
                "served": 7,
                "degraded": 0,
                "alive": True,
                "restarts": 0,
            },
            {
                "shard": 1,
                "queue": {"depth": 0, "high_water": 1},
                "cache": {
                    "memory": {"entries": 1, "hits": 0, "misses": 1},
                    "disk": {"hits": 0, "misses": 1},
                },
                "served": 2,
                "degraded": 1,
                "alive": False,
                "restarts": 3,
            },
        ],
    )


class TestShardLabels:
    def sample_value(self, families, family, wanted_labels):
        for _name, labels, value in families[family]["samples"]:
            if labels == wanted_labels:
                return value
        raise AssertionError(f"no sample {wanted_labels} in {family}")

    def test_per_shard_series_round_trip_the_strict_parser(self):
        text = render_server_metrics(sharded_snapshot(), workers=2)
        families = parse_prometheus_text(text)
        assert families["repro_shard_queue_depth"]["type"] == "gauge"
        assert families["repro_shard_served_total"]["type"] == "counter"
        assert self.sample_value(
            families, "repro_shard_queue_depth", {"shard": "0"}
        ) == 2
        assert self.sample_value(
            families, "repro_shard_queue_high_water", {"shard": "1"}
        ) == 1
        assert self.sample_value(
            families, "repro_shard_served_total", {"shard": "0"}
        ) == 7
        assert self.sample_value(
            families, "repro_shard_alive", {"shard": "1"}
        ) == 0
        assert self.sample_value(
            families, "repro_shard_restarts_total", {"shard": "1"}
        ) == 3
        assert self.sample_value(
            families, "repro_shard_cache_entries", {"shard": "0"}
        ) == 2
        assert self.sample_value(
            families,
            "repro_shard_cache_hits_total",
            {"shard": "0", "tier": "disk"},
        ) == 1

    def test_aggregate_families_survive_next_to_shard_families(self):
        # The fleet-wide series stay exactly as before; the shard
        # series are additive.
        text = render_server_metrics(sharded_snapshot(), workers=2)
        families = parse_prometheus_text(text)
        assert self.sample_value(families, "repro_queue_depth", {}) == 2
        assert self.sample_value(
            families, "repro_cache_entries", {"tier": "memory"}
        ) == 3

    def test_unsharded_snapshot_has_no_shard_series(self):
        # Regression: the single-process daemon (1-shard legacy tier)
        # never passes shards=, and its exposition must remain free of
        # shard-labelled families -- dashboards scraping the old daemon
        # see an unchanged series set.
        text = render_server_metrics(
            populated_snapshot(), uptime_s=12.5, workers=4
        )
        assert "repro_shard_" not in text
        families = parse_prometheus_text(text)
        assert not any(name.startswith("repro_shard_") for name in families)
        for family in families.values():
            for _name, labels, _value in family["samples"]:
                assert "shard" not in labels

    def test_empty_shard_list_renders_no_shard_series(self):
        stats = ServerStats()
        snapshot = stats.snapshot(shards=[])
        assert "repro_shard_" not in render_server_metrics(snapshot)


class TestParser:
    def test_requires_type_before_samples(self):
        with pytest.raises(PrometheusParseError, match="no preceding TYPE"):
            parse_prometheus_text("repro_x_total 1\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(PrometheusParseError, match="unknown metric type"):
            parse_prometheus_text("# TYPE repro_x bogus\n")

    def test_rejects_duplicate_type(self):
        text = "# TYPE a counter\na 1\n# TYPE a counter\n"
        with pytest.raises(PrometheusParseError, match="duplicate TYPE"):
            parse_prometheus_text(text)

    def test_rejects_malformed_labels(self):
        text = '# TYPE a counter\na{key=unquoted} 1\n'
        with pytest.raises(PrometheusParseError, match="malformed label"):
            parse_prometheus_text(text)

    def test_rejects_unparseable_value(self):
        text = "# TYPE a counter\na notanumber\n"
        with pytest.raises(PrometheusParseError, match="unparseable value"):
            parse_prometheus_text(text)

    def test_rejects_histogram_without_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\n"
        )
        with pytest.raises(PrometheusParseError, match="_count"):
            parse_prometheus_text(text)

    def test_rejects_bucket_without_le(self):
        text = (
            "# TYPE h histogram\n"
            "h_bucket 1\n"
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        with pytest.raises(PrometheusParseError, match="'le'"):
            parse_prometheus_text(text)

    def test_accepts_inf_values_and_labels(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.001"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.25\n"
            "h_count 3\n"
        )
        families = parse_prometheus_text(text)
        assert len(families["h"]["samples"]) == 4
