"""Config fingerprinting: what does and does not shatter the cache."""

from repro import __version__
from repro.core import VRPConfig
from repro.core.perf.fingerprint import (
    NEUTRAL_FIELDS,
    config_fingerprint,
    config_items,
    engine_salt,
)


class TestConfigItems:
    def test_excludes_behaviour_neutral_fields(self):
        names = {name for name, _ in config_items(VRPConfig())}
        assert not names & NEUTRAL_FIELDS

    def test_covers_result_affecting_fields(self):
        names = {name for name, _ in config_items(VRPConfig())}
        for expected in ("max_ranges", "symbolic", "derive_loops", "track_arrays"):
            assert expected in names


class TestConfigFingerprint:
    def test_deterministic(self):
        assert config_fingerprint(VRPConfig()) == config_fingerprint(VRPConfig())

    def test_neutral_fields_do_not_change_it(self):
        base = config_fingerprint(VRPConfig())
        assert config_fingerprint(VRPConfig(perf=False)) == base
        assert config_fingerprint(VRPConfig(sanitize=True)) == base
        assert config_fingerprint(VRPConfig(perf_memo_size=7)) == base

    def test_engine_knobs_change_it(self):
        base = config_fingerprint(VRPConfig())
        assert config_fingerprint(VRPConfig(max_ranges=9)) != base
        assert config_fingerprint(VRPConfig(symbolic=False)) != base
        assert config_fingerprint(VRPConfig(derive_loops=False)) != base

    def test_salted_with_package_version(self):
        # An engine upgrade must invalidate every cached result.
        assert __version__ in engine_salt()
