"""End-to-end observability: tracing, metrics, and branch explanation.

* :mod:`repro.observability.tracer`  -- span timing + event stream
  (:class:`Tracer` / :class:`NullTracer`, ``active()`` / ``use()``);
* :mod:`repro.observability.events`  -- the event taxonomy;
* :mod:`repro.observability.metrics` -- :class:`MetricsReport`, the
  JSON export consumed by the harness and the benchmarks;
* :mod:`repro.observability.explain` -- "why is this branch 87.5%?";
* :mod:`repro.observability.instrument` -- traced compile/analyse
  pipelines (phase spans for lex/parse/lower/ssa/propagate/predict).

``explain`` and ``instrument`` depend on the analysis layers, while the
engine itself imports the tracer from here -- they are loaded lazily
(PEP 562) to keep ``repro.core`` -> ``repro.observability`` acyclic.
"""

from repro.observability.events import (
    EVENT_KINDS,
    BranchResolution,
    DerivationAttempt,
    DiagnosticFinding,
    HeuristicChain,
    LatticeTransition,
    PassBegin,
    PassEnd,
    PhiMerge,
    PiRefinement,
    ServerRequestBegin,
    ServerRequestEnd,
    TraceEvent,
    WorklistPop,
    WorklistPush,
)
from repro.observability.metrics import (
    SCHEMA_KEYS,
    SCHEMA_VERSION,
    MetricsReport,
    build_metrics_report,
    validate_report_dict,
)
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    PhaseTiming,
    SpanRecord,
    Tracer,
    active,
    use,
)

_LAZY = {
    "BranchExplanation": "repro.observability.explain",
    "explain_branch": "repro.observability.explain",
    "explain_module": "repro.observability.explain",
    "TraceSession": "repro.observability.instrument",
    "compile_source_traced": "repro.observability.instrument",
    "trace_analysis": "repro.observability.instrument",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "EVENT_KINDS",
    "NULL_TRACER",
    "SCHEMA_KEYS",
    "SCHEMA_VERSION",
    "BranchExplanation",
    "BranchResolution",
    "DerivationAttempt",
    "DiagnosticFinding",
    "HeuristicChain",
    "LatticeTransition",
    "MetricsReport",
    "NullTracer",
    "PassBegin",
    "PassEnd",
    "PhaseTiming",
    "PhiMerge",
    "PiRefinement",
    "ServerRequestBegin",
    "ServerRequestEnd",
    "SpanRecord",
    "TraceEvent",
    "TraceSession",
    "Tracer",
    "WorklistPop",
    "WorklistPush",
    "active",
    "build_metrics_report",
    "compile_source_traced",
    "explain_branch",
    "explain_module",
    "trace_analysis",
    "use",
    "validate_report_dict",
]
