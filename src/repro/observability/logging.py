"""Structured JSON logging with trace correlation.

One log line is one JSON object: timestamp, level, logger name,
message, the ambient trace/span ids (when a
:mod:`repro.observability.context` is active), and any structured
fields the call site attached.  Machine-parseable by construction --
the serving runbook's "correlate a slow request" recipe is
``grep <trace_id> server.log | jq .`` (``docs/SERVING.md``).

Built on stdlib :mod:`logging`: handlers, levels, and propagation all
behave exactly as any Python operator expects, and nothing here is
imported by the analysis engine -- logging is a pure consumer, so the
overhead-guard benchmark's byte-identical work counts are untouchable
by this module (enforced in ``benchmarks/test_bench_obs_overhead.py``).

Usage::

    from repro.observability.logging import configure_json_logging, get_logger

    configure_json_logging()              # JSON lines on stderr, idempotent
    log = get_logger("server.access")
    log.info("request served", extra={"fields": {
        "endpoint": "/v1/predict", "status": 200, "latency_ms": 1.7,
    }})

Loggers are namespaced under the ``repro`` root logger; a process that
never calls :func:`configure_json_logging` gets stdlib default
behaviour (INFO records go nowhere), which keeps library use silent.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

from repro.observability import context as tracecontext

#: The root of the repo's logger namespace.
ROOT_LOGGER = "repro"

#: ``extra`` key carrying structured fields into the formatter.
FIELDS_KEY = "fields"


class JsonFormatter(logging.Formatter):
    """Render one :class:`logging.LogRecord` as one JSON line.

    Field order is fixed (``ts`` first, structured fields last) and the
    document is serialised with ``sort_keys=False`` so the line reads
    naturally while staying stable for tests.  Non-serialisable field
    values degrade to ``repr`` instead of raising -- a log line must
    never take down the request it describes.
    """

    def format(self, record: logging.LogRecord) -> str:
        created = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
        )
        document = {
            "ts": f"{created}.{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        context = tracecontext.current()
        if context is not None:
            document["trace_id"] = context.trace_id
            document["span_id"] = context.span_id
        fields = getattr(record, FIELDS_KEY, None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                if key not in document:
                    document[key] = value
        if record.exc_info:
            document["exc_info"] = self.formatException(record.exc_info)
        try:
            return json.dumps(document, default=repr)
        except (TypeError, ValueError):  # pragma: no cover -- default=repr
            return json.dumps({"level": "ERROR", "message": "unloggable record"})


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_json_logging(
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
) -> logging.Logger:
    """Install a JSON-line handler on the ``repro`` root logger.

    Idempotent: a second call replaces the previously installed JSON
    handler (same stream or a new one) instead of stacking duplicates.
    Returns the configured root logger.  ``stream`` defaults to
    ``sys.stderr`` *at call time*, so test harnesses that rebind stderr
    capture the output.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def log_event(
    logger: logging.Logger,
    message: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """One structured line: ``message`` plus keyword fields.

    The keyword-arguments-to-``extra`` plumbing in one place, so call
    sites stay one line.
    """
    if logger.isEnabledFor(level):
        logger.log(level, message, extra={FIELDS_KEY: fields})
