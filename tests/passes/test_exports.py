"""Export hygiene for the pass layer and its optimisation clients.

``repro.passes`` is imported from low-level modules (``ir/ssa.py``,
``ir/verifier.py``, ``heuristics/base.py``), so its package import must
stay cheap and side-effect free; and both it and ``repro.opt`` promise
a curated ``__all__``.  These tests pin the contract: every public
symbol is exported exactly once, every export resolves, and importing
the packages pulls in nothing eagerly and prints nothing.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

PACKAGES = ["repro.opt", "repro.passes"]


def _public_surface(module) -> set:
    return {name for name in dir(module) if not name.startswith("_")}


@pytest.mark.parametrize("package", PACKAGES)
def test_all_has_no_duplicates(package):
    module = __import__(package, fromlist=["__all__"])
    exported = module.__all__
    assert len(exported) == len(set(exported)), (
        f"duplicate names in {package}.__all__"
    )


@pytest.mark.parametrize("package", PACKAGES)
def test_every_export_resolves(package):
    module = __import__(package, fromlist=["__all__"])
    for name in module.__all__:
        assert getattr(module, name) is not None, f"{package}.{name} is None"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_surface_matches_all(package):
    module = __import__(package, fromlist=["__all__"])
    exported = set(module.__all__)
    public = _public_surface(module) - {"annotations"}
    # Submodules show up in dir() once they have been imported; only
    # genuine API names belong in __all__.
    public = {
        name
        for name in public
        if not _is_submodule(getattr(module, name), f"{package}.{name}")
    }
    missing = public - exported
    assert not missing, f"{package}: public but not in __all__: {sorted(missing)}"
    phantom = exported - public
    assert not phantom, f"{package}: in __all__ but not public: {sorted(phantom)}"


def _is_submodule(obj, dotted: str) -> bool:
    import types

    return isinstance(obj, types.ModuleType) and obj.__name__ == dotted


@pytest.mark.parametrize("package", PACKAGES)
def test_import_is_silent(package):
    proc = subprocess.run(
        [sys.executable, "-c", f"import {package}"],
        capture_output=True,
        text=True,
        check=True,
    )
    assert proc.stdout == ""
    assert proc.stderr == ""


def test_passes_package_import_is_lazy():
    # The PEP 562 shim must not drag in the pass library (or the
    # pipeline machinery) at package-import time.
    code = (
        "import sys\n"
        "import repro.passes\n"
        "eager = [m for m in ('repro.passes.library', 'repro.passes.pipeline')\n"
        "         if m in sys.modules]\n"
        "assert not eager, eager\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True)
