"""Pass base classes: declarative units of work over the IR.

A pass is the unit the :class:`~repro.passes.pipeline.PassPipeline`
schedules.  Each declares

* ``requires`` -- the analyses it consumes (demand-computed through the
  :class:`~repro.passes.cache.AnalysisCache` before/while it runs);
* ``preserves`` -- the analyses still valid after it mutated the IR
  (the manager drops everything else from the cache);
* ``mutates`` -- whether it rewrites the IR at all.  Non-mutating
  passes implicitly preserve every analysis and are never followed by
  verification or invalidation.

Two granularities mirror the Venom/LLVM split: a :class:`FunctionPass`
runs once per function of the module (in module insertion order, which
keeps pipelines deterministic); a :class:`ModulePass` runs once over
the whole module (inlining, function ordering, diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Set, Tuple

from repro.ir.function import Function, Module

#: Names of every analysis the cache knows how to compute.  Kept here
#: (not in ``cache.py``) so declaring a pass needs no heavy imports.
ANALYSIS_NAMES: Tuple[str, ...] = (
    "cfg",
    "dominators",
    "postdominators",
    "loops",
    "context",
    "frequency",
    "prediction",
    "callgraph",
    "summaries",
    "module_prediction",
)

#: ``preserves`` value meaning "everything survives" (pure analyses).
PRESERVES_ALL: FrozenSet[str] = frozenset(ANALYSIS_NAMES)

#: ``preserves`` value for passes that change the CFG itself.
PRESERVES_NONE: FrozenSet[str] = frozenset()

#: Analyses that only read instruction *structure* (blocks and
#: terminators), untouched by passes that rewrite operands in place.
STRUCTURAL: FrozenSet[str] = frozenset(
    ("cfg", "dominators", "postdominators", "loops")
)


@dataclass
class PassResult:
    """What one pass execution did.

    ``changed`` counts rewrites (0 for pure analyses); ``data`` carries
    the pass's product (reports, orders, traces -- whatever the client
    wants back); ``touched`` names the functions whose IR was mutated,
    which is what the manager verifies and invalidates.  Function
    passes get ``touched`` filled in by the pipeline; module passes
    must report it themselves.
    """

    changed: int = 0
    data: object = None
    touched: Set[str] = field(default_factory=set)


class Pass:
    """Common declaration surface; instantiate a subclass, not this."""

    #: Registry/CLI name (kebab-case).
    name: str = "pass"
    #: Analyses the pass consumes (computed on demand via the cache).
    requires: FrozenSet[str] = frozenset()
    #: Analyses still valid after the pass mutated the IR.
    preserves: FrozenSet[str] = PRESERVES_NONE
    #: Whether the pass rewrites IR at all.
    mutates: bool = False

    def describe(self) -> str:
        """One-line summary for ``repro opt --list-passes``."""
        doc = (self.__class__.__doc__ or "").strip().splitlines()
        return doc[0] if doc else self.name

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.name!r})"


class FunctionPass(Pass):
    """A pass the pipeline applies to every function of the module."""

    def run_on_function(self, function: Function, cache) -> PassResult:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass that runs once over the whole module."""

    def run_on_module(self, module: Module, cache) -> PassResult:
        raise NotImplementedError


def as_result(value) -> PassResult:
    """Normalise a pass return value (int, None, or PassResult)."""
    if isinstance(value, PassResult):
        return value
    if value is None:
        return PassResult()
    if isinstance(value, int):
        return PassResult(changed=value)
    return PassResult(data=value)
