"""Interpreter semantics and profiling tests."""

import pytest

from repro.profiling.interpreter import (
    AssertionViolation,
    InterpreterError,
    StepLimitExceeded,
    run_module,
)

from tests.helpers import compile_and_prepare


def run(source, args=None, inputs=None, **kwargs):
    module, _ = compile_and_prepare(source)
    return run_module(module, args=args or [0], input_values=inputs, **kwargs)


class TestArithmetic:
    def test_basic_ops(self):
        result = run("func main(n) { return 2 + 3 * 4 - 1; }")
        assert result.return_value == 13

    def test_floor_division(self):
        assert run("func main(n) { return 7 / 2; }").return_value == 3
        assert run("func main(n) { return -7 / 2; }").return_value == -4

    def test_floor_modulo(self):
        assert run("func main(n) { return 7 % 3; }").return_value == 1
        assert run("func main(n) { return -7 % 3; }").return_value == 2

    def test_shifts(self):
        assert run("func main(n) { return 1 << 10; }").return_value == 1024
        assert run("func main(n) { return 1024 >> 3; }").return_value == 128

    def test_bitwise(self):
        assert run("func main(n) { return (12 & 10) + (12 | 10) + (12 ^ 10); }").return_value == 8 + 14 + 6

    def test_comparisons_produce_bits(self):
        assert run("func main(n) { return (3 < 5) + (5 <= 5) + (3 == 4); }").return_value == 2

    def test_unary(self):
        assert run("func main(n) { return -n + !0; }", args=[5]).return_value == -4

    def test_division_by_zero_traps(self):
        with pytest.raises(InterpreterError):
            run("func main(n) { return 1 / n; }", args=[0])

    def test_modulo_by_zero_traps(self):
        with pytest.raises(InterpreterError):
            run("func main(n) { return 1 % n; }", args=[0])


class TestControlFlow:
    def test_if_else(self):
        source = "func main(n) { if (n > 0) { return 1; } else { return 2; } }"
        assert run(source, args=[5]).return_value == 1
        assert run(source, args=[-5]).return_value == 2

    def test_while_loop(self):
        result = run(
            "func main(n) { var t = 0; while (n > 0) { t = t + n; n = n - 1; } return t; }",
            args=[10],
        )
        assert result.return_value == 55

    def test_for_with_break_continue(self):
        result = run(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 100; i = i + 1) {
                if (i == 10) { break; }
                if (i % 2 == 0) { continue; }
                t = t + i;
              }
              return t;
            }
            """
        )
        assert result.return_value == 1 + 3 + 5 + 7 + 9

    def test_do_while_runs_once(self):
        result = run(
            "func main(n) { var t = 0; do { t = t + 1; } while (0); return t; }"
        )
        assert result.return_value == 1

    def test_short_circuit_semantics(self):
        # The right operand of && must not evaluate (division by zero!)
        # when the left is false.
        result = run(
            "func main(n) { if (n > 0 && 10 / n > 2) { return 1; } return 0; }",
            args=[0],
        )
        assert result.return_value == 0

    def test_logical_value(self):
        result = run("func main(n) { var x = (n > 0) || (n < -10); return x; }", args=[3])
        assert result.return_value == 1


class TestFunctionsAndArrays:
    def test_call_and_return(self):
        result = run(
            "func double(v) { return v * 2; } func main(n) { return double(n) + 1; }",
            args=[20],
        )
        assert result.return_value == 41

    def test_recursion(self):
        result = run(
            """
            func fib(n) {
              if (n < 2) { return n; }
              return fib(n - 1) + fib(n - 2);
            }
            func main(n) { return fib(n); }
            """,
            args=[15],
        )
        assert result.return_value == 610

    def test_arrays_are_frame_local(self):
        result = run(
            """
            func poke() { array a[4]; a[0] = 99; return a[0]; }
            func main(n) {
              array a[4];
              a[0] = 1;
              var x = poke();
              return a[0] * 100 + x;
            }
            """
        )
        assert result.return_value == 199

    def test_arrays_zero_initialised(self):
        assert run("func main(n) { array a[8]; return a[7]; }").return_value == 0

    def test_out_of_bounds_load_traps(self):
        with pytest.raises(InterpreterError):
            run("func main(n) { array a[4]; return a[4]; }")

    def test_out_of_bounds_store_traps(self):
        with pytest.raises(InterpreterError):
            run("func main(n) { array a[4]; a[-1] = 0; return 0; }")

    def test_input_stream(self):
        result = run(
            "func main(n) { return input() + input() * 10; }",
            inputs=[3, 7],
        )
        assert result.return_value == 73

    def test_input_exhausted_yields_zero(self):
        assert run("func main(n) { return input(); }", inputs=[]).return_value == 0

    def test_wrong_arity_rejected(self):
        with pytest.raises(InterpreterError):
            run("func main(a, b) { return a; }", args=[1])


class TestProfiling:
    def test_branch_counts(self):
        result = run(
            "func main(n) { var t = 0; while (t < 5) { t = t + 1; } return t; }"
        )
        (key,) = [k for k in result.branch_counts]
        taken, not_taken = result.branch_counts[key]
        assert taken == 5
        assert not_taken == 1

    def test_branch_probability_helper(self):
        result = run(
            "func main(n) { var t = 0; while (t < 9) { t = t + 1; } return t; }"
        )
        ((func, label),) = result.branch_counts
        assert result.branch_probability(func, label) == pytest.approx(0.9)
        assert result.branch_probability(func, "ghost") is None

    def test_block_counts(self):
        result = run("func main(n) { return n; }")
        entry_key = ("main", "entry0")
        assert result.block_counts[entry_key] == 1

    def test_edge_counts_consistent_with_blocks(self):
        result = run(
            "func main(n) { var t = 0; while (t < 3) { t = t + 1; } return t; }"
        )
        for (func, src, dst), count in result.edge_counts.items():
            assert count <= result.block_counts[(func, src)]

    def test_call_counts(self):
        result = run(
            "func f() { return 1; } func main(n) { return f() + f() + f(); }"
        )
        assert result.call_counts["f"] == 3

    def test_merge_accumulates(self):
        module, _ = compile_and_prepare(
            "func main(n) { var t = 0; while (t < n) { t = t + 1; } return t; }"
        )
        a = run_module(module, args=[3])
        b = run_module(module, args=[5])
        a.merge(b)
        ((func, label),) = [k for k in a.branch_counts]
        taken, not_taken = a.branch_counts[(func, label)]
        assert taken == 8
        assert not_taken == 2


class TestSafety:
    def test_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            run(
                "func main(n) { while (1) { n = n + 1; } return n; }",
                max_steps=1000,
            )

    def test_assertions_checked(self):
        # Assertions inserted by the pipeline must hold on every run --
        # this is the compiler's own soundness check.
        result = run(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 50; i = i + 1) {
                if (i % 7 < 3) { t = t + 1; }
              }
              return t;
            }
            """,
            check_assertions=True,
        )
        assert result.return_value == sum(1 for i in range(50) if i % 7 < 3)

    def test_deep_recursion_guard(self):
        with pytest.raises(InterpreterError):
            run(
                "func f(n) { return f(n + 1); } func main(n) { return f(0); }",
                max_steps=10_000_000,
            )
