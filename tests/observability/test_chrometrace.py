"""Chrome trace-event export: wire spans, documents, validation."""

import json

from repro.observability import chrometrace
from repro.observability.tracer import Tracer


def record_spans() -> Tracer:
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    return tracer


class TestSerializeSpans:
    def test_relative_offsets(self):
        wire = chrometrace.serialize_spans(record_spans().spans)
        assert [span["name"] for span in wire] == ["outer", "inner"]
        assert wire[0]["start_us"] == 0.0
        assert wire[1]["start_us"] >= 0.0
        assert wire[0]["dur_us"] >= wire[1]["dur_us"]
        assert wire[0]["parent"] is None
        assert wire[1]["parent"] == 0

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        context = tracer.span("open")
        context.__enter__()
        assert chrometrace.serialize_spans(tracer.spans) == []
        context.__exit__(None, None, None)
        assert len(chrometrace.serialize_spans(tracer.spans)) == 1

    def test_empty(self):
        assert chrometrace.serialize_spans([]) == []


class TestEvents:
    def test_complete_event_shape(self):
        event = chrometrace.complete_event("x", 1.0, 2.0, args={"k": "v"})
        assert event["ph"] == "X"
        assert event["ts"] == 1.0 and event["dur"] == 2.0
        assert event["pid"] == 1 and event["tid"] == 1
        assert event["args"] == {"k": "v"}

    def test_events_from_wire_spans_rebase(self):
        wire = [{"name": "a", "start_us": 10.0, "dur_us": 5.0, "parent": None}]
        (event,) = chrometrace.events_from_wire_spans(
            wire, 1000.0, tid=7, trace_id="ab" * 16
        )
        assert event["ts"] == 1010.0
        assert event["dur"] == 5.0
        assert event["tid"] == 7
        assert event["args"]["trace_id"] == "ab" * 16

    def test_malformed_wire_spans_are_ignored(self):
        events = chrometrace.events_from_wire_spans(
            ["junk", {"nameless": 1}, {"name": "ok"}], 0.0
        )
        assert [event["name"] for event in events] == ["ok"]


class TestDocument:
    def test_round_trip_is_valid(self, tmp_path):
        wire = chrometrace.serialize_spans(record_spans().spans)
        events = [chrometrace.metadata_event("process_name", 1, "test")]
        events += chrometrace.events_from_wire_spans(wire, 0.0)
        path = tmp_path / "trace.json"
        chrometrace.write_chrome_trace(str(path), events, trace_id="cd" * 16)
        document = json.loads(path.read_text())
        assert chrometrace.validate_chrome_trace(document) == []
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["trace_id"] == "cd" * 16

    def test_bare_array_flavour_validates(self):
        events = [chrometrace.complete_event("x", 0.0, 1.0)]
        assert chrometrace.validate_chrome_trace(events) == []


class TestValidate:
    def test_rejects_non_container(self):
        assert chrometrace.validate_chrome_trace("nope")
        assert chrometrace.validate_chrome_trace({"no_events": 1})

    def test_rejects_empty(self):
        assert chrometrace.validate_chrome_trace({"traceEvents": []})

    def test_rejects_bad_phase(self):
        problems = chrometrace.validate_chrome_trace(
            [{"name": "x", "ph": "Z", "pid": 1}]
        )
        assert any("phase" in problem for problem in problems)

    def test_rejects_negative_and_missing_timing(self):
        bad = [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -1.0, "dur": 1.0},
            {"name": "y", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0},
        ]
        problems = chrometrace.validate_chrome_trace(bad)
        assert any("'ts'" in problem for problem in problems)
        assert any("'dur'" in problem for problem in problems)

    def test_rejects_missing_name_and_pid(self):
        problems = chrometrace.validate_chrome_trace(
            [{"ph": "X", "ts": 0.0, "dur": 1.0, "tid": 1}]
        )
        assert any("name" in problem for problem in problems)
        assert any("pid" in problem for problem in problems)
