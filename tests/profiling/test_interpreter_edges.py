"""Interpreter edge cases: input exhaustion and Pi-assertion checking."""

import pytest

from repro.ir import BasicBlock, Constant, Function, Module, Pi, Return, Temp
from repro.profiling.interpreter import AssertionViolation, run_module

from tests.helpers import compile_and_prepare


def run(source, args=None, inputs=None, **kwargs):
    module, _ = compile_and_prepare(source)
    return run_module(module, args=args or [0], input_values=inputs, **kwargs)


class TestInputExhaustion:
    def test_exhausted_input_vector_reads_zero(self):
        source = "func main(n) { return input() + input() + input(); }"
        assert run(source, inputs=[5, 7]).return_value == 12

    def test_empty_input_vector_reads_zero(self):
        source = "func main(n) { return input(); }"
        assert run(source, inputs=[]).return_value == 0
        assert run(source, inputs=None).return_value == 0

    def test_inputs_are_consumed_in_order(self):
        source = "func main(n) { return input() - input(); }"
        assert run(source, inputs=[10, 3]).return_value == 7

    def test_exhaustion_zero_can_steer_branches(self):
        source = """
        func main(n) {
          if (input() > 0) { return 1; }
          return 2;
        }
        """
        assert run(source, inputs=[9]).return_value == 1
        assert run(source, inputs=[]).return_value == 2


def contradicting_pi_module() -> Module:
    """``main(n) { m = pi n assuming n > 10; return m; }`` built by hand.

    Compiled programs only ever get Pi nodes consistent with the branch
    they sit behind, so a violating Pi has to be constructed directly.
    """
    function = Function("main", params=["n"])
    block = function.add_block(BasicBlock("entry"))
    block.append(Pi(Temp("m"), Temp("n.0"), "gt", Constant(10), parent="n"))
    block.append(Return(Temp("m")))
    module = Module("handmade")
    module.add_function(function)
    return module


class TestPiAssertions:
    def test_violated_assertion_raises(self):
        with pytest.raises(AssertionViolation) as excinfo:
            run_module(contradicting_pi_module(), args=[0])
        assert "does not hold" in str(excinfo.value)

    def test_satisfied_assertion_passes_the_value_through(self):
        result = run_module(contradicting_pi_module(), args=[11])
        assert result.return_value == 11

    def test_checking_can_be_disabled(self):
        result = run_module(
            contradicting_pi_module(), args=[0], check_assertions=False
        )
        assert result.return_value == 0

    def test_compiled_pis_hold_at_runtime(self):
        # The lowering inserts Pi nodes on branch edges; interpreting
        # with checking on must never trip them.
        source = """
        func main(n) {
          var total = 0;
          for (i = 0; i < 10; i = i + 1) {
            if (i > 5) { total = total + i; }
          }
          return total;
        }
        """
        assert run(source, args=[1]).return_value == 6 + 7 + 8 + 9
