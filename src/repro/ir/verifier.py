"""Structural well-formedness checks for IR functions.

The verifier catches construction mistakes early: unterminated blocks,
dangling branch targets, phi/predecessor mismatches, SSA violations
(double definition, use not dominated by definition), and misplaced
phis.  It raises :class:`VerificationError` with all problems listed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import CFG
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Phi, Pi
from repro.ir.values import Temp


class VerificationError(Exception):
    """Raised when a function fails verification; ``problems`` lists them."""

    def __init__(self, function_name: str, problems: List[str]):
        self.function_name = function_name
        self.problems = problems
        joined = "\n  ".join(problems)
        super().__init__(f"function {function_name!r} failed verification:\n  {joined}")


def verify_function(function: Function, ssa: bool = False,
                    param_names: Optional[Set[str]] = None) -> None:
    """Raise :class:`VerificationError` if ``function`` is malformed.

    With ``ssa=True`` additionally checks the single-assignment property
    and that every use is dominated by its definition (phi uses are
    checked against the corresponding predecessor block).
    """
    problems: List[str] = []
    if not function.blocks:
        raise VerificationError(function.name, ["function has no blocks"])

    for label, block in function.blocks.items():
        terminators = [i for i in block.instructions if i.is_terminator()]
        if not terminators:
            problems.append(f"block {label} is not terminated")
            continue
        if len(terminators) > 1:
            problems.append(f"block {label} has multiple terminators")
        if block.instructions[-1] is not terminators[0]:
            problems.append(f"block {label} has instructions after terminator")
        phis_done = False
        pis_done = False
        for instr in block.instructions:
            if isinstance(instr, Phi):
                if phis_done:
                    problems.append(f"block {label}: phi {instr.dest} after non-phi")
            elif isinstance(instr, Pi):
                phis_done = True
                if pis_done:
                    problems.append(
                        f"block {label}: pi {instr.dest} after body instruction"
                    )
            else:
                phis_done = True
                pis_done = True
        for succ in terminators[0].successors():
            if succ not in function.blocks:
                problems.append(f"block {label} targets unknown block {succ!r}")

    if problems:
        raise VerificationError(function.name, problems)

    cfg = CFG(function)
    for label, block in function.blocks.items():
        preds = set(cfg.predecessors[label])
        for phi in block.phis():
            incoming_labels = [lbl for lbl, _ in phi.incomings]
            if set(incoming_labels) != preds:
                problems.append(
                    f"phi {phi.dest} in {label}: incomings {sorted(incoming_labels)} "
                    f"!= predecessors {sorted(preds)}"
                )
            if len(set(incoming_labels)) != len(incoming_labels):
                problems.append(f"phi {phi.dest} in {label}: duplicate incoming labels")

    problems.extend(_check_pis(function, cfg))

    if ssa:
        problems.extend(_check_ssa(function, cfg, param_names or set()))

    if problems:
        raise VerificationError(function.name, problems)


def _root_of(name: str, defs: Dict[str, Instruction]):
    """Resolve ``name`` through Copy/Pi definition chains.

    Copy propagation rewrites comparison operands but leaves Pi nodes
    alone, so a pi's source and the cmp operand it asserts about may
    differ by a chain of copies.  Returns ``("name", root)`` or, when
    the chain ends in a copy of a constant, ``("const", value)``.
    """
    from repro.ir.instructions import Copy
    from repro.ir.values import Constant

    seen = set()
    while name not in seen:
        seen.add(name)
        instr = defs.get(name)
        if isinstance(instr, Copy):
            if isinstance(instr.src, Constant):
                return ("const", instr.src.value)
            if isinstance(instr.src, Temp):
                name = instr.src.name
                continue
        if isinstance(instr, Pi) and isinstance(instr.src, Temp):
            name = instr.src.name
            continue
        break
    return ("name", name)


def _check_pis(function: Function, cfg: CFG) -> List[str]:
    """Check pi placement: assertion position, unique predecessor, and
    that each pi names (a copy of) the controlling variable of the
    predecessor's conditional branch."""
    from repro.ir.instructions import Branch, Cmp, Jump
    from repro.ir.values import Constant

    problems: List[str] = []
    reachable = cfg.reachable()
    defs: Dict[str, Instruction] = {}
    for block in function.blocks.values():
        for instr in block.instructions:
            result = instr.result
            if result is not None:
                defs[result.name] = instr

    for label, block in function.blocks.items():
        pis = block.pis()
        if not pis:
            continue
        if label not in reachable:
            continue
        preds = cfg.predecessors[label]
        if len(preds) != 1:
            problems.append(
                f"block {label}: pi nodes require a unique predecessor, "
                f"has {len(preds)}"
            )
            continue
        term = function.block(preds[0]).terminator
        if isinstance(term, Jump):
            # A folded branch (Branch -> Jump) legitimately leaves its
            # assertions behind; they are still sound.
            continue
        if not isinstance(term, Branch):
            problems.append(
                f"block {label}: pi nodes but predecessor {preds[0]} does "
                f"not end in a branch"
            )
            continue
        allowed = set()
        if isinstance(term.cond, Temp):
            allowed.add(("name", term.cond.name))
            cond_def = defs.get(term.cond.name)
            if isinstance(cond_def, Cmp):
                for operand in (cond_def.lhs, cond_def.rhs):
                    if isinstance(operand, Temp):
                        allowed.add(("name", operand.name))
                        allowed.add(_root_of(operand.name, defs))
                    elif isinstance(operand, Constant):
                        allowed.add(("const", operand.value))
        for pi in pis:
            if not isinstance(pi.src, Temp):
                problems.append(f"block {label}: pi {pi.dest} has non-temp source")
                continue
            candidates = {("name", pi.src.name), _root_of(pi.src.name, defs)}
            if not (candidates & allowed):
                problems.append(
                    f"block {label}: pi {pi.dest} asserts {pi.src.name}, which "
                    f"is not a controlling variable of the branch in {preds[0]}"
                )
    return problems


def _check_ssa(function: Function, cfg: CFG, param_names: Set[str]) -> List[str]:
    problems: List[str] = []
    def_site: Dict[str, tuple] = {}
    entry = function.entry_label
    assert entry is not None
    for name in param_names:
        def_site[name] = (entry, -1)
    for label, block in function.blocks.items():
        for index, instr in enumerate(block.instructions):
            result = instr.result
            if result is None:
                continue
            if result.name in def_site:
                problems.append(f"SSA violation: {result.name} defined more than once")
            else:
                def_site[result.name] = (label, index)
    if problems:
        return problems

    from repro.passes.cache import dominator_tree

    dom = dominator_tree(cfg)
    reachable = cfg.reachable()
    for label, block in function.blocks.items():
        if label not in reachable:
            continue
        for index, instr in enumerate(block.instructions):
            if isinstance(instr, Phi):
                for pred_label, value in instr.incomings:
                    if not isinstance(value, Temp):
                        continue
                    site = def_site.get(value.name)
                    if site is None:
                        problems.append(
                            f"phi {instr.dest} reads undefined {value.name}"
                        )
                    elif pred_label in reachable and not dom.dominates(site[0], pred_label):
                        problems.append(
                            f"phi {instr.dest}: {value.name} (defined in {site[0]}) does "
                            f"not dominate incoming edge from {pred_label}"
                        )
                continue
            for operand in instr.operands():
                if not isinstance(operand, Temp):
                    continue
                site = def_site.get(operand.name)
                if site is None:
                    problems.append(
                        f"{label}[{index}] {instr!r} reads undefined {operand.name}"
                    )
                    continue
                def_label, def_index = site
                if def_label == label:
                    if def_index >= index:
                        problems.append(
                            f"{label}[{index}] {instr!r} uses {operand.name} before "
                            f"its definition in the same block"
                        )
                elif not dom.dominates(def_label, label):
                    problems.append(
                        f"{label}[{index}] {instr!r}: definition of {operand.name} "
                        f"in {def_label} does not dominate the use"
                    )
    return problems


def verify_module(module: Module, ssa: bool = False) -> None:
    for function in module.functions.values():
        verify_function(function, ssa=ssa)
