"""Stable fingerprints of analysis configurations.

The serving layer (``repro.server``) keys its content-addressed result
cache on *everything that can change an analysis result*: the program
text, the command, its options -- and the :class:`~repro.core.config.
VRPConfig`.  This module owns the config half of that key.

Two properties matter:

* **Completeness** -- every config field that can change results must
  feed the fingerprint.  Fields are enumerated from the dataclass
  itself, so a field added later is *included by default*; only fields
  on the explicit behaviour-neutral list are excluded.
* **Neutrality-awareness** -- fields proven behaviour-neutral (the perf
  layer's switches, the sanitizer, IR verification: predictions are
  byte-identical either way, see ``docs/PERFORMANCE.md``) are excluded,
  so a cache warmed with ``--no-perf`` still hits with the perf layer
  on, and vice versa.

The fingerprint is salted with the package version: an engine upgrade
silently invalidates every cached result instead of serving stale ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.core.config import VRPConfig

#: Config fields that cannot change analysis *results*, only wall time
#: or failure loudness.  Everything not listed here is key material.
NEUTRAL_FIELDS = frozenset(
    {
        "perf",
        "perf_memo_size",
        "perf_intern_size",
        "sanitize",
        "verify_ir",
        # Incremental replay is byte-identical to cold analysis
        # (docs/INCREMENTAL.md), so a server cache warmed without the
        # summary store still hits with it on, and vice versa.
        "incremental",
    }
)


def config_items(config: VRPConfig):
    """The result-affecting ``(field, repr(value))`` pairs, sorted.

    ``repr`` (not ``str``) keeps ints and floats distinguishable
    (``repr(1) != repr(1.0)``) and is stable for the bool/int/float
    field types the config uses.
    """
    return tuple(
        (field.name, repr(getattr(config, field.name)))
        for field in sorted(dataclasses.fields(config), key=lambda f: f.name)
        if field.name not in NEUTRAL_FIELDS
    )


def engine_salt() -> str:
    """Version salt: bumping the package invalidates cached results."""
    from repro import __version__

    return f"repro-{__version__}"


def config_fingerprint(config: VRPConfig) -> str:
    """SHA-256 hex fingerprint of the result-affecting configuration."""
    payload = json.dumps(
        [engine_salt(), [list(item) for item in config_items(config)]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
