"""The Ball–Larus (PLDI 1993) branch heuristics.

Nine structural heuristics, each predicting one successor with an
empirical hit rate (the rates are the Wu–Larus measurements used to turn
directions into probabilities).  Two combination modes:

* ``"dempster-shafer"`` (default): all applicable heuristics fused with
  the Dempster–Shafer rule -- this is the "[BallLarus93] heuristics
  combined as in [WuLarus94]" baseline of the paper's Figures 7-8;
* ``"priority"``: the first applicable heuristic in Ball–Larus's fixed
  order wins (their original formulation, direction-only).

The pointer heuristic is adapted to the toy language (which has no
pointers): it fires on equality comparisons of values chased out of
memory, the closest analogue of pointer comparisons.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.heuristics.base import FunctionContext, Predictor
from repro.heuristics.combine import dempster_shafer
from repro.ir.instructions import Branch, Call, Cmp, Load, Return, Store
from repro.ir.values import Constant, Temp

# Empirical hit rates (probability the predicted direction is right).
LOOP_BRANCH_PROB = 0.88
POINTER_PROB = 0.60
OPCODE_PROB = 0.84
GUARD_PROB = 0.62
LOOP_EXIT_PROB = 0.80
LOOP_HEADER_PROB = 0.75
CALL_PROB = 0.78
STORE_PROB = 0.55
RETURN_PROB = 0.72

# A heuristic outcome: P(true edge), or None when not applicable.
HeuristicFn = Callable[[FunctionContext, str, Branch], Optional[float]]


def loop_branch_heuristic(
    context: FunctionContext, label: str, branch: Branch
) -> Optional[float]:
    """Predict taken an edge back to a loop head; not taken a loop exit."""
    true_back = context.cfg.is_back_edge(label, branch.true_target)
    false_back = context.cfg.is_back_edge(label, branch.false_target)
    if true_back and not false_back:
        return LOOP_BRANCH_PROB
    if false_back and not true_back:
        return 1.0 - LOOP_BRANCH_PROB
    loop = context.loops.innermost(label)
    if loop is not None:
        true_exits = not loop.contains(
            context.effective_successor(branch.true_target)
        ) and not loop.contains(branch.true_target)
        false_exits = not loop.contains(
            context.effective_successor(branch.false_target)
        ) and not loop.contains(branch.false_target)
        if true_exits and not false_exits:
            return 1.0 - LOOP_BRANCH_PROB
        if false_exits and not true_exits:
            return LOOP_BRANCH_PROB
    return None


def pointer_heuristic(
    context: FunctionContext, label: str, branch: Branch
) -> Optional[float]:
    """Memory-derived values compared for equality are predicted unequal."""
    cmp = context.condition_of(label)
    if cmp is None or cmp.op not in ("eq", "ne"):
        return None
    if not _memory_derived(context, cmp):
        return None
    taken = POINTER_PROB if cmp.op == "ne" else 1.0 - POINTER_PROB
    return taken


def _memory_derived(context: FunctionContext, cmp: Cmp) -> bool:
    derived = _memory_derived_names(context)
    return any(
        isinstance(operand, Temp) and operand.name in derived
        for operand in (cmp.lhs, cmp.rhs)
    )


def _memory_derived_names(context: FunctionContext):
    """SSA names holding loaded values, closed over copies/assertions."""
    cached = getattr(context, "_memory_derived_cache", None)
    if cached is not None:
        return cached
    from repro.ir.instructions import Copy, Phi, Pi

    derived = set()
    for block in context.function.blocks.values():
        for instr in block.instructions:
            if isinstance(instr, Load):
                derived.add(instr.dest.name)
    changed = True
    while changed:
        changed = False
        for block in context.function.blocks.values():
            for instr in block.instructions:
                if isinstance(instr, (Copy, Pi)):
                    src = instr.src
                    if (
                        isinstance(src, Temp)
                        and src.name in derived
                        and instr.dest.name not in derived
                    ):
                        derived.add(instr.dest.name)
                        changed = True
                elif isinstance(instr, Phi):
                    if instr.dest.name not in derived and any(
                        isinstance(value, Temp) and value.name in derived
                        for _, value in instr.incomings
                    ):
                        derived.add(instr.dest.name)
                        changed = True
    context._memory_derived_cache = derived
    return derived


def opcode_heuristic(
    context: FunctionContext, label: str, branch: Branch
) -> Optional[float]:
    """``x < 0``, ``x <= 0`` and ``x == const`` are predicted false."""
    cmp = context.condition_of(label)
    if cmp is None:
        return None
    zero = Constant(0)
    if cmp.op in ("lt", "le") and cmp.rhs == zero:
        return 1.0 - OPCODE_PROB
    if cmp.op in ("gt", "ge") and cmp.rhs == zero:
        return OPCODE_PROB
    if cmp.op == "eq" and (
        isinstance(cmp.rhs, Constant) or isinstance(cmp.lhs, Constant)
    ):
        return 1.0 - OPCODE_PROB
    if cmp.op == "ne" and (
        isinstance(cmp.rhs, Constant) or isinstance(cmp.lhs, Constant)
    ):
        return OPCODE_PROB
    return None


def guard_heuristic(
    context: FunctionContext, label: str, branch: Branch
) -> Optional[float]:
    """Predict the successor that uses a compared register before
    redefining it (and does not postdominate the branch)."""
    cmp = context.condition_of(label)
    if cmp is None:
        return None
    operands = [op for op in (cmp.lhs, cmp.rhs) if isinstance(op, Temp)]
    if not operands:
        return None
    true_guards = _uses_before_def(context, branch.true_target, operands)
    false_guards = _uses_before_def(context, branch.false_target, operands)
    true_pd = context.postdom.postdominates(branch.true_target, label)
    false_pd = context.postdom.postdominates(branch.false_target, label)
    true_applies = true_guards and not true_pd
    false_applies = false_guards and not false_pd
    if true_applies and not false_applies:
        return GUARD_PROB
    if false_applies and not true_applies:
        return 1.0 - GUARD_PROB
    return None


def _uses_before_def(
    context: FunctionContext, succ: str, operands: List[Temp]
) -> bool:
    wanted = {op.name for op in operands}
    for instr in context.effective_instructions(succ):
        for operand in instr.operands():
            if isinstance(operand, Temp) and operand.name in wanted:
                return True
        result = instr.result
        if result is not None and result.name in wanted:
            wanted.discard(result.name)
            if not wanted:
                return False
    return False


def loop_exit_heuristic(
    context: FunctionContext, label: str, branch: Branch
) -> Optional[float]:
    """Inside a loop, with no successor a loop head, predict the edge
    that stays in the loop."""
    loop = context.loops.innermost(label)
    if loop is None:
        return None
    succs = (branch.true_target, branch.false_target)
    if any(context.loops.is_header(context.effective_successor(s)) for s in succs):
        return None
    true_exits = not loop.contains(branch.true_target)
    false_exits = not loop.contains(branch.false_target)
    if true_exits and not false_exits:
        return 1.0 - LOOP_EXIT_PROB
    if false_exits and not true_exits:
        return LOOP_EXIT_PROB
    return None


def loop_header_heuristic(
    context: FunctionContext, label: str, branch: Branch
) -> Optional[float]:
    """Predict a successor that is a loop header and not a postdominator."""
    true_eff = context.effective_successor(branch.true_target)
    false_eff = context.effective_successor(branch.false_target)
    true_applies = context.loops.is_header(true_eff) and not context.postdom.postdominates(
        branch.true_target, label
    )
    false_applies = context.loops.is_header(false_eff) and not context.postdom.postdominates(
        branch.false_target, label
    )
    if true_applies and not false_applies:
        return LOOP_HEADER_PROB
    if false_applies and not true_applies:
        return 1.0 - LOOP_HEADER_PROB
    return None


def _successor_content_heuristic(instr_type, probability: float):
    """Build a heuristic: a successor containing ``instr_type`` and not
    postdominating the branch is predicted NOT taken."""

    def heuristic(
        context: FunctionContext, label: str, branch: Branch
    ) -> Optional[float]:
        def applies(target: str) -> bool:
            if context.postdom.postdominates(target, label):
                return False
            return any(
                isinstance(instr, instr_type)
                for instr in context.effective_instructions(target)
            )

        true_applies = applies(branch.true_target)
        false_applies = applies(branch.false_target)
        if true_applies and not false_applies:
            return 1.0 - probability
        if false_applies and not true_applies:
            return probability
        return None

    return heuristic


call_heuristic = _successor_content_heuristic(Call, CALL_PROB)
store_heuristic = _successor_content_heuristic(Store, STORE_PROB)
return_heuristic = _successor_content_heuristic(Return, RETURN_PROB)

# Ball-Larus's fixed application order for priority mode.
HEURISTIC_ORDER: List[Tuple[str, HeuristicFn]] = [
    ("loop-branch", loop_branch_heuristic),
    ("pointer", pointer_heuristic),
    ("opcode", opcode_heuristic),
    ("guard", guard_heuristic),
    ("loop-exit", loop_exit_heuristic),
    ("loop-header", loop_header_heuristic),
    ("call", call_heuristic),
    ("store", store_heuristic),
    ("return", return_heuristic),
]


class BallLarusPredictor(Predictor):
    """All nine heuristics, combined per Wu–Larus or by priority."""

    name = "ball-larus"

    def __init__(self, combination: str = "dempster-shafer"):
        if combination not in ("dempster-shafer", "priority"):
            raise ValueError(f"unknown combination mode {combination!r}")
        self.combination = combination

    def predict_branch(
        self, context: FunctionContext, label: str, branch: Branch
    ) -> float:
        chain: List[Tuple[str, float]] = []
        for name, heuristic in HEURISTIC_ORDER:
            estimate = heuristic(context, label, branch)
            if estimate is None:
                continue
            chain.append((name, estimate))
            if self.combination == "priority":
                break
        if self.combination == "priority":
            combined = chain[0][1] if chain else 0.5
        elif not chain:
            combined = 0.5
        else:
            combined = dempster_shafer([estimate for _, estimate in chain])
        self._emit_chain(context, label, chain, combined)
        return combined

    def _emit_chain(
        self,
        context: FunctionContext,
        label: str,
        chain: List[Tuple[str, float]],
        combined: float,
    ) -> None:
        """Tag the trace with which heuristics fired (no-op when disabled)."""
        from repro.observability import tracer as tracing

        tracer = tracing.active()
        if not tracer.enabled:
            return
        from repro.observability.events import HeuristicChain

        tracer.emit(
            HeuristicChain(
                context.function.name,
                label,
                self.combination,
                tuple(chain),
                combined,
            )
        )

    def applicable_heuristics(
        self, context: FunctionContext, label: str, branch: Branch
    ) -> List[Tuple[str, float]]:
        """Which heuristics fire on this branch (for diagnostics/tests)."""
        out = []
        for name, heuristic in HEURISTIC_ORDER:
            estimate = heuristic(context, label, branch)
            if estimate is not None:
                out.append((name, estimate))
        return out
