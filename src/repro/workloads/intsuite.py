"""The "SPECint92-like" suite: branchy, data-dependent integer programs.

Ten programs in the spirit of the integer workloads the paper evaluates
on (compression, table lookup, sorting, parsing, backtracking search...).
Their branch behaviour is dominated by *data-dependent* decisions --
exactly the regime where the paper found VRP's advantage over heuristics
smaller than on numeric code, because loads and external inputs force ⊥
ranges and heuristic fallback.
"""

from __future__ import annotations

from typing import List

from repro.workloads.registry import Workload, lcg_stream, register


def _runny(seed: int, count: int, alphabet: int, run: int) -> List[int]:
    """A stream with runs (for RLE-style workloads)."""
    raw = lcg_stream(seed, count)
    out: List[int] = []
    index = 0
    while len(out) < count:
        value = raw[index % len(raw)] % alphabet
        length = 1 + raw[(index + 1) % len(raw)] % run
        out.extend([value] * length)
        index += 2
    return out[:count]


RLE_SOURCE = """
func main(n) {
  array data[8192];
  for (i = 0; i < n; i = i + 1) {
    data[i] = input();
  }
  var runs = 0;
  var total = 0;
  var i = 0;
  while (i < n) {
    var v = data[i];
    var j = i + 1;
    while (j < n) {
      if (data[j] != v) { break; }
      j = j + 1;
    }
    runs = runs + 1;
    total = total + (j - i);
    i = j;
  }
  return runs * 1000 + total % 1000;
}
"""

register(
    Workload(
        name="rle",
        suite="int",
        description="Run-length encoder over a bursty byte stream (compress-like)",
        source=RLE_SOURCE,
        train_args=[400],
        ref_args=[5000],
        train_inputs=_runny(11, 400, alphabet=12, run=6),
        ref_inputs=_runny(97, 5000, alphabet=20, run=4),
    )
)


TOKENIZE_SOURCE = """
func classify(c) {
  if (c < 32) { return 0; }
  if (c == 32) { return 1; }
  if (c < 48) { return 2; }
  if (c < 58) { return 3; }
  if (c < 65) { return 2; }
  if (c < 91) { return 4; }
  if (c < 97) { return 2; }
  if (c < 123) { return 5; }
  return 2;
}

func main(n) {
  var words = 0;
  var digits = 0;
  var inword = 0;
  for (i = 0; i < n; i = i + 1) {
    var c = input() % 128;
    var k = classify(c);
    if (k == 3) { digits = digits + 1; }
    if (k == 4 || k == 5) {
      if (inword == 0) { words = words + 1; inword = 1; }
    } else {
      inword = 0;
    }
  }
  return words * 100 + digits % 100;
}
"""


def _textish(seed: int, count: int) -> List[int]:
    """A stream distributed like ASCII text (mostly lowercase + spaces)."""
    raw = lcg_stream(seed, count)
    out = []
    for value in raw:
        selector = value % 100
        if selector < 60:
            out.append(97 + value % 26)  # lowercase
        elif selector < 75:
            out.append(32)  # space
        elif selector < 85:
            out.append(48 + value % 10)  # digit
        elif selector < 92:
            out.append(65 + value % 26)  # uppercase
        else:
            out.append(33 + value % 14)  # punctuation
    return out


register(
    Workload(
        name="tokenize",
        suite="int",
        description="Character-class tokeniser over text-like bytes (gcc-like scanning)",
        source=TOKENIZE_SOURCE,
        train_args=[500],
        ref_args=[6000],
        train_inputs=_textish(5, 500),
        ref_inputs=_textish(131, 6000),
    )
)


HASHTAB_SOURCE = """
func main(n) {
  array keys[512];
  array used[512];
  var collisions = 0;
  var inserted = 0;
  var found = 0;
  for (i = 0; i < n; i = i + 1) {
    var k = input() + 1;
    var h = (k * 2654435761) % 512;
    var probes = 0;
    while (probes < 512) {
      if (used[h] == 0) {
        used[h] = 1;
        keys[h] = k;
        inserted = inserted + 1;
        break;
      }
      if (keys[h] == k) {
        found = found + 1;
        break;
      }
      h = (h + 1) % 512;
      collisions = collisions + 1;
      probes = probes + 1;
    }
  }
  return inserted * 10000 + found * 100 + collisions % 100;
}
"""

register(
    Workload(
        name="hashtab",
        suite="int",
        description="Open-addressing hash table insert/lookup (eqntott-like pointer chasing)",
        source=HASHTAB_SOURCE,
        train_args=[150],
        ref_args=[400],
        train_inputs=[v % 997 for v in lcg_stream(23, 150)],
        ref_inputs=[v % 4093 for v in lcg_stream(41, 400)],
    )
)


ISORT_SOURCE = """
func main(n) {
  array a[1024];
  for (i = 0; i < n; i = i + 1) {
    a[i] = input();
  }
  for (i = 1; i < n; i = i + 1) {
    var v = a[i];
    var j = i - 1;
    while (j >= 0) {
      if (a[j] <= v) { break; }
      a[j + 1] = a[j];
      j = j - 1;
    }
    a[j + 1] = v;
  }
  var out_of_order = 0;
  for (i = 1; i < n; i = i + 1) {
    if (a[i - 1] > a[i]) { out_of_order = out_of_order + 1; }
  }
  return out_of_order;
}
"""

register(
    Workload(
        name="isort",
        suite="int",
        description="Insertion sort with a verification pass (data-dependent compares)",
        source=ISORT_SOURCE,
        train_args=[60],
        ref_args=[220],
        train_inputs=lcg_stream(7, 60),
        ref_inputs=lcg_stream(303, 220),
    )
)


QUEENS_SOURCE = """
func solve(row, nq, cols, d1, d2) {
  if (row == nq) { return 1; }
  var count = 0;
  for (c = 0; c < nq; c = c + 1) {
    var bit = 1 << c;
    var b1 = 1 << (row + c);
    var b2 = 1 << (row - c + nq);
    if ((cols & bit) == 0 && (d1 & b1) == 0 && (d2 & b2) == 0) {
      count = count + solve(row + 1, nq, cols | bit, d1 | b1, d2 | b2);
    }
  }
  return count;
}

func main(n) {
  return solve(0, n, 0, 0, 0);
}
"""

register(
    Workload(
        name="queens",
        suite="int",
        description="N-queens backtracking with bitmask pruning (espresso-like search)",
        source=QUEENS_SOURCE,
        train_args=[6],
        ref_args=[8],
    )
)


BITCOUNT_SOURCE = """
func popcount(x) {
  var c = 0;
  while (x > 0) {
    c = c + (x & 1);
    x = x >> 1;
  }
  return c;
}

func main(n) {
  var total = 0;
  var odd = 0;
  for (i = 0; i < n; i = i + 1) {
    var v = input() % 65536;
    var p = popcount(v);
    total = total + p;
    if ((p & 1) == 1) { odd = odd + 1; }
  }
  return total * 10 + odd % 10;
}
"""

register(
    Workload(
        name="bitcount",
        suite="int",
        description="Population counts over a 16-bit stream (bit-twiddling kernel)",
        source=BITCOUNT_SOURCE,
        train_args=[300],
        ref_args=[2500],
        train_inputs=lcg_stream(77, 300),
        ref_inputs=lcg_stream(901, 2500),
    )
)


UNION_SOURCE = """
func main(n) {
  array parent[2048];
  for (i = 0; i < 2048; i = i + 1) {
    parent[i] = i;
  }
  var merges = 0;
  for (e = 0; e < n; e = e + 1) {
    var a = input() % 2048;
    var b = input() % 2048;
    var ra = a;
    while (parent[ra] != ra) { ra = parent[ra]; }
    var rb = b;
    while (parent[rb] != rb) { rb = parent[rb]; }
    if (ra != rb) {
      parent[ra] = rb;
      merges = merges + 1;
    }
  }
  return merges;
}
"""

register(
    Workload(
        name="unionfind",
        suite="int",
        description="Union-find over random edges (graph connectivity, chasing loops)",
        source=UNION_SOURCE,
        train_args=[300],
        ref_args=[1800],
        train_inputs=lcg_stream(13, 600),
        ref_inputs=lcg_stream(517, 3600),
    )
)


LCS_SOURCE = """
func main(n) {
  array s[256];
  array t[256];
  array prev[257];
  array cur[257];
  for (i = 0; i < n; i = i + 1) { s[i] = input() % 26; }
  for (i = 0; i < n; i = i + 1) { t[i] = input() % 26; }
  for (j = 0; j <= n; j = j + 1) { prev[j] = 0; }
  for (i = 1; i <= n; i = i + 1) {
    cur[0] = 0;
    for (j = 1; j <= n; j = j + 1) {
      if (s[i - 1] == t[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        if (prev[j] >= cur[j - 1]) { cur[j] = prev[j]; }
        else { cur[j] = cur[j - 1]; }
      }
    }
    for (j = 0; j <= n; j = j + 1) { prev[j] = cur[j]; }
  }
  return prev[n];
}
"""

register(
    Workload(
        name="lcs",
        suite="int",
        description="Longest common subsequence DP (sc-like table computation)",
        source=LCS_SOURCE,
        train_args=[40],
        ref_args=[130],
        train_inputs=lcg_stream(3, 80),
        ref_inputs=lcg_stream(59, 260),
    )
)


CALC_SOURCE = """
func main(n) {
  array stack[256];
  var sp = 0;
  var errors = 0;
  for (i = 0; i < n; i = i + 1) {
    var op = input() % 8;
    if (op < 4) {
      if (sp < 256) {
        stack[sp] = op + 1;
        sp = sp + 1;
      } else {
        errors = errors + 1;
      }
    } else {
      if (sp >= 2) {
        var b = stack[sp - 1];
        var a = stack[sp - 2];
        sp = sp - 2;
        var r = 0;
        if (op == 4) { r = a + b; }
        if (op == 5) { r = a - b; }
        if (op == 6) { r = a * b; }
        if (op == 7) {
          if (b != 0) { r = a / b; } else { errors = errors + 1; }
        }
        stack[sp] = r;
        sp = sp + 1;
      } else {
        errors = errors + 1;
      }
    }
  }
  return sp * 1000 + errors % 1000;
}
"""

register(
    Workload(
        name="calc",
        suite="int",
        description="Stack-machine evaluator over an opcode stream (li-like interpreter)",
        source=CALC_SOURCE,
        train_args=[400],
        ref_args=[5000],
        train_inputs=lcg_stream(29, 400),
        ref_inputs=lcg_stream(733, 5000),
    )
)


SIEVE_SOURCE = """
func main(n) {
  array sieve[8192];
  for (i = 0; i < n; i = i + 1) { sieve[i] = 1; }
  var count = 0;
  for (i = 2; i < n; i = i + 1) {
    if (sieve[i] == 1) {
      count = count + 1;
      for (j = i + i; j < n; j = j + i) {
        sieve[j] = 0;
      }
    }
  }
  return count;
}
"""

register(
    Workload(
        name="sieve",
        suite="int",
        description="Sieve of Eratosthenes (deterministic control, variable stride)",
        source=SIEVE_SOURCE,
        train_args=[500],
        ref_args=[6000],
    )
)


STRSEARCH_SOURCE = """
func match_at(haystack_len, pos, m, seed) {
  var k = 0;
  while (k < m) {
    var hay = ((pos + k) * 37 + seed) % 26;
    var pat = (k * 37 + seed) % 26;
    if (hay != pat) { return 0; }
    k = k + 1;
  }
  return 1;
}

func main(n) {
  var found = 0;
  for (pos = 0; pos + 8 <= n; pos = pos + 1) {
    var seed = input() % 26;
    if (match_at(n, pos, 4, seed) == 1) { found = found + 1; }
    if (match_at(n, pos, 8, seed) == 1) { found = found + 1; }
  }
  return found;
}
"""

register(
    Workload(
        name="strsearch",
        suite="int",
        description="Naive substring matching at two pattern lengths "
        "(early-exit inner loop, symbolic bound)",
        source=STRSEARCH_SOURCE,
        train_args=[150],
        ref_args=[1200],
        train_inputs=lcg_stream(127, 150),
        ref_inputs=lcg_stream(131, 1200),
    )
)


SCAN_SOURCE = """
func main(n) {
  array window[3];
  var matches = 0;
  var lines = 0;
  window[0] = 0 - 1;
  window[1] = 0 - 1;
  window[2] = 0 - 1;
  for (i = 0; i < n; i = i + 1) {
    var c = input() % 16;
    if (c == 0) {
      lines = lines + 1;
      window[0] = 0 - 1;
      window[1] = 0 - 1;
      window[2] = 0 - 1;
    } else {
      window[0] = window[1];
      window[1] = window[2];
      window[2] = c;
      if (window[0] == 3) {
        if (window[1] == 1) {
          if (window[2] == 4) {
            matches = matches + 1;
          }
        }
      }
    }
  }
  return matches * 1000 + lines % 1000;
}
"""

register(
    Workload(
        name="scan",
        suite="int",
        description="Sliding-window pattern scan over a token stream (grep-like)",
        source=SCAN_SOURCE,
        train_args=[600],
        ref_args=[7000],
        train_inputs=[v % 16 for v in lcg_stream(211, 600)],
        ref_inputs=[v % 16 for v in lcg_stream(223, 7000)],
    )
)


FREQPAIR_SOURCE = """
func main(n) {
  array freq[64];
  for (i = 0; i < n; i = i + 1) {
    var s = input() % 64;
    freq[s] = freq[s] + 1;
  }
  var merges = 0;
  var cost = 0;
  for (round = 0; round < 63; round = round + 1) {
    var first = 0 - 1;
    var second = 0 - 1;
    for (s = 0; s < 64; s = s + 1) {
      if (freq[s] > 0) {
        if (first < 0) {
          first = s;
        } else {
          if (second < 0) {
            if (freq[s] < freq[first]) {
              second = first;
              first = s;
            } else {
              second = s;
            }
          } else {
            if (freq[s] < freq[first]) {
              second = first;
              first = s;
            } else {
              if (freq[s] < freq[second]) { second = s; }
            }
          }
        }
      }
    }
    if (second < 0) { break; }
    var combined = freq[first] + freq[second];
    cost = cost + combined;
    freq[first] = combined;
    freq[second] = 0;
    merges = merges + 1;
  }
  return cost % 1000000 + merges * 1000000;
}
"""

register(
    Workload(
        name="freqpair",
        suite="int",
        description="Huffman-style repeated min-pair merging over a frequency table",
        source=FREQPAIR_SOURCE,
        train_args=[300],
        ref_args=[3000],
        train_inputs=[v % 64 for v in lcg_stream(227, 300)],
        ref_inputs=[v % 64 for v in lcg_stream(229, 3000)],
    )
)
