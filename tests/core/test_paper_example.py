"""End-to-end reproduction of the paper's worked example (Figures 2-4).

The program::

    for (x=0; x<10; ++x) {
      if (x > 7) { y = 1; } else { y = x; }
      if (y == 1) { ... }
    }

must yield, per Figure 4: branch probabilities 91% / 20% / 30% and the
exact value ranges the paper lists.
"""

import pytest

from tests.helpers import PAPER_EXAMPLE, analyse, value_of_variable


@pytest.fixture(scope="module")
def prediction():
    return analyse(PAPER_EXAMPLE)


def extents(rangeset):
    return sorted(
        (round(r.probability, 6), str(r.lo), str(r.hi), r.stride)
        for r in rangeset.ranges
    )


class TestFigure4BranchProbabilities:
    def test_loop_branch_91_percent(self, prediction):
        assert prediction.branch_probability["for1"] == pytest.approx(10 / 11)

    def test_threshold_branch_20_percent(self, prediction):
        assert prediction.branch_probability["body2"] == pytest.approx(0.2)

    def test_equality_branch_30_percent(self, prediction):
        assert prediction.branch_probability["join7"] == pytest.approx(0.3)

    def test_no_heuristic_fallback_needed(self, prediction):
        assert prediction.used_heuristic == set()


class TestFigure4ValueRanges:
    def test_x_versions(self, prediction):
        x = {name: extents(v) for name, v in value_of_variable(prediction, "x").items()}
        assert x["x.0"] == [(1.0, "0", "0", 0)]  # paper's x0 = {1[0:0:0]}
        assert x["x.1"] == [(1.0, "0", "10", 1)]  # x1 = {1[0:10:1]}
        assert x["x.3"] == [(1.0, "0", "9", 1)]  # x2 = {1[0:9:1]}
        assert x["x.4"] == [(1.0, "0", "7", 1)]  # x3 = {1[0:7:1]}
        assert x["x.7"] == [(1.0, "1", "10", 1)]  # x5 = {1[1:10:1]}

    def test_footnote4_merge_restores_parent(self, prediction):
        # x6 = phi of the two assertion-derived versions of x.3: the
        # merge must produce the parent's range {1[0:9:1]}, not a
        # two-range weighted split.
        x = value_of_variable(prediction, "x")
        assert extents(x["x.6"]) == [(1.0, "0", "9", 1)]

    def test_y_versions(self, prediction):
        y = {name: extents(v) for name, v in value_of_variable(prediction, "y").items()}
        assert y["y.0"] == [(1.0, "0", "0", 0)]
        assert y["y.3"] == [(1.0, "1", "1", 0)]  # then-branch constant
        assert y["y.2"] == [(1.0, "0", "7", 1)]  # else-branch copy of x3
        # y2 = {0.8[0:7:1], 0.2[1:1:0]} -- the paper's key weighted merge.
        assert y["y.4"] == [
            (0.2, "1", "1", 0),
            (0.8, "0", "7", 1),
        ]

    def test_loop_exit_assertion(self, prediction):
        # On the exit edge x is asserted >= 10: exactly {10}.
        x = value_of_variable(prediction, "x")
        assert extents(x["x.2"]) == [(1.0, "10", "10", 0)]


class TestSubsumption:
    def test_constants_discovered(self, prediction):
        # x.0 and y.0 are the constant 0; y.3 the constant 1.
        assert prediction.values["x.0"].constant_value() == 0
        assert prediction.values["y.3"].constant_value() == 1

    def test_counters_recorded(self, prediction):
        counters = prediction.counters
        assert counters.expr_evaluations > 0
        assert counters.sub_operations > 0
        assert counters.derivations_succeeded >= 1  # the x loop phi
