"""Hit/miss counters for the perf layer's caches.

One process-global :class:`PerfStats` instance tallies every cache in
the layer.  :meth:`repro.core.predictor.VRPPredictor.predict_module`
resets it (together with the caches themselves) at the start of each
run, so a snapshot taken after a run describes exactly that run -- which
is what makes the optional ``perf`` key of the metrics report
deterministic across ``--jobs`` worker layouts.
"""

from __future__ import annotations

from typing import Dict


class CacheStats:
    """Hits/misses/evictions of one cache."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate(), 6),
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


# Cache names, one CacheStats each.  "engine_transfer" is the
# per-instruction operand-identity skip inside the propagation engine;
# "summary_context" is the interprocedural (function, context) → summary
# memo of core/summaries.py.
CACHE_NAMES = (
    "intern_bound",
    "intern_range",
    "intern_rangeset",
    "from_ranges",
    "merge_weighted",
    "binop",
    "unop",
    "compare",
    "refine",
    "constant",
    "boolean",
    "engine_transfer",
    "summary_context",
)


class PerfStats:
    """All cache statistics of the perf layer."""

    __slots__ = ("caches",)

    def __init__(self) -> None:
        self.caches: Dict[str, CacheStats] = {
            name: CacheStats() for name in CACHE_NAMES
        }

    def reset(self) -> None:
        for cache in self.caches.values():
            cache.reset()

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: cache.as_dict() for name, cache in self.caches.items()}

    def total_hits(self) -> int:
        return sum(cache.hits for cache in self.caches.values())

    def total_misses(self) -> int:
        return sum(cache.misses for cache in self.caches.values())


_STATS = PerfStats()


def stats() -> PerfStats:
    """The process-global statistics instance."""
    return _STATS


def snapshot() -> Dict[str, Dict[str, float]]:
    """A serialisable copy of the current statistics."""
    return _STATS.as_dict()


def reset_stats() -> None:
    _STATS.reset()
