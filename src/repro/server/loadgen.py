"""Load generation against a serving daemon (``repro loadgen``).

The measurement half of the sharded tier: a closed-loop harness that
drives a running daemon with ``concurrency`` client threads, each
issuing requests back-to-back until the request budget is spent, and
reports throughput, latency percentiles, and the rejection rate.  The
benchmark suite (``benchmarks/test_bench_serve_load.py``) uses it to
compare shard counts; ``repro loadgen`` exposes the same harness for
capacity planning against a real deployment (``docs/SERVING.md``).

Workloads model the cache behaviour that sharding is designed around:

``cold``
    every request is a distinct program -- all analysis, no cache;
    throughput here is pure engine bandwidth and should scale with the
    shard count;
``hot``
    all requests draw from a small working set that fits every cache --
    after the first pass this measures routing + cache-lookup overhead,
    and the consistent-hash router keeps each program's repeats on the
    shard that already holds it;
``mixed``
    alternating cold and hot requests (the realistic shape: some novel
    submissions over a popular working set).

The harness is stdlib-only and closed-loop: a thread does not issue its
next request until the previous one answered, so offered load adapts to
the daemon instead of overrunning the socket backlog, and a 503 counts
as a *rejection* (backpressure working as designed), never an error.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

from repro.server.client import ServeClient, ServerError

#: Distinct well-formed programs by index.  Each has a few branches and
#: a loop so analysis does real range propagation, and the embedded
#: constants make every index a distinct content address (cache miss).
_PROGRAM_TEMPLATE = """\
func work(n, limit) {{
  s = 0;
  for (i = 0; i < n; i = i + 1) {{
    if (i < limit) {{
      s = s + i;
    }} else {{
      s = s + {salt_a};
    }}
  }}
  return s;
}}

func main(n) {{
  if (n > {salt_b}) {{
    return work(n, {salt_a});
  }}
  if (n < 0) {{
    return 0 - n;
  }}
  return work({salt_b}, n) + {salt_c};
}}
"""


def make_program(index: int) -> str:
    """The ``index``-th corpus program (deterministic, all distinct)."""
    return _PROGRAM_TEMPLATE.format(
        salt_a=7 + (index % 23),
        salt_b=100 + index,
        salt_c=index % 13,
    )


def make_corpus(size: int, offset: int = 0) -> List[str]:
    """``size`` distinct programs starting at ``offset``."""
    return [make_program(offset + index) for index in range(size)]


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    )
    return sorted_values[rank]


def _workload_sources(
    workload: str, requests: int, hot_set: int, offset: int
) -> List[str]:
    """The request-by-request source list for one run."""
    if workload == "cold":
        return make_corpus(requests, offset=offset)
    if workload == "hot":
        corpus = make_corpus(hot_set, offset=offset)
        return [corpus[index % hot_set] for index in range(requests)]
    if workload == "mixed":
        corpus = make_corpus(hot_set, offset=offset)
        sources = []
        for index in range(requests):
            if index % 2:
                sources.append(corpus[index % hot_set])
            else:
                sources.append(make_program(offset + hot_set + index))
        return sources
    raise ValueError(f"unknown workload {workload!r} (cold, hot, mixed)")


def run_load(
    host: str,
    port: int,
    requests: int = 200,
    concurrency: int = 8,
    command: str = "predict",
    workload: str = "cold",
    hot_set: int = 8,
    corpus_offset: int = 0,
    http_timeout: float = 60.0,
) -> Dict[str, object]:
    """Drive the daemon and measure; returns the load report document.

    ``corpus_offset`` shifts the program corpus so back-to-back runs
    against a shared cache directory can choose to collide (same
    offset: warm) or not (fresh offset: cold).
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    sources = _workload_sources(workload, requests, hot_set, corpus_offset)

    lock = threading.Lock()
    next_index = 0
    latencies_ms: List[float] = []
    statuses: Dict[str, int] = {"ok": 0, "rejected": 0, "error": 0}
    cached = {"memory": 0, "disk": 0, "fresh": 0}

    def worker() -> None:
        nonlocal next_index
        client = ServeClient(host, port, timeout=http_timeout)
        while True:
            with lock:
                index = next_index
                if index >= requests:
                    return
                next_index += 1
            source = sources[index]
            started = time.perf_counter()
            try:
                response = client.analyze(
                    command, source, name=f"loadgen-{corpus_offset + index}"
                )
                outcome = "ok" if response.get("status") == "ok" else "error"
                tier = response.get("cached")
            except ServerError as error:
                outcome = "rejected" if error.status == 503 else "error"
                tier = None
            elapsed_ms = (time.perf_counter() - started) * 1000
            with lock:
                statuses[outcome] += 1
                if outcome == "ok":
                    latencies_ms.append(elapsed_ms)
                    cached[tier if tier in ("memory", "disk") else "fresh"] += 1

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{index}", daemon=True)
        for index in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - started

    latencies_ms.sort()
    completed = statuses["ok"]
    return {
        "workload": workload,
        "command": command,
        "requests": requests,
        "concurrency": concurrency,
        "hot_set": hot_set,
        "elapsed_s": round(elapsed_s, 4),
        "throughput_rps": round(completed / elapsed_s, 2) if elapsed_s else 0.0,
        "completed": completed,
        "rejected": statuses["rejected"],
        "errors": statuses["error"],
        "rejection_rate": round(statuses["rejected"] / requests, 4),
        "cached": dict(cached),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 3),
            "p90": round(percentile(latencies_ms, 0.90), 3),
            "p99": round(percentile(latencies_ms, 0.99), 3),
            "max": round(latencies_ms[-1], 3) if latencies_ms else 0.0,
            "mean": (
                round(sum(latencies_ms) / len(latencies_ms), 3)
                if latencies_ms
                else 0.0
            ),
        },
    }


def format_report(report: Dict[str, object]) -> str:
    """The human-readable summary ``repro loadgen`` prints."""
    latency = report["latency_ms"]
    lines = [
        f"workload={report['workload']} command={report['command']} "
        f"requests={report['requests']} concurrency={report['concurrency']}",
        f"throughput   {report['throughput_rps']:>10.2f} req/s "
        f"({report['completed']} ok, {report['rejected']} rejected, "
        f"{report['errors']} errors in {report['elapsed_s']}s)",
        f"latency ms   p50={latency['p50']} p90={latency['p90']} "
        f"p99={latency['p99']} max={latency['max']}",
        f"cache tiers  memory={report['cached']['memory']} "
        f"disk={report['cached']['disk']} fresh={report['cached']['fresh']}",
    ]
    return "\n".join(lines)


def dump_report(report: Dict[str, object], path: str) -> None:
    """Write the report as deterministic JSON (BENCH-file idiom)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, indent=1, sort_keys=True) + "\n")
