"""Interprocedural fuzzing: random callers invoking a generated helper.

The helper is built from the same terminating statement grammar as the
intraprocedural fuzzer and gets called with random constant arguments.
Checked properties: the module verifies, interprocedural analysis
terminates with sane probabilities, predictions exist for both
functions, and the jump-function machinery never crashes on whatever
argument ranges the generator produces.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import VRPPredictor
from repro.ir import prepare_module, verify_function
from repro.lang import compile_source
from repro.profiling.interpreter import (
    AssertionViolation,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
)

from tests.integration.test_fuzz_soundness import blocks, expressions


@st.composite
def interprocedural_programs(draw):
    helper_readable = {"p", "q"}
    helper_assignable = {"p", "q"}
    helper_body = draw(blocks(helper_readable, helper_assignable))
    helper_result = draw(expressions(helper_readable))

    arg_a = draw(st.integers(min_value=-10, max_value=10))
    arg_b = draw(st.integers(min_value=-10, max_value=10))
    arg_c = draw(st.integers(min_value=-10, max_value=10))

    main_readable = {"n"}
    main_assignable = {"n"}
    main_body = draw(blocks(main_readable, main_assignable))
    return (
        f"func helper(p, q) {{ {helper_body} return {helper_result}; }}\n"
        f"func main(n) {{ {main_body} "
        f"var r = helper({arg_a}, {arg_b}) + helper({arg_c}, n); return r; }}"
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(interprocedural_programs(), st.integers(min_value=-5, max_value=5))
def test_interprocedural_pipeline_on_random_programs(source, argument):
    module = compile_source(source)
    ssa_infos = prepare_module(module)
    for name, function in module.functions.items():
        verify_function(
            function, ssa=True, param_names=set(ssa_infos[name].param_names.values())
        )

    interpreter = Interpreter(module, max_steps=500_000, check_assertions=True)
    try:
        interpreter.run(args=[argument])
    except AssertionViolation as error:
        raise AssertionError(f"unsound assertion: {error}") from error
    except StepLimitExceeded as error:
        raise AssertionError("generated program ran away") from error
    except InterpreterError:
        pass  # arithmetic trap on some path: legal

    prediction = VRPPredictor().predict_module(module, ssa_infos)
    assert set(prediction.functions) == {"helper", "main"}
    for function_prediction in prediction.functions.values():
        assert not function_prediction.aborted
        for probability in function_prediction.branch_probability.values():
            assert 0.0 <= probability <= 1.0
