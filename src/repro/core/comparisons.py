"""Comparison probabilities between range sets.

Branch prediction in the paper is "simply consulting the value range of
the appropriate variable": the probability that ``lhs relop rhs`` holds
is computed by crossing the operands' weighted ranges, assuming an even
distribution inside each range and independence between operands --
*except* when one operand's range is symbolic in the other operand
itself (``x in [n-4:n-1]`` compared against ``n``), where the comparison
is resolved by offsets, which is exactly the paper's symbolic-range win.

Exact pair fractions are used whenever counting is cheap (arithmetic
progression intersection for ``==``, a linear sweep over the smaller
progression for orderings); wide ranges fall back to a continuous
uniform approximation.  Pairs whose bounds are incomparable contribute
*unknown* probability mass; callers decide when the unknown mass is
large enough to require heuristic fallback.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.core import counters
from repro.core.bounds import Bound
from repro.core.ranges import StridedRange
from repro.core.rangeset import RangeSet

DEFAULT_EXACT_LIMIT = 8192


class CompareOutcome:
    """Result of a probabilistic comparison.

    ``probability`` is the mass known to satisfy the predicate;
    ``unknown_mass`` is the mass whose outcome could not be determined.
    ``estimate()`` splits the unknown mass evenly (maximum entropy).
    """

    __slots__ = ("probability", "unknown_mass")

    def __init__(self, probability: float, unknown_mass: float):
        self.probability = probability
        self.unknown_mass = unknown_mass

    def estimate(self, neutral: float = 0.5) -> float:
        return min(1.0, max(0.0, self.probability + neutral * self.unknown_mass))

    def is_known(self, tolerance: float = 1e-9) -> bool:
        return self.unknown_mass <= tolerance

    def __repr__(self) -> str:
        return f"CompareOutcome(p={self.probability:.4g}, unknown={self.unknown_mass:.4g})"


def compare_sets(
    op: str,
    a: RangeSet,
    b: RangeSet,
    a_name: Optional[str] = None,
    b_name: Optional[str] = None,
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    symbol_range=None,
) -> Optional[CompareOutcome]:
    """Probability that ``a <op> b`` holds; None when either side is ⊤/⊥.

    ``a_name``/``b_name`` are the SSA names of the operands, enabling the
    correlated symbolic comparison described above.  ``symbol_range`` is
    an optional ``name -> RangeSet`` lookup: when a pair mixes absolute
    and symbolic bounds over one symbol whose own range is numeric (the
    triangular-loop case ``j in [0:i+1]`` versus ``i``), the fraction is
    computed by integrating over the symbol's distribution.
    """
    if not (a.is_set and b.is_set):
        return None
    known = 0.0
    unknown = 0.0
    for ra in a.ranges:
        for rb in b.ranges:
            counters.active().sub_operations += 1
            weight = ra.probability * rb.probability
            fraction = _pair_fraction(
                op, ra, rb, a_name, b_name, exact_limit, symbol_range
            )
            if fraction is None:
                unknown += weight
            else:
                known += weight * fraction
    return CompareOutcome(known, unknown)


# ---------------------------------------------------------------------------
# pair-level comparison
# ---------------------------------------------------------------------------


def _pair_fraction(
    op: str,
    ra: StridedRange,
    rb: StridedRange,
    a_name: Optional[str],
    b_name: Optional[str],
    exact_limit: int,
    symbol_range=None,
) -> Optional[float]:
    # Correlated comparison: a's range is expressed relative to the very
    # variable on the other side (or vice versa).
    if b_name is not None and b_name in ra.symbols():
        rb = StridedRange.symbol(rb.probability, b_name)
    elif a_name is not None and a_name in rb.symbols():
        ra = StridedRange.symbol(ra.probability, a_name)

    fraction = _dispatch_fraction(op, ra, rb, exact_limit)
    if fraction is not None:
        return fraction
    return _integrate_over_symbol(op, ra, rb, exact_limit, symbol_range)


def _dispatch_fraction(
    op: str, ra: StridedRange, rb: StridedRange, exact_limit: int
) -> Optional[float]:
    if op == "eq":
        return _fraction_eq(ra, rb, exact_limit)
    if op == "ne":
        eq = _fraction_eq(ra, rb, exact_limit)
        return None if eq is None else 1.0 - eq
    if op == "lt":
        return _fraction_lt(ra, rb, exact_limit)
    if op == "gt":
        return _fraction_lt(rb, ra, exact_limit)
    if op == "le":
        gt = _fraction_lt(rb, ra, exact_limit)
        return None if gt is None else 1.0 - gt
    if op == "ge":
        lt = _fraction_lt(ra, rb, exact_limit)
        return None if lt is None else 1.0 - lt
    raise ValueError(f"unknown comparison op {op!r}")


# How many sample points integration uses for wide symbol ranges.
_INTEGRATION_SAMPLES = 64


def _integrate_over_symbol(
    op: str,
    ra: StridedRange,
    rb: StridedRange,
    exact_limit: int,
    symbol_range,
) -> Optional[float]:
    """Average the pair fraction over a symbol's own numeric range.

    Handles mixed-basis pairs like ``j in [0 : i+1]`` compared against
    ``i`` when ``i``'s range is numeric: for each candidate value of the
    symbol both sides are instantiated (preserving the correlation) and
    the resulting numeric fractions averaged.  Values of the symbol that
    make a range empty are excluded and the remainder renormalised.
    """
    if symbol_range is None:
        return None
    symbols = ra.symbols() | rb.symbols()
    if len(symbols) != 1:
        return None
    symbol = next(iter(symbols))
    distribution = symbol_range(symbol)
    if (
        distribution is None
        or not distribution.is_set
        or not distribution.is_numeric()
    ):
        return None
    accumulated = 0.0
    valid_weight = 0.0
    for symbol_piece in distribution.ranges:
        count = symbol_piece.count()
        if count is None:
            return None
        points = _sample_points(symbol_piece, count)
        if not points:
            return None
        point_weight = symbol_piece.probability / len(points)
        for value in points:
            ra_inst = _instantiate(ra, symbol, value)
            rb_inst = _instantiate(rb, symbol, value)
            if ra_inst is None or rb_inst is None:
                continue  # symbol value makes a side empty: impossible here
            fraction = _dispatch_fraction(op, ra_inst, rb_inst, exact_limit)
            if fraction is None:
                return None
            accumulated += point_weight * fraction
            valid_weight += point_weight
    if valid_weight <= 0.0:
        return None
    return accumulated / valid_weight


def _sample_points(piece: StridedRange, count: int) -> list:
    lo = int(piece.lo.offset)
    stride = piece.stride if piece.stride else 1
    if count <= _INTEGRATION_SAMPLES:
        return [lo + i * stride for i in range(count)]
    # Evenly spaced sample across the progression.
    step = (count - 1) / (_INTEGRATION_SAMPLES - 1)
    return [lo + int(round(i * step)) * stride for i in range(_INTEGRATION_SAMPLES)]


def _instantiate(
    r: StridedRange, symbol: str, value: int
) -> Optional[StridedRange]:
    """Substitute a concrete value for the symbol in a range's bounds."""
    lo = Bound.number(value + r.lo.offset) if r.lo.symbol == symbol else r.lo
    hi = Bound.number(value + r.hi.offset) if r.hi.symbol == symbol else r.hi
    order = lo.compare(hi)
    if order is not None and order > 0:
        return None
    return StridedRange(1.0, lo, hi, r.stride)


def _decisive(ra: StridedRange, rb: StridedRange) -> Optional[float]:
    """Certain outcomes decidable from bound ordering alone (works for
    infinite and symbolic bounds)."""
    hi_lo = ra.hi.compare(rb.lo)
    if hi_lo is not None and hi_lo < 0:
        return 1.0  # every a < every b
    lo_hi = ra.lo.compare(rb.hi)
    if lo_hi is not None and lo_hi >= 0:
        return 0.0  # every a >= every b
    return None


def _fraction_lt(ra: StridedRange, rb: StridedRange, exact_limit: int) -> Optional[float]:
    decisive = _decisive(ra, rb)
    if decisive is not None:
        return decisive
    basis = _common_basis(ra, rb)
    if basis is None:
        return None
    (a_lo, a_hi, sa, na), (b_lo, b_hi, sb, nb) = basis
    if na is None or nb is None:
        return None  # unbounded overlap: no distribution to integrate
    if min(na, nb) <= exact_limit:
        if na <= nb:
            return _exact_lt_sweep(a_lo, sa, na, b_lo, sb, nb)
        gt = _exact_lt_sweep(b_lo, sb, nb, a_lo, sa, na)
        eq = _exact_eq(a_lo, a_hi, sa, na, b_lo, b_hi, sb, nb)
        return 1.0 - gt - eq
    return _continuous_lt(a_lo, a_hi, b_lo, b_hi)


def _fraction_eq(ra: StridedRange, rb: StridedRange, exact_limit: int) -> Optional[float]:
    # Disjoint ranges can never be equal.
    hi_lo = ra.hi.compare(rb.lo)
    if hi_lo is not None and hi_lo < 0:
        return 0.0
    lo_hi = ra.lo.compare(rb.hi)
    if lo_hi is not None and lo_hi > 0:
        return 0.0
    if ra.is_single() and rb.is_single():
        order = ra.lo.compare(rb.lo)
        return None if order is None else (1.0 if order == 0 else 0.0)
    basis = _common_basis(ra, rb)
    if basis is None:
        return None
    (a_lo, a_hi, sa, na), (b_lo, b_hi, sb, nb) = basis
    if na is None or nb is None:
        return None
    return _exact_eq(a_lo, a_hi, sa, na, b_lo, b_hi, sb, nb)


def _common_basis(
    ra: StridedRange, rb: StridedRange
) -> Optional[Tuple[Tuple, Tuple]]:
    """Reduce both ranges to numeric progressions over a shared basis.

    Works when all four bounds are numeric, or all carry the same symbol
    (offsets then form the progression).  Returns
    ``((lo, hi, stride, count), (lo, hi, stride, count))`` with count None
    for unbounded ranges.
    """
    symbols = ra.symbols() | rb.symbols()
    if len(symbols) > 1:
        return None
    if len(symbols) == 1:
        symbol = next(iter(symbols))
        bounds = (ra.lo, ra.hi, rb.lo, rb.hi)
        if any(b.symbol not in (symbol, None) for b in bounds):
            return None
        if any(b.symbol is None and b.is_finite() for b in bounds):
            return None  # mixing absolute numbers with symbolic offsets
    return (
        (ra.lo.offset, ra.hi.offset, ra.stride, ra.count()),
        (rb.lo.offset, rb.hi.offset, rb.stride, rb.count()),
    )


def _exact_lt_sweep(a_lo, sa, na, b_lo, sb, nb) -> float:
    """Exact P(a < b): sweep the smaller progression, count in the other."""
    if sb == 0:
        sb_count = lambda x: nb if b_lo > x else 0  # single value b_lo
    else:
        def sb_count(x):
            # number of b values strictly greater than x
            if b_lo > x:
                return nb
            le = int((x - b_lo) // sb) + 1
            return max(0, nb - min(le, nb))
    step = sa if sa else 1
    total = 0
    value = a_lo
    for _ in range(na):
        total += sb_count(value)
        value += step
    return total / (na * nb)


def _exact_eq(a_lo, a_hi, sa, na, b_lo, b_hi, sb, nb) -> float:
    """Exact P(a == b) via arithmetic-progression intersection."""
    sa_eff = sa if sa else 1
    sb_eff = sb if sb else 1
    lo = max(a_lo, b_lo)
    hi = min(a_hi, b_hi)
    if lo > hi:
        return 0.0
    g = math.gcd(sa_eff, sb_eff)
    if (b_lo - a_lo) % g != 0:
        return 0.0
    lcm = sa_eff * sb_eff // g
    first = _first_common(a_lo, sa_eff, b_lo, sb_eff, lo)
    if first is None or first > hi:
        return 0.0
    common = int((hi - first) // lcm) + 1
    return common / (na * nb)


def _first_common(a_lo, sa, b_lo, sb, at_least) -> Optional[int]:
    """Smallest value >= at_least in both progressions (CRT-style search)."""
    g = math.gcd(sa, sb)
    diff = b_lo - a_lo
    if diff % g != 0:
        return None
    lcm = sa * sb // g
    # Solve a_lo + i*sa == b_lo (mod sb): i == diff/g * inv(sa/g) (mod sb/g)
    sa_red, sb_red = sa // g, sb // g
    try:
        inverse = pow(sa_red, -1, sb_red) if sb_red > 1 else 0
    except ValueError:
        return None
    i0 = (diff // g * inverse) % sb_red if sb_red > 0 else 0
    candidate = a_lo + i0 * sa
    # candidate is the smallest common point >= a_lo; shift to >= max(b_lo, at_least)
    target = max(b_lo, at_least, a_lo)
    if candidate < target:
        steps = (target - candidate + lcm - 1) // lcm
        candidate += steps * lcm
    return int(candidate)


def _continuous_lt(a_lo, a_hi, b_lo, b_hi) -> Optional[float]:
    """P(A < B) for independent uniforms; degenerate widths handled."""
    if any(math.isinf(v) for v in (a_lo, a_hi, b_lo, b_hi)):
        return None
    wa = a_hi - a_lo
    wb = b_hi - b_lo
    if wa == 0 and wb == 0:
        return 1.0 if a_lo < b_lo else 0.0
    if wa == 0:
        return _clamp01((b_hi - a_lo) / wb)
    if wb == 0:
        return _clamp01((b_lo - a_lo) / wa)
    # Integrate P(B > x) over x uniform in [a_lo, a_hi].
    # P(B > x) is 1 for x < b_lo, 0 for x > b_hi, linear in between.
    left = max(a_lo, b_lo)
    right = min(a_hi, b_hi)
    prob = max(0.0, (min(a_hi, b_lo) - a_lo)) / wa  # region where B certainly bigger
    if right > left:
        # average of the linear section over [left, right]
        mid_lo = (b_hi - left) / wb
        mid_hi = (b_hi - right) / wb
        prob += ((mid_lo + mid_hi) / 2.0) * ((right - left) / wa)
    return _clamp01(prob)


def _clamp01(value: float) -> float:
    return min(1.0, max(0.0, value))
