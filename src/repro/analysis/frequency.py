"""Block and edge frequency propagation from branch probabilities.

The paper's applications section points at [WuLarus94]: given a
probability for every conditional branch, the expected execution
frequency of each block satisfies the flow equations

    freq(entry) = 1
    freq(b)     = sum over predecessors p of freq(p) * prob(p -> b)

which form a linear system; loops make it genuinely simultaneous (a
header's frequency is the geometric closure of its body probability).
We solve the system exactly with numpy instead of Wu–Larus's
interval-based elimination -- same fixed point, simpler code, and it
also handles irreducible graphs.  Near-certain loops (probability ~1)
are damped slightly so the matrix stays non-singular.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump

Edge = Tuple[str, str]

# Loop-continuation probabilities are clamped below 1 by this margin so
# the flow system stays solvable (an always-taken loop has no finite
# frequency).
DAMPING = 1e-9
FREQUENCY_CAP = 1e12


class FrequencyResult:
    """Block and edge frequencies relative to one function entry."""

    def __init__(self, block_frequency: Dict[str, float], edge_frequency: Dict[Edge, float]):
        self.block_frequency = block_frequency
        self.edge_frequency = edge_frequency

    def frequency(self, label: str) -> float:
        return self.block_frequency.get(label, 0.0)


def edge_probabilities(
    function: Function, branch_probability: Dict[str, float]
) -> Dict[Edge, float]:
    """Per-edge local probability: P(edge taken | block executed)."""
    out: Dict[Edge, float] = {}
    for label, block in function.blocks.items():
        term = block.terminator
        if isinstance(term, Jump):
            out[(label, term.target)] = 1.0
        elif isinstance(term, Branch):
            p = min(1.0 - DAMPING, max(DAMPING, branch_probability.get(label, 0.5)))
            if term.true_target == term.false_target:
                out[(label, term.true_target)] = 1.0
            else:
                out[(label, term.true_target)] = p
                out[(label, term.false_target)] = 1.0 - p
    return out


def propagate_frequencies(
    function: Function, branch_probability: Dict[str, float]
) -> FrequencyResult:
    """Solve the flow equations for expected block/edge frequencies."""
    cfg = CFG(function)
    labels = [label for label in cfg.reverse_postorder()]
    index = {label: i for i, label in enumerate(labels)}
    probabilities = edge_probabilities(function, branch_probability)

    n = len(labels)
    matrix = np.eye(n)
    rhs = np.zeros(n)
    entry = function.entry_label
    assert entry is not None
    rhs[index[entry]] = 1.0
    for (src, dst), p in probabilities.items():
        if src in index and dst in index:
            matrix[index[dst], index[src]] -= p * (1.0 - DAMPING)

    try:
        solution = np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
    block_frequency = {
        label: float(min(max(solution[index[label]], 0.0), FREQUENCY_CAP))
        for label in labels
    }
    edge_frequency = {
        (src, dst): block_frequency.get(src, 0.0) * p
        for (src, dst), p in probabilities.items()
        if src in index
    }
    return FrequencyResult(block_frequency, edge_frequency)


def function_frequencies(
    functions: Dict[str, Function],
    branch_probabilities: Dict[str, Dict[str, float]],
    entry: str = "main",
    max_rounds: int = 32,
) -> Dict[str, float]:
    """Whole-program function invocation frequencies.

    Iterates call-site frequencies through the call graph: a function's
    invocation frequency is the frequency-weighted sum of its call sites
    (the entry function gets 1).  Recursion converges geometrically and
    is cut off after ``max_rounds``.
    """
    from repro.ir.instructions import Call

    local: Dict[str, FrequencyResult] = {
        name: propagate_frequencies(func, branch_probabilities.get(name, {}))
        for name, func in functions.items()
    }
    call_weights: Dict[str, Dict[str, float]] = {name: {} for name in functions}
    for name, func in functions.items():
        result = local[name]
        for label, block in func.blocks.items():
            weight = result.frequency(label)
            for instr in block.instructions:
                if isinstance(instr, Call):
                    weights = call_weights[name]
                    weights[instr.callee] = weights.get(instr.callee, 0.0) + weight

    freq = {name: (1.0 if name == entry else 0.0) for name in functions}
    for _ in range(max_rounds):
        new_freq = {name: (1.0 if name == entry else 0.0) for name in functions}
        for caller, callees in call_weights.items():
            for callee, weight in callees.items():
                if callee in new_freq:
                    new_freq[callee] += freq[caller] * weight
        if all(
            abs(new_freq[name] - freq[name]) <= 1e-6 * max(1.0, freq[name])
            for name in functions
        ):
            freq = new_freq
            break
        freq = {name: min(value, FREQUENCY_CAP) for name, value in new_freq.items()}
    return freq
