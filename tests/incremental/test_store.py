"""IncrementalStore: LRU tier, disk tier, and the shared disk format."""

import json
import os

import pytest

from repro.incremental.store import IncrementalStore

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


class TestMemoryTier:
    def test_round_trip(self):
        store = IncrementalStore()
        store.put(KEY_A, {"v": 1})
        payload, tier = store.get(KEY_A)
        assert payload == {"v": 1}
        assert tier == "memory"

    def test_miss(self):
        store = IncrementalStore()
        assert store.get(KEY_A) == (None, None)
        assert store.stats()["memory"]["misses"] == 1

    def test_lru_evicts_the_coldest_entry(self):
        store = IncrementalStore(memory_entries=2)
        store.put(KEY_A, {"n": 1})
        store.put(KEY_B, {"n": 2})
        store.get(KEY_A)  # A is now hotter than B
        store.put(KEY_C, {"n": 3})
        assert store.get(KEY_B) == (None, None)
        assert store.get(KEY_A)[0] == {"n": 1}
        assert store.get(KEY_C)[0] == {"n": 3}
        assert store.stats()["memory"]["evictions"] == 1

    def test_zero_entries_disables_the_tier(self):
        store = IncrementalStore(memory_entries=0)
        store.put(KEY_A, {"n": 1})
        assert store.get(KEY_A) == (None, None)
        assert store.stats()["memory"]["entries"] == 0

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            IncrementalStore(memory_entries=-1)

    def test_put_copies_the_payload(self):
        store = IncrementalStore()
        payload = {"n": 1}
        store.put(KEY_A, payload)
        payload["n"] = 99
        assert store.get(KEY_A)[0] == {"n": 1}


class TestDiskTier:
    def test_survives_a_process_restart(self, tmp_path):
        first = IncrementalStore(disk_dir=str(tmp_path))
        first.put(KEY_A, {"rounds": 3})
        fresh = IncrementalStore(disk_dir=str(tmp_path))
        payload, tier = fresh.get(KEY_A)
        assert payload == {"rounds": 3}
        assert tier == "disk"
        # Promoted into memory: the next lookup is a memory hit.
        assert fresh.get(KEY_A)[1] == "memory"

    def test_sharded_path_layout(self, tmp_path):
        store = IncrementalStore(disk_dir=str(tmp_path))
        store.put(KEY_A, {"n": 1})
        path = tmp_path / KEY_A[:2] / f"{KEY_A}.json"
        assert path.is_file()
        assert json.loads(path.read_text()) == {"n": 1}

    def test_disk_format_matches_the_server_result_cache(self, tmp_path):
        # The serve tier and the CLI may point at the same directory
        # tree; both caches must write byte-identical files for the
        # same (key, payload).
        from repro.server.cache import ResultCache

        payload = {"output": "x\n", "zeta": 1, "alpha": [2, {"b": 3}]}
        IncrementalStore(disk_dir=str(tmp_path / "inc")).put(KEY_A, payload)
        ResultCache(disk_dir=str(tmp_path / "srv")).put(KEY_A, payload)
        inc_file = tmp_path / "inc" / KEY_A[:2] / f"{KEY_A}.json"
        srv_file = tmp_path / "srv" / KEY_A[:2] / f"{KEY_A}.json"
        assert inc_file.read_bytes() == srv_file.read_bytes()

    def test_corrupt_entry_is_a_miss_and_is_dropped(self, tmp_path):
        store = IncrementalStore(disk_dir=str(tmp_path))
        store.put(KEY_A, {"n": 1})
        path = tmp_path / KEY_A[:2] / f"{KEY_A}.json"
        path.write_text("{not json")
        store.clear()  # force the disk read
        assert store.get(KEY_A) == (None, None)
        assert store.stats()["disk"]["errors"] == 1
        assert not path.exists()

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        store = IncrementalStore(disk_dir=str(tmp_path))
        path = tmp_path / KEY_A[:2]
        os.makedirs(path, exist_ok=True)
        (path / f"{KEY_A}.json").write_text("[1, 2]")
        assert store.get(KEY_A) == (None, None)
        assert store.stats()["disk"]["errors"] == 1

    def test_clear_keeps_the_disk_tier(self, tmp_path):
        store = IncrementalStore(disk_dir=str(tmp_path))
        store.put(KEY_A, {"n": 1})
        store.clear()
        payload, tier = store.get(KEY_A)
        assert payload == {"n": 1}
        assert tier == "disk"

    def test_no_temp_files_left_behind(self, tmp_path):
        store = IncrementalStore(disk_dir=str(tmp_path))
        for key in (KEY_A, KEY_B, KEY_C):
            store.put(key, {"k": key})
        leftovers = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestCounters:
    def test_stats_shape(self):
        stats = IncrementalStore().stats()
        assert set(stats) == {
            "memory", "disk", "stores", "function_hits", "function_misses"
        }
        assert set(stats["memory"]) == {"hits", "misses", "evictions", "entries"}
        assert set(stats["disk"]) == {"hits", "misses", "errors", "enabled"}
        assert stats["disk"]["enabled"] is False

    def test_function_accounting(self):
        store = IncrementalStore()
        store.note_functions(hits=3, misses=1)
        store.note_functions(hits=2)
        stats = store.stats()
        assert stats["function_hits"] == 5
        assert stats["function_misses"] == 1

    def test_tier_counters_track_lookups(self, tmp_path):
        store = IncrementalStore(disk_dir=str(tmp_path))
        store.get(KEY_A)                     # memory miss + disk miss
        store.put(KEY_A, {"n": 1})
        store.get(KEY_A)                     # memory hit
        store.clear()
        store.get(KEY_A)                     # memory miss + disk hit
        stats = store.stats()
        assert stats["memory"] == {
            "hits": 1, "misses": 2, "evictions": 0, "entries": 1
        }
        assert stats["disk"] == {
            "hits": 1, "misses": 1, "errors": 0, "enabled": True
        }
        assert stats["stores"] == 1
