"""Quickstart: the paper's worked example, end to end.

Compiles the Figure 2 program, runs value range propagation, and prints
the Figure 4 results: final value ranges and branch probabilities
(91% / 20% / 30%).

Run:  python examples/quickstart.py
"""

from repro.core.propagation import analyse_function
from repro.ir import format_function, prepare_for_analysis
from repro.lang import compile_source

PAPER_FIGURE_2 = """
func main(n) {
  var y = 0;
  for (x = 0; x < 10; x = x + 1) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { n = n + 1; }      // "Block A": executed 30% of the time
  }
  return n;
}
"""


def main() -> None:
    module = compile_source(PAPER_FIGURE_2)
    function = module.function("main")
    ssa_info = prepare_for_analysis(function)

    print("=== SSA form with assertions (the paper's Figure 3) ===")
    print(format_function(function, show_preds=True))

    prediction = analyse_function(function, ssa_info)

    print()
    print("=== Value ranges (the paper's Figure 4) ===")
    for name in sorted(prediction.values):
        if name.startswith(("x.", "y.")):
            print(f"  {name:6s} {prediction.values[name]}")

    print()
    print("=== Branch probabilities ===")
    for label, probability in sorted(prediction.branch_probability.items()):
        block = function.block(label)
        condition = block.instructions[-2]
        print(f"  {label:8s} {condition!r:36s} -> {probability:6.1%} taken")

    print()
    print("The paper reports: x1<10 at 91%, x2>7 at 20%, y2==1 at 30%.")


if __name__ == "__main__":
    main()
