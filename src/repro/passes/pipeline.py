"""The pass manager: registry, named pipelines, and the scheduler.

:class:`PassPipeline` runs a sequence of passes over a prepared module
with a shared :class:`~repro.passes.cache.AnalysisCache`:

* analyses are computed on demand and reused until a mutating pass
  drops them (everything outside its ``preserves`` set);
* IR verification (``VRPConfig.verify_ir``) runs **once** per mutating
  pass per touched function -- the free functions' internal
  :func:`~repro.opt._verify.verify_after` calls are deferred while a
  pass runs and flushed by the manager afterwards;
* each pass runs under a tracer span (``pass:<name>``) bracketed by
  ``pass.begin``/``pass.end`` events, and its wall time and cache
  traffic land in metrics schema v4 (:meth:`PipelineResult.passes_metrics`).

Registered passes (``repro opt --list-passes``) live in
:mod:`repro.passes.library`; named pipelines in :data:`PIPELINES`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.core.config import VRPConfig
from repro.ir.function import Module
from repro.opt import _verify
from repro.passes.base import FunctionPass, ModulePass, Pass, PassResult, as_result
from repro.passes.cache import AnalysisCache

#: name -> Pass subclass, populated by the :func:`register_pass`
#: decorator on import of :mod:`repro.passes.library`.
PASS_REGISTRY: Dict[str, Type[Pass]] = {}

#: The named pipelines ``repro opt --pipeline`` accepts.  ``optimize``
#: mirrors the free-function reference sequence
#: (``tests/integration/test_optimization_pipeline.py``): one
#: prediction up front, then constant/copy folds that keep it live,
#: branch folding, and a dead-code sweep.
PIPELINES: Dict[str, Tuple[str, ...]] = {
    "predict": ("predict",),
    "optimize": ("fold-constants", "fold-copies", "fold-branches", "dce"),
    "diagnose": ("diagnose",),
}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator: add a Pass subclass to the registry by name."""
    name = cls.name
    existing = PASS_REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate pass name {name!r}")
    PASS_REGISTRY[name] = cls
    return cls


def _ensure_registered() -> None:
    import repro.passes.library  # noqa: F401  (registration side effect)


def available_passes() -> List[str]:
    """Registered pass names, sorted."""
    _ensure_registered()
    return sorted(PASS_REGISTRY)


def create_pass(name: str) -> Pass:
    """Instantiate a registered pass by name."""
    _ensure_registered()
    try:
        return PASS_REGISTRY[name]()
    except KeyError:
        known = ", ".join(available_passes())
        raise KeyError(f"unknown pass {name!r} (available: {known})") from None


def parse_passes(spec: str) -> List[str]:
    """Split a ``--passes a,b,c`` spec into pass names."""
    names = [part.strip() for part in spec.split(",") if part.strip()]
    if not names:
        raise ValueError("empty pass list")
    return names


@dataclass
class PassRun:
    """One pass execution: timing, effect, and cache traffic."""

    name: str
    seconds: float = 0.0
    changed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    invalidated: int = 0
    data: object = None

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "seconds": self.seconds,
            "changed": self.changed,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "invalidations": self.invalidated,
            },
        }


@dataclass
class PipelineResult:
    """Everything one :meth:`PassPipeline.run` produced."""

    module: Module
    cache: AnalysisCache
    runs: List[PassRun] = field(default_factory=list)

    @property
    def changed(self) -> int:
        return sum(run.changed for run in self.runs)

    def run_of(self, name: str) -> Optional[PassRun]:
        """The last run of the named pass, if it executed."""
        for run in reversed(self.runs):
            if run.name == name:
                return run
        return None

    def data_of(self, name: str):
        run = self.run_of(name)
        return run.data if run is not None else None

    def passes_metrics(self) -> dict:
        """The ``passes`` block of metrics schema v4."""
        return {
            "pipeline": [run.name for run in self.runs],
            "runs": [run.as_dict() for run in self.runs],
            "analyses": self.cache.stats(),
        }


class PassPipeline:
    """An ordered pass sequence sharing one analysis cache."""

    def __init__(
        self,
        passes: Sequence[Union[str, Pass]],
        config: Optional[VRPConfig] = None,
        name: str = "custom",
    ):
        self.passes: List[Pass] = [
            create_pass(item) if isinstance(item, str) else item for item in passes
        ]
        self.config = config or VRPConfig()
        #: Pipeline label used for the ``pipeline:<name>`` span.
        self.name = name

    @classmethod
    def named(
        cls, pipeline: str, config: Optional[VRPConfig] = None
    ) -> "PassPipeline":
        try:
            names = PIPELINES[pipeline]
        except KeyError:
            known = ", ".join(sorted(PIPELINES))
            raise KeyError(
                f"unknown pipeline {pipeline!r} (available: {known})"
            ) from None
        return cls(names, config=config, name=pipeline)

    def run(
        self,
        module: Module,
        ssa_infos: Optional[dict] = None,
        cache: Optional[AnalysisCache] = None,
    ) -> PipelineResult:
        """Run every pass in order over a prepared (SSA) module."""
        from repro.observability import tracer as tracing

        if cache is None:
            cache = AnalysisCache(module, ssa_infos, config=self.config)
        tracer = tracing.active()
        result = PipelineResult(module=module, cache=cache)
        with tracer.span(f"pipeline:{self.name}"):
            self._run_passes(module, cache, tracer, result)
        return result

    def _run_passes(self, module, cache, tracer, result) -> None:
        from repro.observability.events import PassBegin, PassEnd

        for pass_ in self.passes:
            tracer.emit(PassBegin(pass_name=pass_.name, mutates=pass_.mutates))
            hits0 = sum(cache.hits.values())
            misses0 = sum(cache.misses.values())
            start = time.perf_counter()
            with tracer.span(f"pass:{pass_.name}"):
                pass_result = self._run_pass(pass_, module, cache)
                invalidated = 0
                if pass_.mutates and pass_result.changed:
                    invalidated = cache.invalidate(pass_.preserves)
            seconds = time.perf_counter() - start
            run = PassRun(
                name=pass_.name,
                seconds=seconds,
                changed=pass_result.changed,
                cache_hits=sum(cache.hits.values()) - hits0,
                cache_misses=sum(cache.misses.values()) - misses0,
                invalidated=invalidated,
                data=pass_result.data,
            )
            result.runs.append(run)
            tracer.emit(
                PassEnd(
                    pass_name=pass_.name,
                    changed=pass_result.changed,
                    seconds=seconds,
                    cache_hits=run.cache_hits,
                    cache_misses=run.cache_misses,
                    invalidated=invalidated,
                )
            )

    # -- internals ------------------------------------------------------------

    def _run_pass(self, pass_: Pass, module: Module, cache: AnalysisCache):
        """Run one pass, verifying each touched function exactly once.

        The free functions the library passes wrap call ``verify_after``
        themselves after every rewrite; running under
        :func:`repro.opt._verify.deferred` turns those into recordings,
        and the single flush below replays them (plus any functions the
        pass reported in ``touched``) once, under this pass's name.
        """
        if not pass_.mutates:
            return self._dispatch(pass_, module, cache)
        with _verify.deferred() as pending:
            pass_result = self._dispatch(pass_, module, cache)
            for name in pass_result.touched:
                function = module.functions.get(name)
                if function is not None and id(function) not in pending:
                    pending[id(function)] = function
            _verify.flush_deferred(
                pending, pass_.name, enabled=self.config.verify_ir
            )
        return pass_result

    def _dispatch(
        self, pass_: Pass, module: Module, cache: AnalysisCache
    ) -> PassResult:
        if isinstance(pass_, ModulePass):
            return as_result(pass_.run_on_module(module, cache))
        if not isinstance(pass_, FunctionPass):
            raise TypeError(f"{pass_!r} is neither a FunctionPass nor a ModulePass")
        total = PassResult(data={})
        for name, function in list(module.functions.items()):
            partial = as_result(pass_.run_on_function(function, cache))
            total.changed += partial.changed
            if partial.changed:
                total.touched.add(name)
            total.touched |= partial.touched
            if partial.data is not None:
                total.data[name] = partial.data
        if not total.data:
            total.data = None
        return total


def run_pipeline(
    module: Module,
    ssa_infos: Optional[dict] = None,
    pipeline: str = "predict",
    passes: Optional[Sequence[Union[str, Pass]]] = None,
    config: Optional[VRPConfig] = None,
) -> PipelineResult:
    """One-call convenience: run a named pipeline or an explicit list."""
    if passes is not None:
        manager = PassPipeline(passes, config=config)
    else:
        manager = PassPipeline.named(pipeline, config=config)
    return manager.run(module, ssa_infos)
