"""Natural loop detection from back edges.

A back edge ``latch -> header`` (identified by DFS, consistent with the
propagation engine) defines a natural loop: the header plus every block
that reaches the latch without passing through the header.  Loops with
the same header are merged.  Used by the heuristic predictors (loop
branch / loop exit / loop header heuristics) and by code layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import CFG
from repro.ir.function import Function


class Loop:
    """One natural loop: header, body blocks, latches, and exit edges."""

    def __init__(self, header: str):
        self.header = header
        self.blocks: Set[str] = {header}
        self.latches: Set[str] = set()

    def contains(self, label: str) -> bool:
        return label in self.blocks

    def exit_edges(self, cfg: CFG) -> List[tuple]:
        """Edges leaving the loop (src inside, dst outside)."""
        out = []
        for label in self.blocks:
            for succ in cfg.successors[label]:
                if succ not in self.blocks:
                    out.append((label, succ))
        return out

    def __repr__(self) -> str:
        return f"Loop(header={self.header!r}, blocks={len(self.blocks)})"


class LoopInfo:
    """All natural loops of a function, with membership queries."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loops: Dict[str, Loop] = {}
        self._build()
        self._membership: Dict[str, List[Loop]] = {}
        for loop in self.loops.values():
            for label in loop.blocks:
                self._membership.setdefault(label, []).append(loop)

    @classmethod
    def for_function(cls, function: Function) -> "LoopInfo":
        return cls(CFG(function))

    def _build(self) -> None:
        for latch, header in self.cfg.back_edges:
            loop = self.loops.get(header)
            if loop is None:
                loop = Loop(header)
                self.loops[header] = loop
            loop.latches.add(latch)
            # Walk predecessors back from the latch up to the header.
            worklist = [latch]
            while worklist:
                label = worklist.pop()
                if label in loop.blocks:
                    continue
                loop.blocks.add(label)
                worklist.extend(self.cfg.predecessors[label])

    # -- queries -----------------------------------------------------------

    def is_header(self, label: str) -> bool:
        return label in self.loops

    def loops_containing(self, label: str) -> List[Loop]:
        return self._membership.get(label, [])

    def innermost(self, label: str) -> Optional[Loop]:
        candidates = self.loops_containing(label)
        if not candidates:
            return None
        return min(candidates, key=lambda loop: len(loop.blocks))

    def depth(self, label: str) -> int:
        return len(self.loops_containing(label))

    def in_same_loop(self, a: str, b: str) -> bool:
        loop = self.innermost(a)
        return loop is not None and loop.contains(b)
