"""``--jobs N`` determinism: a process pool must not change any output.

Both the harness-level ``run_suite`` fan-out and the ``repro check``
CLI fan-out are compared against their sequential runs: evaluation
records, rendered reports (byte-for-byte), and the aggregated tracer
event counters all have to match exactly.
"""

import json
from collections import Counter

import pytest

from repro.cli import main
from repro.evalharness import evaluate_suite, run_suite
from repro.workloads import get_workload

SMALL_SUITE = ["histogram", "minmax", "rle"]


@pytest.fixture(scope="module")
def small_workloads():
    return [get_workload(name) for name in SMALL_SUITE]


class TestRunSuiteParallel:
    def test_jobs_do_not_change_records(self, small_workloads):
        sequential, _ = run_suite(small_workloads, "small", jobs=1)
        parallel, _ = run_suite(small_workloads, "small", jobs=2)
        assert [e.workload.name for e in sequential.evaluations] == [
            e.workload.name for e in parallel.evaluations
        ]
        for seq, par in zip(sequential.evaluations, parallel.evaluations):
            assert seq.records == par.records

    def test_jobs_do_not_change_metrics_payload(self, small_workloads):
        _, sequential = run_suite(
            small_workloads, "small", jobs=1, with_metrics=True
        )
        _, parallel = run_suite(
            small_workloads, "small", jobs=2, with_metrics=True
        )

        def stable(report):
            # Wall-clock phase timings and cache hit rates legitimately
            # vary run to run; everything else must match exactly.
            out = dict(report)
            out.pop("phases", None)
            out.pop("perf", None)
            out["meta"] = {
                key: value
                for key, value in report["meta"].items()
                if key != "dropped_events"
            }
            return out

        assert [stable(r) for r in sequential] == [stable(r) for r in parallel]

    def test_custom_predictors_require_sequential(self, small_workloads):
        predictors = {"zero": lambda prepared: {}}
        with pytest.raises(ValueError):
            evaluate_suite(small_workloads, "small", predictors=predictors, jobs=2)
        # jobs=1 accepts the same callables.
        evaluation = evaluate_suite(
            small_workloads[:1], "small", predictors=predictors, jobs=1
        )
        assert "zero" in evaluation.evaluations[0].records


class TestCheckCliParallel:
    @pytest.fixture()
    def toy_files(self, tmp_path):
        paths = []
        for name in SMALL_SUITE:
            path = tmp_path / f"{name}.toy"
            path.write_text(get_workload(name).source)
            paths.append(str(path))
        return paths

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_reports_byte_identical_across_job_counts(
        self, toy_files, tmp_path, fmt, capsys
    ):
        outputs = {}
        events = {}
        for jobs in (1, 2, 4):
            out_dir = tmp_path / f"out-jobs{jobs}"
            metrics_dir = tmp_path / f"metrics-jobs{jobs}"
            code = main(
                [
                    "check",
                    *toy_files,
                    "--format",
                    fmt,
                    "--output-dir",
                    str(out_dir),
                    "--emit-metrics",
                    str(metrics_dir),
                    "--jobs",
                    str(jobs),
                    "--fail-on",
                    "never",
                ]
            )
            capsys.readouterr()
            assert code == 0
            outputs[jobs] = {
                path.name: path.read_bytes()
                for path in sorted(out_dir.iterdir())
            }
            aggregated: Counter = Counter()
            for path in sorted(metrics_dir.glob("*.metrics.json")):
                meta = json.loads(path.read_text())["meta"]
                aggregated.update(meta.get("event_counts", {}))
            events[jobs] = aggregated
        assert outputs[1].keys() == {f"{name}.{fmt}" for name in SMALL_SUITE}
        assert outputs[1] == outputs[2] == outputs[4]
        assert events[1] == events[2] == events[4]

    def test_duplicate_stems_are_rejected(self, tmp_path, capsys):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir()
        b.mkdir()
        source = get_workload("minmax").source
        (a / "same.toy").write_text(source)
        (b / "same.toy").write_text(source)
        with pytest.raises(SystemExit, match="duplicate output stem"):
            main(
                [
                    "check",
                    str(a / "same.toy"),
                    str(b / "same.toy"),
                    "--output-dir",
                    str(tmp_path / "out"),
                ]
            )
