"""Content-addressed result cache with memory and disk tiers.

A result is addressed by the SHA-256 of everything that can change it:
the program text, the command, its validated options, the display name
(it appears verbatim in check reports), and the
:func:`repro.core.perf.fingerprint.config_fingerprint` of the engine
configuration (which is itself salted with the package version, so an
engine upgrade invalidates the whole cache instead of serving stale
results).  Behaviour-neutral knobs -- the perf layer, the sanitizer, IR
verification -- are *excluded* from the key: a cache warmed with
``--no-perf`` still hits with the layer on.

Two tiers:

* **memory** -- a bounded LRU mapping ``key -> payload``; fastest, lost
  on restart;
* **disk** -- one JSON file per key under ``<dir>/<key[:2]>/<key>.json``
  written atomically (temp file + ``os.replace``), so warm results
  survive restarts and a crashed writer never leaves a half-written
  entry.  A disk hit is promoted into the memory tier.

Only *deterministic* payloads belong here: the service never caches a
degraded (timed-out) response, because degradation is a property of the
moment, not of the content address.  Cached payloads are byte-identical
to fresh computations by construction -- the cache stores the response
core verbatim and the tiers only change where it is read from.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.config import VRPConfig
from repro.core.perf.fingerprint import config_fingerprint


def request_key(
    command: str,
    source: str,
    name: str,
    options: Dict[str, object],
    config: VRPConfig,
) -> str:
    """The content address of one request's result."""
    payload = json.dumps(
        {
            "command": command,
            "source": source,
            "name": name,
            "options": options,
            "config": config_fingerprint(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Thread-safe two-tier (memory over disk) result cache.

    ``memory_entries`` bounds the LRU tier; ``disk_dir`` of ``None``
    disables the disk tier entirely (the daemon's ``--no-disk-cache``).
    """

    def __init__(
        self,
        memory_entries: int = 1024,
        disk_dir: Optional[str] = None,
    ):
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.memory_entries = memory_entries
        self.disk_dir = disk_dir
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self._stats = {
            "memory": {"hits": 0, "misses": 0, "evictions": 0},
            "disk": {"hits": 0, "misses": 0, "errors": 0},
            "stores": 0,
        }
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """Return ``(payload, tier)``; ``(None, None)`` on a full miss."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self._stats["memory"]["hits"] += 1
                return dict(payload), "memory"
            self._stats["memory"]["misses"] += 1
            if self.disk_dir is None:
                return None, None
            payload = self._read_disk(key)
            if payload is None:
                self._stats["disk"]["misses"] += 1
                return None, None
            self._stats["disk"]["hits"] += 1
            self._remember(key, payload)
            return dict(payload), "disk"

    def put(self, key: str, payload: dict) -> None:
        """Store a deterministic payload in both tiers."""
        with self._lock:
            self._stats["stores"] += 1
            self._remember(key, dict(payload))
            if self.disk_dir is not None:
                self._write_disk(key, payload)

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is left alone)."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> dict:
        """A serialisable copy of the per-tier counters."""
        with self._lock:
            out = {
                "memory": dict(self._stats["memory"]),
                "disk": dict(self._stats["disk"]),
                "stores": self._stats["stores"],
            }
            out["memory"]["entries"] = len(self._memory)
            out["disk"]["enabled"] = self.disk_dir is not None
            return out

    # -- internals -----------------------------------------------------------

    def _remember(self, key: str, payload: dict) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._stats["memory"]["evictions"] += 1

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, key[:2], f"{key}.json")

    def _read_disk(self, key: str) -> Optional[dict]:
        path = self._disk_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A corrupt or unreadable entry is a miss; drop it so the
            # next store rewrites it cleanly.
            self._stats["disk"]["errors"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if not isinstance(payload, dict):
            self._stats["disk"]["errors"] += 1
            return None
        return payload

    def _write_disk(self, key: str, payload: dict) -> None:
        path = self._disk_path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix=f".{key[:8]}-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # Disk trouble degrades the cache to memory-only for this
            # entry; serving correctness never depends on the disk tier.
            self._stats["disk"]["errors"] += 1
