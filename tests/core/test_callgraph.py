"""Call graph tests."""

from repro.core.callgraph import CallGraph
from repro.lang import compile_source


def graph_of(source):
    return CallGraph(compile_source(source))


class TestStructure:
    def test_callees_and_callers(self):
        graph = graph_of(
            """
            func a() { return b() + c(); }
            func b() { return c(); }
            func c() { return 1; }
            func main(n) { return a(); }
            """
        )
        assert graph.callees["a"] == {"b", "c"}
        assert graph.callers["c"] == {"a", "b"}
        assert graph.callers["main"] == set()

    def test_call_sites_enumerated(self):
        graph = graph_of(
            """
            func f(x) { return x; }
            func main(n) { return f(1) + f(2); }
            """
        )
        sites = graph.sites_of_callee("f")
        assert len(sites) == 2
        assert all(site.caller == "main" for site in sites)

    def test_sites_in_caller(self):
        graph = graph_of(
            """
            func f(x) { return x; }
            func g(x) { return f(x); }
            func main(n) { return g(n); }
            """
        )
        assert len(graph.sites_in_caller("g")) == 1
        assert graph.sites_in_caller("f") == []


class TestSCCs:
    def test_bottom_up_order(self):
        graph = graph_of(
            """
            func leaf() { return 1; }
            func mid() { return leaf(); }
            func main(n) { return mid(); }
            """
        )
        order = graph.bottom_up_order()
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_self_recursion_detected(self):
        graph = graph_of(
            """
            func f(n) { if (n > 0) { return f(n - 1); } return 0; }
            func main(n) { return f(n); }
            """
        )
        assert graph.is_recursive("f")
        assert not graph.is_recursive("main")

    def test_mutual_recursion_single_scc(self):
        graph = graph_of(
            """
            func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            func main(n) { return even(n); }
            """
        )
        sccs = graph.sccs()
        component = next(c for c in sccs if "even" in c)
        assert sorted(component) == ["even", "odd"]
        assert graph.is_recursive("even")
        assert graph.is_recursive("odd")

    def test_all_functions_covered_once(self):
        graph = graph_of(
            """
            func a() { return 1; }
            func b() { return a(); }
            func main(n) { return a() + b(); }
            """
        )
        order = graph.bottom_up_order()
        assert sorted(order) == ["a", "b", "main"]
