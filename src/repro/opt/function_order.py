"""Frequency-driven function ordering (paper §6, "coagulation" order).

"Optimizations can then be applied in descending order of execution
frequency.  This is particularly effective for optimizations which
allocate a limited resource" -- and the same order is the classic
function-layout order for instruction caches.

The frequencies come from predicted branch probabilities alone
(:func:`repro.analysis.frequency.function_frequencies`), no profile.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.frequency import function_frequencies
from repro.core.interprocedural import ModulePrediction
from repro.ir.function import Module


def function_order(
    module: Module,
    prediction: ModulePrediction,
    entry: str = "main",
) -> List[Tuple[str, float]]:
    """Functions with predicted invocation frequencies, hottest first.

    Ties break toward call-graph order (callers before callees) so the
    result is deterministic.
    """
    branch_probabilities: Dict[str, Dict[str, float]] = {
        name: dict(function_prediction.branch_probability)
        for name, function_prediction in prediction.functions.items()
    }
    for name in module.functions:
        branch_probabilities.setdefault(name, {})
    frequencies = function_frequencies(
        module.functions, branch_probabilities, entry=entry
    )
    ordered = sorted(
        frequencies.items(), key=lambda item: (-item[1], item[0] != entry, item[0])
    )
    return ordered


def allocation_priority(
    module: Module,
    prediction: ModulePrediction,
    entry: str = "main",
) -> List[str]:
    """Just the names, hottest first -- feed to resource allocators."""
    return [name for name, _ in function_order(module, prediction, entry=entry)]
