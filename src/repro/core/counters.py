"""Work counters used to reproduce Figures 5 and 6.

The paper plots the number of *expression evaluations* (Figure 5) and
*evaluation sub-operations* (Figure 6) against program size to establish
linear behaviour in practice.  An "expression evaluation" is one
(re-)evaluation of an SSA expression or phi by the propagation engine; a
"sub-operation" is one pairwise range operation inside such an
evaluation (the paper notes up to R^2 sub-operations per evaluation).

The propagation engine installs its own :class:`Counters` with
:func:`use`, and the range algebra increments whatever is active via
:func:`active` -- no plumbing through every arithmetic helper.  The
active counters live in a :class:`contextvars.ContextVar` (not a module
global), so concurrent engines in different threads or tasks each tally
into their own instance; :mod:`repro.observability.tracer` reuses the
same pattern.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator


class Counters:
    """Mutable tally of analysis work."""

    __slots__ = (
        "expr_evaluations",
        "phi_evaluations",
        "sub_operations",
        "flow_edges_processed",
        "ssa_edges_processed",
        "derivations_attempted",
        "derivations_succeeded",
        "heuristic_fallbacks",
        "interprocedural_round_caps",
        "flow_pushes",
        "ssa_pushes",
        "flow_dedup_hits",
        "ssa_dedup_hits",
    )

    def __init__(self) -> None:
        self.expr_evaluations = 0
        self.phi_evaluations = 0
        self.sub_operations = 0
        self.flow_edges_processed = 0
        self.ssa_edges_processed = 0
        self.derivations_attempted = 0
        self.derivations_succeeded = 0
        self.heuristic_fallbacks = 0
        # Times the interprocedural fixed point hit its round cap while a
        # recursive SCC was still changing (results frozen, not converged).
        self.interprocedural_round_caps = 0
        # Worklist pressure: pushes actually enqueued versus requests
        # swallowed because the item was already pending (deduplication).
        self.flow_pushes = 0
        self.ssa_pushes = 0
        self.flow_dedup_hits = 0
        self.ssa_dedup_hits = 0

    def merge(self, other: "Counters") -> None:
        for field in self.__slots__:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"Counters({inner})"


# Fallback sink for tallies made outside any use() block.  Per-context
# installation goes through the ContextVar so threads/tasks don't race.
_DEFAULT = Counters()

_ACTIVE: contextvars.ContextVar[Counters] = contextvars.ContextVar("repro-counters")


def active() -> Counters:
    """The counters currently receiving tallies."""
    return _ACTIVE.get(_DEFAULT)


@contextmanager
def use(counters: Counters) -> Iterator[Counters]:
    """Route tallies to ``counters`` for the duration of the block."""
    token = _ACTIVE.set(counters)
    try:
        yield counters
    finally:
        _ACTIVE.reset(token)
