"""Sharded serving front end: a non-blocking selector event loop.

This is the scale-out face of ``repro serve``.  Where the original
daemon (:mod:`repro.server.httpd`) spends a thread per connection and a
GIL-capped thread pool on analysis, this front end runs **one**
event-loop thread that only ever accepts sockets, parses HTTP, routes,
and writes responses -- all the CPU work happens in N shard *processes*
(:mod:`repro.server.shard`), so analysis throughput scales with cores
instead of saturating at one.

Routing is by content address: the front end computes the same
:func:`repro.server.service.request_identity` key the caches use and
feeds it to the consistent-hash ring (:mod:`repro.server.router`), so a
repeat submission always lands on the shard whose memory LRU and perf
caches already hold it, and the shared on-disk cache tier picks up the
rest across restarts.

The public contracts of the single-process daemon hold unchanged:

* **byte identity** -- shards run the same :class:`AnalysisService`
  over the same renderer, so a served response equals the one-shot CLI
  output at every shard count (CI-gated);
* **backpressure** -- each shard has a bounded front-end queue
  (``queue_size``); a request routed to a full shard answers 503 with a
  ``Retry-After`` computed from queue depth and observed drain rate,
  and a batch enqueues atomically against all its target shards or
  fails 503 as a unit;
* **deadline degradation** -- per-request timeouts live in the service,
  inside each shard, exactly as before;
* **drain** -- SIGTERM stops the accept loop, lets every dispatched
  request finish and flush, then collects *every* shard process before
  exiting.

HTTP handling is deliberately minimal: HTTP/1.0, one request per
connection, ``Content-Length`` required on POST -- the same wire
behaviour ``ThreadingHTTPServer`` gave the original daemon, now without
a thread per socket.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.observability import context as tracecontext
from repro.observability.events import ServerRequestBegin, ServerRequestEnd
from repro.observability.logging import get_logger, log_event
from repro.observability.tracer import SpanRecord, Tracer
from repro.server.protocol import ProtocolError, error_response, validate_batch
from repro.server.router import HashRing
from repro.server.service import request_identity
from repro.server.shard import ShardHandle
from repro.server.stats import ServerStats

#: POST route -> pinned command (None = the body decides); mirrors httpd.
from repro.server.httpd import MAX_RETAINED_SPANS, POST_ROUTES

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest accepted request head (request line + headers).
MAX_HEAD_BYTES = 32_768

#: Requests allowed into a shard's pipe at once.  One: the shard is
#: either analysing the message it already read or blocked in recv(),
#: so a send from the event loop never blocks on a full pipe buffer;
#: the rest of the shard's bounded queue waits in the front end.
PIPE_WINDOW = 1


class _ClientConn:
    """Per-socket state for the event loop."""

    __slots__ = (
        "sock", "inbuf", "outbuf", "out_offset", "state", "method",
        "path", "headers", "body_length", "started", "trace_id", "closed",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf: Optional[bytes] = None
        self.out_offset = 0
        self.state = "head"  # head -> body -> wait -> write
        self.method = ""
        self.path = ""
        self.headers: Dict[str, str] = {}
        self.body_length = 0
        self.started = 0.0
        self.trace_id: Optional[str] = None
        self.closed = False


class _Batch:
    """One in-flight ``/v1/batch`` request fanning out across shards."""

    __slots__ = ("conn", "started", "results", "remaining")

    def __init__(self, conn: _ClientConn, started: float, size: int):
        self.conn = conn
        self.started = started
        self.results: List[Optional[dict]] = [None] * size
        self.remaining = 0


class _Pending:
    """One request dispatched to a shard, awaiting its response."""

    __slots__ = ("conn", "endpoint", "command", "started", "shard", "batch", "slot")

    def __init__(self, conn, endpoint, command, started, shard, batch=None, slot=0):
        self.conn = conn
        self.endpoint = endpoint
        self.command = command
        self.started = started
        self.shard = shard
        self.batch = batch
        self.slot = slot


class ShardedServer:
    """N shard processes behind one consistent-hash selector front end."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: Optional[int] = None,
        queue_size: int = 64,
        cache_dir: Optional[str] = None,
        memory_cache_entries: int = 1024,
        timeout_s: Optional[float] = None,
        max_request_bytes: int = 1 << 20,
        base_options: Optional[dict] = None,
        verbose: bool = False,
        ready_timeout_s: float = 120.0,
        incremental: bool = False,
    ):
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.shard_count = shards if shards else (os.cpu_count() or 1)
        self.queue_size = queue_size
        self.cache_dir = cache_dir
        self.max_request_bytes = max_request_bytes
        self.base_options = dict(base_options or {})
        self.verbose = verbose
        self.incremental = incremental
        self.draining = False
        self.started_monotonic = time.monotonic()

        settings = {
            "cache_dir": cache_dir,
            "memory_cache_entries": memory_cache_entries,
            "timeout_s": timeout_s,
            "base_options": self.base_options or None,
            "incremental": incremental,
        }
        # Shards fork/spawn *before* any server thread exists, so the
        # child processes never inherit a half-held lock.
        self.shards: List[ShardHandle] = []
        try:
            for shard_id in range(self.shard_count):
                self.shards.append(ShardHandle(shard_id, settings))
            for handle in self.shards:
                handle.wait_ready(ready_timeout_s)
        except BaseException:
            for handle in self.shards:
                try:
                    handle.shutdown(timeout_s=1.0)
                except Exception:  # pragma: no cover -- best-effort cleanup
                    pass
            raise
        self.ring = HashRing(self.shard_count)
        self._backlogs: Dict[int, Deque[dict]] = {
            handle.shard_id: deque() for handle in self.shards
        }
        self._in_pipe: Dict[int, int] = {
            handle.shard_id: 0 for handle in self.shards
        }

        self.stats = ServerStats()
        self.tracer = Tracer(record_events=False)
        self.access_log = get_logger("server.access")
        self._tracer_lock = threading.Lock()

        self._listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listen.bind((host, port))
        self._listen.listen(128)
        self._listen.setblocking(False)

        self._wakeup_r, self._wakeup_w = os.pipe()
        os.set_blocking(self._wakeup_r, False)

        self._pending: Dict[int, _Pending] = {}
        self._next_id = 0
        self._conns: Dict[socket.socket, _ClientConn] = {}
        self._selector: Optional[selectors.BaseSelector] = None
        self._stop_requested = False
        self._force_stop = False
        self._loop_running = threading.Event()
        self._drained = threading.Event()
        self._shards_collected = False

    # -- addresses -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listen.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listen.getsockname()[1]

    # -- observability (same wrappers as ReproServer) ------------------------

    def emit_event(self, event) -> None:
        with self._tracer_lock:
            self.tracer.emit(event)

    def record_span(
        self, name: str, start: float, end: float, trace_id: Optional[str] = None
    ) -> None:
        with self._tracer_lock:
            if len(self.tracer.spans) >= MAX_RETAINED_SPANS:
                return
            record = SpanRecord(
                name, start, depth=0, index=len(self.tracer.spans),
                parent=None, trace_id=trace_id,
            )
            record.end = end
            self.tracer.spans.append(record)

    def tracer_summary(self) -> dict:
        with self._tracer_lock:
            return {
                "spans": len(self.tracer.spans),
                "event_counts": dict(sorted(self.tracer.event_counts.items())),
                "dropped_events": self.tracer.dropped_events,
            }

    # -- metrics -------------------------------------------------------------

    def inflight(self) -> int:
        return sum(handle.inflight for handle in self.shards)

    def _aggregate_cache_stats(self) -> dict:
        """Shard cache counters summed into the single-daemon shape."""
        total = {
            "memory": {"hits": 0, "misses": 0, "evictions": 0, "entries": 0},
            "disk": {"hits": 0, "misses": 0, "errors": 0,
                     "enabled": self.cache_dir is not None},
            "stores": 0,
        }
        for handle in self.shards:
            cache = handle.stats_snapshot.get("cache") or {}
            for tier in ("memory", "disk"):
                for field, value in (cache.get(tier) or {}).items():
                    if isinstance(value, bool):
                        continue
                    if field in total[tier]:
                        total[tier][field] += int(value)
            total["stores"] += int(cache.get("stores", 0))
        return total

    def shard_snapshots(self) -> List[dict]:
        return [handle.snapshot() for handle in self.shards]

    def _aggregate_incremental_stats(self) -> Optional[dict]:
        """Shard summary-store counters summed into one document.

        ``None`` when the tier runs without the incremental store, so
        snapshots keep their pre-incremental shape.
        """
        if not self.incremental:
            return None
        total = {
            "memory": {"hits": 0, "misses": 0, "evictions": 0, "entries": 0},
            "disk": {"hits": 0, "misses": 0, "errors": 0,
                     "enabled": self.cache_dir is not None},
            "stores": 0,
            "function_hits": 0,
            "function_misses": 0,
        }
        for handle in self.shards:
            stats = handle.stats_snapshot.get("incremental") or {}
            for tier in ("memory", "disk"):
                for field, value in (stats.get(tier) or {}).items():
                    if isinstance(value, bool):
                        continue
                    if field in total[tier]:
                        total[tier][field] += int(value)
            for field in ("stores", "function_hits", "function_misses"):
                total[field] += int(stats.get(field, 0))
        return total

    def _server_snapshot(self) -> dict:
        return self.stats.snapshot(
            cache_stats=self._aggregate_cache_stats(),
            queue_depth=self.inflight(),
            queue_high_water=max(
                (handle.high_water for handle in self.shards), default=0
            ),
            tracer_summary=self.tracer_summary(),
            shards=self.shard_snapshots(),
            incremental=self._aggregate_incremental_stats(),
        )

    def metrics_document(self) -> dict:
        from repro.observability.metrics import MetricsReport

        with self._tracer_lock:
            phases = {
                name: {"count": timing.count, "seconds": timing.seconds}
                for name, timing in self.tracer.phase_timings().items()
            }
        report = MetricsReport(
            program="repro-serve",
            phases=phases,
            server=self._server_snapshot(),
            meta={
                "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
                "shards": self.shard_count,
                "queue_size": self.queue_size,
                "draining": self.draining,
            },
        )
        return report.to_dict()

    def prometheus_document(self) -> str:
        from repro.observability.prometheus import render_server_metrics

        return render_server_metrics(
            self._server_snapshot(),
            uptime_s=round(time.monotonic() - self.started_monotonic, 3),
            workers=self.shard_count,
        )

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until drained (usually on its own thread)."""
        selector = selectors.DefaultSelector()
        self._selector = selector
        selector.register(self._listen, selectors.EVENT_READ, ("listen", None))
        selector.register(self._wakeup_r, selectors.EVENT_READ, ("wakeup", None))
        for handle in self.shards:
            selector.register(handle.conn, selectors.EVENT_READ, ("shard", handle))
        self._loop_running.set()
        listener_open = True
        try:
            while True:
                if self._stop_requested and listener_open:
                    self.draining = True
                    selector.unregister(self._listen)
                    self._listen.close()
                    listener_open = False
                    self._close_idle_conns(selector)
                if self._force_stop:
                    break
                if self.draining and not self._pending and not self._has_unflushed():
                    break
                for key, _mask in selector.select(timeout=0.1):
                    kind, payload = key.data
                    if kind == "listen":
                        self._on_accept(selector)
                    elif kind == "wakeup":
                        try:
                            os.read(self._wakeup_r, 4096)
                        except OSError:
                            pass
                    elif kind == "shard":
                        self._on_shard_readable(selector, payload)
                    elif kind == "client":
                        self._on_client_event(selector, payload, key)
        finally:
            for conn in list(self._conns.values()):
                self._close_conn(selector, conn)
            if listener_open:
                try:
                    selector.unregister(self._listen)
                except KeyError:
                    pass
                self._listen.close()
            for handle in self.shards:
                try:
                    selector.unregister(handle.conn)
                except (KeyError, ValueError):
                    pass
            selector.close()
            self._selector = None
            # Drain collects *every* shard: sentinel, join, account.
            self._shards_collected = all(
                handle.shutdown() for handle in self.shards
            )
            self._drained.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting, finish in-flight work, collect all shards.

        Returns True when the loop drained and every shard process was
        collected inside ``timeout``.  Safe to call from any thread (the
        signal handler's thread included); idempotent.
        """
        self.draining = True
        self._stop_requested = True
        self._wake()
        if not self._loop_running.is_set():
            # serve_forever never ran: shut the shards down inline.
            if not self._drained.is_set():
                self._shards_collected = all(
                    handle.shutdown() for handle in self.shards
                )
                self._drained.set()
            return self._shards_collected
        finished = self._drained.wait(timeout=timeout)
        if not finished:
            self._force_stop = True
            self._wake()
            self._drained.wait(timeout=5.0)
        return finished and self._shards_collected

    def _wake(self) -> None:
        try:
            os.write(self._wakeup_w, b"x")
        except OSError:  # pragma: no cover -- already closed
            pass

    def _has_unflushed(self) -> bool:
        return any(conn.outbuf is not None for conn in self._conns.values())

    def _close_idle_conns(self, selector) -> None:
        """At drain start, drop connections that never sent a byte."""
        for conn in list(self._conns.values()):
            if conn.state == "head" and not conn.inbuf:
                self._close_conn(selector, conn)

    # -- socket plumbing -----------------------------------------------------

    def _on_accept(self, selector) -> None:
        while True:
            try:
                sock, _addr = self._listen.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            conn = _ClientConn(sock)
            self._conns[sock] = conn
            selector.register(sock, selectors.EVENT_READ, ("client", conn))

    def _close_conn(self, selector, conn: _ClientConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.pop(conn.sock, None)
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _on_client_event(self, selector, conn: _ClientConn, key) -> None:
        if conn.outbuf is not None:
            self._on_client_writable(selector, conn)
            return
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(selector, conn)
            return
        if not data:
            self._close_conn(selector, conn)
            return
        conn.inbuf += data
        self._advance(selector, conn)

    def _on_client_writable(self, selector, conn: _ClientConn) -> None:
        assert conn.outbuf is not None
        try:
            sent = conn.sock.send(conn.outbuf[conn.out_offset:])
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(selector, conn)
            return
        conn.out_offset += sent
        if conn.out_offset >= len(conn.outbuf):
            self._close_conn(selector, conn)

    # -- HTTP parsing --------------------------------------------------------

    def _advance(self, selector, conn: _ClientConn) -> None:
        if conn.state == "head":
            if not self._parse_head(selector, conn):
                return
        if conn.state == "body":
            if len(conn.inbuf) < conn.body_length:
                return
            self._dispatch_post(selector, conn)

    def _parse_head(self, selector, conn: _ClientConn) -> bool:
        index = conn.inbuf.find(b"\r\n\r\n")
        if index < 0:
            if len(conn.inbuf) > MAX_HEAD_BYTES:
                self._respond_error(selector, conn, 400, "request head too large")
            return False
        head = bytes(conn.inbuf[:index])
        del conn.inbuf[: index + 4]
        lines = head.split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            self._respond_error(selector, conn, 400, "malformed request line")
            return False
        try:
            conn.method = parts[0].decode("latin-1")
            conn.path = parts[1].decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover -- latin-1 total
            self._respond_error(selector, conn, 400, "malformed request line")
            return False
        for line in lines[1:]:
            name, _sep, value = line.partition(b":")
            conn.headers[name.strip().lower().decode("latin-1")] = (
                value.strip().decode("latin-1")
            )
        conn.started = time.perf_counter()
        incoming = conn.headers.get(tracecontext.TRACE_HEADER.lower())
        if incoming and tracecontext.valid_trace_id(incoming):
            conn.trace_id = incoming
        else:
            conn.trace_id = tracecontext.new_trace_id()

        if conn.method == "GET":
            self._dispatch_get(selector, conn)
            return False
        if conn.method != "POST":
            self._respond_error(selector, conn, 404, "not found")
            return False
        length = conn.headers.get("content-length")
        if length is None or not length.isdigit():
            self._finish_inline(
                selector, conn, conn.path, None, 411,
                {"status": "error", "error": "Content-Length required"},
            )
            return False
        conn.body_length = int(length)
        if conn.body_length > self.max_request_bytes:
            self.stats.record_rejected("too_large")
            self._finish_inline(
                selector, conn, conn.path, None, 413,
                {
                    "status": "error",
                    "error": (
                        f"request of {conn.body_length} bytes exceeds the "
                        f"{self.max_request_bytes} byte limit"
                    ),
                },
            )
            return False
        conn.state = "body"
        return True

    # -- GET -----------------------------------------------------------------

    def _dispatch_get(self, selector, conn: _ClientConn) -> None:
        parsed = urlparse(conn.path)
        if parsed.path == "/healthz":
            self.emit_event(
                ServerRequestBegin(
                    endpoint="/healthz", command=None, trace_id=conn.trace_id
                )
            )
            self._finish_inline(
                selector, conn, "/healthz", None, 200,
                {
                    "status": "draining" if self.draining else "ok",
                    "inflight": self.inflight(),
                    "shards": self.shard_count,
                    "uptime_s": round(
                        time.monotonic() - self.started_monotonic, 3
                    ),
                },
            )
            return
        if parsed.path == "/metricsz":
            self.emit_event(
                ServerRequestBegin(
                    endpoint="/metricsz", command=None, trace_id=conn.trace_id
                )
            )
            if self._wants_prometheus(parsed.query, conn.headers.get("accept", "")):
                self._finish_inline(
                    selector, conn, "/metricsz", None, 200, {},
                    body=self.prometheus_document().encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
                return
            self._finish_inline(
                selector, conn, "/metricsz", None, 200, self.metrics_document()
            )
            return
        self._finish_inline(
            selector, conn, conn.path, None, 404,
            {"status": "error", "error": "not found"},
        )

    @staticmethod
    def _wants_prometheus(query: str, accept: str) -> bool:
        formats = parse_qs(query).get("format")
        if formats:
            return formats[-1] == "prometheus"
        return "text/plain" in accept or "openmetrics" in accept

    # -- POST routing --------------------------------------------------------

    def _dispatch_post(self, selector, conn: _ClientConn) -> None:
        endpoint = conn.path
        is_batch = endpoint == "/v1/batch"
        if not is_batch and endpoint not in POST_ROUTES:
            self._finish_inline(
                selector, conn, endpoint, None, 404,
                {"status": "error", "error": "not found"},
            )
            return
        command = POST_ROUTES.get(endpoint)
        self.emit_event(
            ServerRequestBegin(
                endpoint=endpoint, command=command, trace_id=conn.trace_id
            )
        )
        try:
            body = json.loads(bytes(conn.inbuf[: conn.body_length]).decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._finish_inline(
                selector, conn, endpoint, command, 400,
                {"status": "error", "error": "body is not valid JSON"},
            )
            return
        del conn.inbuf[: conn.body_length]
        conn.state = "wait"
        if self.draining:
            self.stats.record_rejected("draining")
            self._finish_inline(
                selector, conn, endpoint, command, 503,
                {"status": "error", "error": "server is draining"},
                retry_after=self.stats.retry_after(0, 1),
            )
            return
        if is_batch:
            self._dispatch_batch(selector, conn, body)
            return
        try:
            _cmd, _src, _name, _opts, _cfg, request_key = request_identity(
                body, command, self.base_options
            )
        except ProtocolError as error:
            self._finish_inline(
                selector, conn, endpoint, command, 400,
                {"status": "error", "error": str(error)},
            )
            return
        handle = self.shards[self.ring.route(request_key)]
        if handle.inflight >= self.queue_size:
            self.stats.record_rejected("queue_full")
            self._finish_inline(
                selector, conn, endpoint, command, 503,
                {
                    "status": "error",
                    "error": (
                        f"queue full on shard {handle.shard_id} "
                        f"({handle.inflight} in flight, "
                        f"capacity {self.queue_size})"
                    ),
                },
                retry_after=self.stats.retry_after(handle.inflight, 1),
            )
            return
        pending = _Pending(conn, endpoint, command, conn.started, handle)
        self._enqueue(selector, handle, pending, body, command, conn.trace_id)

    def _dispatch_batch(self, selector, conn: _ClientConn, body) -> None:
        endpoint = "/v1/batch"
        try:
            items = validate_batch(body)
        except ProtocolError as error:
            self._finish_inline(
                selector, conn, endpoint, None, 400,
                {"status": "error", "error": str(error)},
            )
            return
        routed: List[Tuple[int, Optional[ShardHandle], Optional[dict], Optional[dict]]] = []
        demand: Dict[int, int] = {}
        for slot, item in enumerate(items):
            if not isinstance(item, dict):
                item = {"source": item}  # fails validation with a clear error
            try:
                *_rest, item_key = request_identity(item, None, self.base_options)
            except ProtocolError as error:
                failure = error_response(
                    item.get("command") if isinstance(item.get("command"), str)
                    else None,
                    str(error),
                )
                failure.update(key=None, cached=None, elapsed_ms=0.0)
                routed.append((slot, None, None, failure))
                continue
            handle = self.shards[self.ring.route(item_key)]
            demand[handle.shard_id] = demand.get(handle.shard_id, 0) + 1
            routed.append((slot, handle, item, None))
        # Atomic admission: every target shard must have room for its
        # whole share, or the batch bounces as a unit.
        for shard_id, count in demand.items():
            handle = self.shards[shard_id]
            if handle.inflight + count > self.queue_size:
                self.stats.record_rejected("queue_full")
                self._finish_inline(
                    selector, conn, endpoint, None, 503,
                    {
                        "status": "error",
                        "error": (
                            f"batch needs {count} slots on shard {shard_id} "
                            f"({handle.inflight} in flight, "
                            f"capacity {self.queue_size})"
                        ),
                    },
                    retry_after=self.stats.retry_after(handle.inflight, 1),
                )
                return
        batch = _Batch(conn, conn.started, len(items))
        for slot, handle, item, failure in routed:
            if failure is not None:
                batch.results[slot] = failure
                continue
            batch.remaining += 1
            pending = _Pending(
                conn, endpoint, None, conn.started, handle, batch=batch, slot=slot
            )
            self._enqueue(selector, handle, pending, item, None, conn.trace_id)
        if batch.remaining == 0:
            self._finish_batch(selector, batch)

    def _enqueue(
        self, selector, handle: ShardHandle, pending: _Pending,
        body: dict, command: Optional[str], trace_id: Optional[str],
    ) -> None:
        self._next_id += 1
        request_id = self._next_id
        self._pending[request_id] = pending
        handle.inflight += 1
        handle.high_water = max(handle.high_water, handle.inflight)
        message = {
            "op": "request",
            "id": request_id,
            "body": body,
            "command": command,
            "trace_id": trace_id,
        }
        if self._in_pipe[handle.shard_id] < PIPE_WINDOW:
            self._pipe_send(selector, handle, message)
        else:
            self._backlogs[handle.shard_id].append(message)

    def _pipe_send(self, selector, handle: ShardHandle, message: dict) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            self._shard_failed(selector, handle)
            return
        self._in_pipe[handle.shard_id] += 1

    # -- shard replies -------------------------------------------------------

    def _on_shard_readable(self, selector, handle: ShardHandle) -> None:
        while True:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                self._shard_failed(selector, handle)
                return
            if not isinstance(message, dict) or message.get("op") != "response":
                continue
            handle.stats_snapshot = message.get("stats") or handle.stats_snapshot
            self._in_pipe[handle.shard_id] = max(
                0, self._in_pipe[handle.shard_id] - 1
            )
            backlog = self._backlogs[handle.shard_id]
            if backlog and self._in_pipe[handle.shard_id] < PIPE_WINDOW:
                self._pipe_send(selector, handle, backlog.popleft())
            pending = self._pending.pop(message.get("id"), None)
            if pending is None:
                continue
            handle.inflight = max(0, handle.inflight - 1)
            self._settle(
                selector, pending,
                message.get("response") or {},
                int(message.get("http_status", 200)),
            )

    def _shard_failed(self, selector, handle: ShardHandle) -> None:
        """A shard died mid-flight: fail its requests, then respawn it."""
        try:
            selector.unregister(handle.conn)
        except (KeyError, ValueError):
            pass
        failed = [
            (request_id, pending)
            for request_id, pending in self._pending.items()
            if pending.shard is handle
        ]
        for request_id, pending in failed:
            del self._pending[request_id]
            self._settle(
                selector, pending,
                {
                    "status": "error",
                    "command": pending.command,
                    "output": "",
                    "exit_code": 1,
                    "degraded": False,
                    "error": f"shard {handle.shard_id} worker died",
                    "key": None,
                    "cached": None,
                    "elapsed_ms": 0.0,
                },
                500,
            )
        self._backlogs[handle.shard_id].clear()
        self._in_pipe[handle.shard_id] = 0
        handle.inflight = 0
        log_event(
            self.access_log, "shard died", shard=handle.shard_id,
            restarts=handle.restarts,
        )
        if self.draining:
            return
        try:
            handle.respawn()
        except RuntimeError:
            log_event(
                self.access_log, "shard respawn failed", shard=handle.shard_id
            )
            return
        selector.register(handle.conn, selectors.EVENT_READ, ("shard", handle))

    def _settle(
        self, selector, pending: _Pending, response: dict, http_status: int
    ) -> None:
        if pending.batch is not None:
            batch = pending.batch
            batch.results[pending.slot] = response
            batch.remaining -= 1
            if batch.remaining == 0:
                self._finish_batch(selector, batch)
            return
        self._finish_request(
            selector, pending.conn, pending.endpoint,
            response.get("command", pending.command), http_status, response,
            pending.started,
            cached=response.get("cached"),
            degraded=bool(response.get("degraded")),
        )

    def _finish_batch(self, selector, batch: _Batch) -> None:
        results = [result or {} for result in batch.results]
        degraded = any(result.get("degraded") for result in results)
        self._finish_request(
            selector, batch.conn, "/v1/batch", None, 200,
            {"status": "ok", "results": results},
            batch.started, degraded=degraded,
        )

    # -- responses -----------------------------------------------------------

    def _respond_error(self, selector, conn, status: int, message: str) -> None:
        self._finish_inline(
            selector, conn, conn.path or "?", None, status,
            {"status": "error", "error": message},
        )

    def _finish_inline(
        self, selector, conn: _ClientConn, endpoint: str,
        command: Optional[str], status: int, document: dict,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        retry_after: Optional[int] = None,
    ) -> None:
        """Answer a request entirely from the front end (no shard)."""
        self._finish_request(
            selector, conn, endpoint, command, status, document,
            conn.started or time.perf_counter(),
            body=body, content_type=content_type, retry_after=retry_after,
        )

    def _finish_request(
        self, selector, conn: _ClientConn, endpoint: str,
        command: Optional[str], status: int, document: dict, started: float,
        cached: Optional[str] = None, degraded: bool = False,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
        retry_after: Optional[int] = None,
    ) -> None:
        if body is None:
            body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        if status == 503 and retry_after is None:
            retry_after = self.stats.retry_after(self.inflight(), self.shard_count)
        if conn is not None and not conn.closed:
            reason = _REASONS.get(status, "Unknown")
            lines = [
                f"HTTP/1.0 {status} {reason}",
                "Server: repro-serve",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
            ]
            if conn.trace_id:
                lines.append(f"{tracecontext.TRACE_HEADER}: {conn.trace_id}")
            if status == 503:
                lines.append(f"Retry-After: {retry_after}")
            lines.append("Connection: close")
            head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
            conn.outbuf = head + body
            conn.out_offset = 0
            conn.state = "write"
            try:
                self._selector_modify_write(selector, conn)
            except (KeyError, ValueError):  # pragma: no cover -- raced close
                self._close_conn(selector, conn)
        elapsed_ms = (time.perf_counter() - started) * 1000
        trace_id = conn.trace_id if conn is not None else None
        self.stats.record_request(
            endpoint, status, elapsed_ms, cached=cached, degraded=degraded
        )
        self.emit_event(
            ServerRequestEnd(
                endpoint=endpoint,
                command=command,
                status=status,
                elapsed_ms=round(elapsed_ms, 3),
                cached=cached,
                degraded=degraded,
                trace_id=trace_id,
            )
        )
        self.record_span(endpoint, started, time.perf_counter(), trace_id=trace_id)
        log_event(
            self.access_log,
            "request",
            method=conn.method if conn is not None else "POST",
            endpoint=endpoint,
            status=status,
            cached=cached,
            degraded=degraded,
            elapsed_ms=round(elapsed_ms, 3),
            trace_id=trace_id,
        )

    def _selector_modify_write(self, selector, conn: _ClientConn) -> None:
        selector.modify(conn.sock, selectors.EVENT_WRITE, ("client", conn))
        # Try an eager write: most responses fit the socket buffer, so
        # the common case finishes without another loop iteration.
        self._on_client_writable(selector, conn)
