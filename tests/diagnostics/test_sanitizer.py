"""Lattice sanitizer: unit-level violations and full-suite validation.

The sanitizer (``VRPConfig.sanitize=True``) must (a) catch each class of
invariant violation when handed one directly, (b) stay silent across the
entire workload suite, and (c) never perturb the analysis results it
watches.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core import LatticeSanitizer, SanitizerError
from repro.core.config import VRPConfig
from repro.core.interprocedural import analyse_module
from repro.core.ranges import StridedRange
from repro.core.rangeset import RangeSet
from repro.ir import prepare_module
from repro.ir.instructions import Pi
from repro.ir.values import Constant, Temp
from repro.lang import compile_source
from repro.workloads import all_workloads


def _sanitizer(**overrides) -> LatticeSanitizer:
    return LatticeSanitizer("test", VRPConfig(sanitize=True, **overrides))


def _span(lo, hi, probability=1.0, stride=1) -> RangeSet:
    return RangeSet.from_ranges([StridedRange.span(probability, lo, hi, stride)])


class TestTransitionCheck:
    def test_descent_is_allowed(self):
        sanitizer = _sanitizer()
        sanitizer.check_transition("x", RangeSet.top(), _span(0, 10))
        sanitizer.check_transition("x", _span(0, 10), RangeSet.bottom())
        assert sanitizer.checks_run == 2

    def test_same_level_is_allowed(self):
        # Within the set level the support may shrink or shift.
        _sanitizer().check_transition("x", _span(0, 10), _span(5, 20))

    def test_ascent_from_set_to_top_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            _sanitizer().check_transition("x", _span(0, 10), RangeSet.top())
        assert excinfo.value.invariant == "lattice-descent"
        assert "x" in excinfo.value.detail

    def test_bottom_may_become_anything(self):
        # ⊥ means "nothing known yet" (an unvisited phi): the first
        # information arriving is not an ascent.
        sanitizer = _sanitizer()
        sanitizer.check_transition("x", RangeSet.bottom(), _span(0, 1))
        sanitizer.check_transition("x", RangeSet.bottom(), RangeSet.top())


class TestPiCheck:
    def _pi(self) -> Pi:
        return Pi(Temp("x.1"), Temp("x.0"), "lt", Constant(10))

    def test_narrowing_is_allowed(self):
        _sanitizer().check_pi(self._pi(), _span(0, 100), _span(0, 9))

    def test_top_source_is_skipped(self):
        # An assertion may manufacture a range from ⊤ -- that is its job.
        _sanitizer().check_pi(self._pi(), RangeSet.top(), _span(0, 9))

    def test_widening_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            _sanitizer().check_pi(self._pi(), _span(0, 9), _span(0, 100))
        assert excinfo.value.invariant == "pi-narrowing"


class TestWorklistCheck:
    def test_budget_scales_with_config(self):
        small = _sanitizer(widen_after=1, freeze_after=1)
        large = _sanitizer(widen_after=100, freeze_after=100)
        assert small.item_budget < large.item_budget

    def test_churn_past_budget_raises(self):
        sanitizer = _sanitizer(widen_after=1, freeze_after=1)
        with pytest.raises(SanitizerError) as excinfo:
            for _ in range(sanitizer.item_budget + 1):
                sanitizer.note_item(("flow", ("a", "b")))
        assert excinfo.value.invariant == "worklist-stabilisation"

    def test_distinct_items_do_not_share_budget(self):
        sanitizer = _sanitizer(widen_after=1, freeze_after=1)
        for i in range(sanitizer.item_budget):
            sanitizer.note_item(("ssa", i))


class TestFinalCheck:
    def _engine(self, **overrides) -> SimpleNamespace:
        defaults = dict(
            aborted=False,
            flow_pending=set(),
            ssa_pending=set(),
            branch_prob={},
            config=VRPConfig(),
            function=SimpleNamespace(blocks={}),
            visited=set(),
            edge_freq={},
            node_frequency=lambda label: 0.0,
        )
        defaults.update(overrides)
        return SimpleNamespace(**defaults)

    def test_clean_engine_passes(self):
        _sanitizer().check_final(self._engine(branch_prob={"b": 0.25}))

    def test_aborted_engine_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            _sanitizer().check_final(self._engine(aborted=True))
        assert excinfo.value.invariant == "fixed-point"

    def test_undrained_worklist_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            _sanitizer().check_final(self._engine(flow_pending={("a", "b")}))
        assert excinfo.value.invariant == "fixed-point"

    def test_probability_out_of_bounds_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            _sanitizer().check_final(self._engine(branch_prob={"b": 1.5}))
        assert excinfo.value.invariant == "probability-bounds"


def _analyse(source: str, config: VRPConfig):
    module = compile_source(source)
    ssa_infos = prepare_module(module)
    return analyse_module(module, ssa_infos, config=config)


@pytest.mark.parametrize(
    "workload", all_workloads(), ids=[w.name for w in all_workloads()]
)
def test_sanitizer_passes_on_workload(workload):
    """The full suite propagates without tripping a single invariant."""
    _analyse(workload.source, VRPConfig(sanitize=True))


def test_sanitizer_does_not_change_results():
    for workload in all_workloads()[:5]:
        plain = _analyse(workload.source, VRPConfig())
        checked = _analyse(workload.source, VRPConfig(sanitize=True))
        for name in plain.functions:
            a, b = plain.functions[name], checked.functions[name]
            assert a.branch_probability == b.branch_probability
            assert a.block_frequency == b.block_frequency
            assert a.used_heuristic == b.used_heuristic
