"""Interprocedural VRP tests: jump functions, return functions, recursion."""

import pytest

from repro.core import VRPConfig, VRPPredictor
from repro.core.interprocedural import analyse_module
from repro.core.rangeset import RangeSet

from tests.helpers import compile_and_prepare


def analyse_source(source, **kwargs):
    module, infos = compile_and_prepare(source)
    return analyse_module(module, infos, **kwargs)


class TestJumpFunctions:
    def test_constant_argument_reaches_callee(self):
        prediction = analyse_source(
            """
            func helper(k) {
              var t = 0;
              for (i = 0; i < k; i = i + 1) { t = t + 1; }
              return t;
            }
            func main(n) { return helper(100); }
            """
        )
        helper = prediction.functions["helper"]
        (probability,) = helper.branch_probability.values()
        assert probability == pytest.approx(100 / 101)
        assert not helper.used_heuristic

    def test_multiple_call_sites_merge(self):
        prediction = analyse_source(
            """
            func poke(v) {
              if (v > 50) { return 1; }
              return 0;
            }
            func main(n) {
              var a = poke(10);
              var b = poke(90);
              return a + b;
            }
            """
        )
        poke = prediction.functions["poke"]
        (probability,) = poke.branch_probability.values()
        # v is {10 or 90} with equal call frequency: P(v > 50) = 0.5.
        assert probability == pytest.approx(0.5, abs=0.05)

    def test_return_range_flows_back(self):
        prediction = analyse_source(
            """
            func five() { return 5; }
            func main(n) {
              var x = five();
              if (x == 5) { return 1; }
              return 0;
            }
            """
        )
        main = prediction.functions["main"]
        (probability,) = main.branch_probability.values()
        assert probability == pytest.approx(1.0)

    def test_entry_params_default_bottom(self):
        prediction = analyse_source(
            "func main(n) { if (n > 0) { return 1; } return 0; }"
        )
        main = prediction.functions["main"]
        assert main.used_heuristic  # n unknown -> fallback

    def test_entry_param_ranges_honoured(self):
        prediction = analyse_source(
            "func main(n) { if (n > 3) { return 1; } return 0; }",
            entry_param_ranges={"n": RangeSet.span(0, 9)},
        )
        main = prediction.functions["main"]
        (probability,) = main.branch_probability.values()
        assert probability == pytest.approx(0.6)


class TestRecursion:
    def test_direct_recursion_terminates(self):
        prediction = analyse_source(
            """
            func fact(n) {
              if (n <= 1) { return 1; }
              return n * fact(n - 1);
            }
            func main(n) { return fact(10); }
            """
        )
        assert "fact" in prediction.functions
        assert prediction.functions["fact"].branch_probability

    def test_mutual_recursion_terminates(self):
        prediction = analyse_source(
            """
            func even(n) {
              if (n == 0) { return 1; }
              return odd(n - 1);
            }
            func odd(n) {
              if (n == 0) { return 0; }
              return even(n - 1);
            }
            func main(n) { return even(8); }
            """
        )
        assert prediction.functions["even"].branch_probability
        assert prediction.functions["odd"].branch_probability

    def test_rounds_bounded(self):
        prediction = analyse_source(
            """
            func f(n) { if (n > 0) { return f(n - 1); } return 0; }
            func main(n) { return f(n); }
            """,
            max_rounds=4,
        )
        assert prediction.rounds <= 4


class TestModulePredictionAPI:
    def test_all_branches_keys(self):
        prediction = analyse_source(
            """
            func helper(k) { if (k > 0) { return 1; } return 0; }
            func main(n) { if (n > 0) { return helper(n); } return 0; }
            """
        )
        keys = set(prediction.all_branches())
        assert all(isinstance(k, tuple) and len(k) == 2 for k in keys)
        functions = {function for function, _ in keys}
        assert functions == {"helper", "main"}

    def test_branch_probability_lookup(self):
        prediction = analyse_source(
            "func main(n) { if (n > 0) { return 1; } return 0; }"
        )
        (label,) = prediction.functions["main"].branch_probability
        assert prediction.branch_probability("main", label) is not None
        assert prediction.branch_probability("ghost", label) is None

    def test_counters_aggregated(self):
        prediction = analyse_source(
            """
            func helper(k) { return k + 1; }
            func main(n) { return helper(1); }
            """
        )
        assert prediction.counters.expr_evaluations > 0


class TestVRPPredictorFrontDoor:
    def test_predict_module(self):
        from repro.lang import compile_source
        from repro.ir import prepare_module

        module = compile_source(
            "func main(n) { var t = 0; for (i = 0; i < 7; i = i + 1) { t = t + 1; } return t; }"
        )
        infos = prepare_module(module)
        prediction = VRPPredictor().predict_module(module, infos)
        (probability,) = prediction.functions["main"].branch_probability.values()
        assert probability == pytest.approx(7 / 8)

    def test_intraprocedural_mode(self):
        from repro.lang import compile_source
        from repro.ir import prepare_module

        module = compile_source(
            """
            func helper(k) { if (k > 0) { return 1; } return 0; }
            func main(n) { return helper(5); }
            """
        )
        infos = prepare_module(module)
        prediction = VRPPredictor(interprocedural=False).predict_module(module, infos)
        helper = prediction.functions["helper"]
        # Without jump functions the callee parameter stays unknown.
        assert helper.used_heuristic

    def test_predictor_interface_on_prepared_function(self):
        from repro.lang import compile_source
        from repro.ir import prepare_for_analysis

        module = compile_source(
            "func main(n) { var t = 0; for (i = 0; i < 3; i = i + 1) { t = t + 1; } return t; }"
        )
        function = module.function("main")
        prepare_for_analysis(function)
        probabilities = VRPPredictor().predict_function(function)
        assert len(probabilities) == 1
        (probability,) = probabilities.values()
        assert probability == pytest.approx(3 / 4)
