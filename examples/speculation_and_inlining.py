"""Global-scheduling speculation and predicted-frequency inlining.

The paper's motivating arithmetic for probabilities over taken/not-taken
bits: "If each branch is taken 60% of the time, our instruction will
only be useful 36% of the time."  This example:

1. builds that exact situation and prints the hoisting table a global
   scheduler would consult (the 36% shows up);
2. inlines the hot, small calls chosen purely from *predicted* call-site
   frequencies, and verifies the transformed program still computes the
   same result.

Run:  python examples/speculation_and_inlining.py
"""

from repro.core import VRPPredictor
from repro.ir import prepare_module, verify_function
from repro.lang import compile_source
from repro.opt import hoisting_candidates, inline_hot_calls, function_order
from repro.profiling import run_module

PROGRAM = """
func weight(v) {
  return v * 3 + 1;
}

func main(n) {
  var score = 0;
  for (i = 0; i < 1000; i = i + 1) {
    var a = input() % 10;
    var b = input() % 10;
    if (a < 6) {            // taken 60% of the time
      if (b < 6) {          // taken 60% of the time
        score = score + weight(a + b);   // useful 36% of the time
      }
    }
  }
  return score;
}
"""


def main() -> None:
    module = compile_source(PROGRAM)
    ssa_infos = prepare_module(module)
    predictor = VRPPredictor()
    prediction = predictor.predict_module(module, ssa_infos)

    print("=== Branch probabilities ===")
    for (function, label), probability in sorted(prediction.all_branches().items()):
        print(f"  {function:8s} {label:10s} {probability:6.1%}")

    print()
    print("=== Speculation table (usefulness of hoisting block -> dominator) ===")
    main_prediction = prediction.functions["main"]
    for candidate in hoisting_candidates(module.function("main"), main_prediction):
        if candidate.speculation_depth >= 2 and 0.0 < candidate.usefulness < 1.0:
            print(
                f"  {candidate.block:12s} -> {candidate.target:12s} "
                f"useful {candidate.usefulness:6.1%} "
                f"(crosses {candidate.speculation_depth} dominators)"
            )

    print()
    print("=== Function processing order (hottest first, pre-inlining) ===")
    for name, frequency in function_order(module, prediction):
        print(f"  {name:10s} invoked ~{frequency:.0f}x")

    inputs = [(i * 13) % 10 for i in range(2000)]
    before = run_module(module, args=[0], input_values=inputs).return_value

    print()
    print("=== Inlining hot calls (predicted frequencies, no profile) ===")
    decisions = inline_hot_calls(module, prediction)
    for decision in decisions:
        print(
            f"  inlined {decision.callee} into {decision.caller} at "
            f"{decision.block_label} (predicted frequency {decision.frequency:.0f}x, "
            f"{decision.callee_size} instructions)"
        )
    verify_function(module.function("main"), ssa=True, param_names={"n.0"})
    after = run_module(module, args=[0], input_values=inputs).return_value
    print(f"  result before inlining: {before}")
    print(f"  result after inlining:  {after}  (identical: {before == after})")


if __name__ == "__main__":
    main()
