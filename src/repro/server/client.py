"""Stdlib client for the serving daemon (the guts of ``repro submit``).

One :class:`ServeClient` talks to one daemon.  Each call opens its own
``http.client.HTTPConnection`` -- the daemon speaks one-request
HTTP/1.0, and per-call connections keep the client trivially
thread-safe.  Transport-level trouble (connection refused, daemon gone
mid-response) raises :class:`ServerError` with ``status=None``;
protocol rejections (400/413/503...) raise it with the HTTP status and
the daemon's error message, so callers can distinguish "retry later"
(503) from "fix the request" (400).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, List, Optional, Tuple

from repro.observability import context as tracecontext


class ServerError(Exception):
    """The daemon rejected the request or could not be reached."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Typed requests against one ``repro serve`` daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8077, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def request_json(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, dict]:
        """One HTTP exchange; returns ``(status, decoded JSON body)``.

        The ambient trace context (``repro.observability.context``), if
        any, rides along as ``X-Repro-Trace-Id`` so a ``repro submit``
        invocation and the daemon's access log share one id; an
        explicit ``headers`` entry for it wins.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            send_headers: Dict[str, str] = {}
            trace_id = tracecontext.current_trace_id()
            if trace_id is not None:
                send_headers[tracecontext.TRACE_HEADER] = trace_id
            if headers:
                send_headers.update(headers)
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                send_headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=send_headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, ValueError):
                raise ServerError(
                    f"daemon sent a non-JSON response (HTTP {response.status})",
                    status=response.status,
                )
            return response.status, document
        except (ConnectionError, socket.timeout, socket.gaierror, OSError) as error:
            raise ServerError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        finally:
            connection.close()

    def _post(self, path: str, body: dict) -> dict:
        status, document = self.request_json("POST", path, body)
        if status != 200:
            raise ServerError(
                document.get("error", f"HTTP {status}"), status=status
            )
        return document

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        status, document = self.request_json("GET", "/healthz")
        if status != 200:
            raise ServerError(f"healthz answered HTTP {status}", status=status)
        return document

    def metricsz(self) -> dict:
        status, document = self.request_json("GET", "/metricsz")
        if status != 200:
            raise ServerError(f"metricsz answered HTTP {status}", status=status)
        return document

    def metricsz_prometheus(self) -> str:
        """Fetch ``/metricsz`` as Prometheus text (the scrape shape)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "GET", "/metricsz?format=prometheus",
                headers={"Accept": "text/plain"},
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServerError(
                    f"metricsz answered HTTP {response.status}",
                    status=response.status,
                )
            return raw.decode("utf-8")
        except (ConnectionError, socket.timeout, socket.gaierror, OSError) as error:
            raise ServerError(
                f"cannot reach {self.host}:{self.port}: {error}"
            ) from error
        finally:
            connection.close()

    def analyze(
        self,
        command: str,
        source: str,
        name: str = "-",
        options: Optional[Dict[str, object]] = None,
    ) -> dict:
        """Submit one program; returns the full response document."""
        return self._post(
            f"/v1/{command}",
            {"source": source, "name": name, "options": options or {}},
        )

    def batch(self, items: List[dict]) -> List[dict]:
        """Submit a micro-batch; results come back in submission order."""
        document = self._post("/v1/batch", {"items": items})
        results = document.get("results")
        if not isinstance(results, list):
            raise ServerError("batch response is missing 'results'")
        return results

    def analyze_many(
        self, items: List[dict], jobs: int = 1
    ) -> List[dict]:
        """Submit ``items`` as independent requests, ``jobs`` at a time.

        The client-side fan-out behind ``repro submit --jobs N``: each
        item posts to its own ``/v1/<command>`` endpoint on its own
        connection, up to ``jobs`` concurrently, and the result list
        comes back in *submission order* regardless of completion order
        -- so output is byte-identical to ``--jobs 1``.  Unlike
        :meth:`batch` the daemon sees N independent requests, which is
        what lets a sharded daemon spread them across shards while the
        consistent-hash router still pins repeats to warm caches.

        A failed item (transport error, 503 backpressure...) surfaces
        as a :class:`ServerError`-shaped dict (``status: "error"``,
        ``http_status``) in its slot rather than aborting the others;
        callers decide whether that fails the run.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")

        def one(item: dict) -> dict:
            command = str(item.get("command", "analyze"))
            path = (
                f"/v1/{command}"
                if command in ("predict", "check", "ranges", "ir", "run")
                else "/v1/analyze"
            )
            body = {key: value for key, value in item.items() if key != "command"}
            if path == "/v1/analyze":
                body["command"] = command
            try:
                return self._post(path, body)
            except ServerError as error:
                return {
                    "status": "error",
                    "command": item.get("command"),
                    "output": "",
                    "exit_code": 1,
                    "degraded": False,
                    "error": str(error),
                    "http_status": error.status,
                }

        if jobs == 1 or len(items) <= 1:
            return [one(item) for item in items]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(jobs, len(items)), thread_name_prefix="repro-submit"
        ) as pool:
            # map() preserves submission order: determinism by construction.
            return list(pool.map(one, items))

    def wait_ready(self, attempts: int = 50, delay: float = 0.1) -> dict:
        """Poll ``/healthz`` until the daemon answers (for scripts/CI)."""
        import time

        last: Optional[ServerError] = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except ServerError as error:
                last = error
                time.sleep(delay)
        raise ServerError(
            f"daemon at {self.host}:{self.port} never became ready: {last}"
        )
