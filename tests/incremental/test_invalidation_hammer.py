"""Randomized invalidation hammer over the ``inter`` suite.

For random single-function edits, the incremental driver must
reanalyze exactly the edited function plus its summary-dependents
(``SummaryDepGraph.affected``), replay everything else, and render
byte-identically to a cold run of the edited module -- at context
depths 0, 1 and 2.
"""

import random
import re

import pytest

from repro.cli import main
from repro.core.callgraph import CallGraph
from repro.core.config import VRPConfig
from repro.core.interprocedural import analyse_module
from repro.incremental.depgraph import SummaryDepGraph
from repro.incremental.driver import analyse_module_incremental
from repro.incremental.fingerprint import module_fingerprints
from repro.incremental.store import IncrementalStore
from repro.workloads import suite

from tests.incremental.helpers import MULTI_COMPONENT, build, rendered

DEPTHS = (0, 1, 2)
EDITS_PER_TARGET = 3


def sources():
    out = [("multi_component", MULTI_COMPONENT)]
    out.extend((w.name, w.source) for w in suite("inter"))
    return out


def function_spans(source):
    """(name, body_start, body_end) for every ``func`` in ``source``."""
    spans = []
    for match in re.finditer(r"\bfunc\s+(\w+)\s*\(", source):
        opening = source.index("{", match.end())
        depth = 0
        for position in range(opening, len(source)):
            if source[position] == "{":
                depth += 1
            elif source[position] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((match.group(1), opening, position))
                    break
    return spans


def random_single_function_edit(source, rng):
    """Bump one integer literal inside one function; (edited, name)."""
    spans = [span for span in function_spans(source)]
    rng.shuffle(spans)
    for name, start, end in spans:
        body = source[start:end]
        literals = [
            m for m in re.finditer(r"(?<![\w.])\d+", body)
        ]
        if not literals:
            continue
        chosen = rng.choice(literals)
        value = int(chosen.group(0))
        edited_body = (
            body[: chosen.start()] + str(value + 1) + body[chosen.end():]
        )
        return source[:start] + edited_body + source[end:], name
    raise AssertionError("no editable literal found")


@pytest.mark.parametrize("depth", DEPTHS)
def test_hammer_reanalyzes_exactly_the_affected_set(depth):
    config = VRPConfig(context_depth=depth)
    rng = random.Random(0xC0FFEE + depth)
    for target, source in sources():
        base_module, _ = build(source)
        base_fps = module_fingerprints(base_module)
        for _ in range(EDITS_PER_TARGET):
            # A fresh store warmed only with the base module: two
            # random edits may coincide, and a store that already saw
            # the edit would (correctly) replay it.
            store = IncrementalStore()
            warm_module, warm_infos = build(source)
            analyse_module_incremental(
                warm_module, warm_infos, store, config=config
            )
            edited_source, edited_name = random_single_function_edit(
                source, rng
            )
            edited_module, edited_infos = build(edited_source)
            edited_fps = module_fingerprints(edited_module)
            changed = {
                name
                for name, fps in edited_fps.items()
                if fps["semantic"] != base_fps[name]["semantic"]
            }
            assert changed == {edited_name}, (target, edited_name, changed)

            expected = SummaryDepGraph(CallGraph(edited_module)).affected(
                changed
            )
            prediction, outcome = analyse_module_incremental(
                edited_module, edited_infos, store, config=config
            )
            context = (target, depth, edited_name)
            assert set(outcome.reanalyzed) == expected, context
            assert set(outcome.replayed) == (
                set(edited_module.functions) - expected
            ), context

            cold_module, cold_infos = build(edited_source)
            cold = analyse_module(cold_module, cold_infos, config=config)
            assert rendered(prediction) == rendered(cold), context


class TestRenderedOutputsByteIdentical:
    """CLI-level identity: predict and check, text/json/sarif, k=0/1/2."""

    @pytest.fixture(scope="class")
    def edited_file(self, tmp_path_factory):
        source = suite("inter")[2].source  # inter_pipeline: 3 functions
        edited, _ = random_single_function_edit(source, random.Random(7))
        path = tmp_path_factory.mktemp("hammer") / "edited.toy"
        path.write_text(edited)
        return str(path)

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_predict_table(self, edited_file, tmp_path, capsys, depth):
        base = ["predict", edited_file, "--context-depth", str(depth)]
        store = str(tmp_path / "store")
        cold_code = main(base)
        cold_out = capsys.readouterr().out
        first_code = main(base + ["--incremental", "--store-dir", store])
        first_out = capsys.readouterr().out
        warm_code = main(base + ["--incremental", "--store-dir", store])
        warm_out = capsys.readouterr().out
        assert (first_code, warm_code) == (cold_code, cold_code)
        assert first_out == cold_out
        assert warm_out == cold_out

    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
    def test_check_formats(self, edited_file, tmp_path, capsys, fmt, depth):
        base = [
            "check", edited_file, "--format", fmt,
            "--context-depth", str(depth),
        ]
        store = str(tmp_path / "store")
        cold_code = main(base)
        cold_out = capsys.readouterr().out
        first_code = main(base + ["--incremental", "--store-dir", store])
        first_out = capsys.readouterr().out
        warm_code = main(base + ["--incremental", "--store-dir", store])
        warm_out = capsys.readouterr().out
        assert (first_code, warm_code) == (cold_code, cold_code)
        assert first_out == cold_out
        assert warm_out == cold_out
