"""Module-scoped analyses: callgraph, summaries, module_prediction.

The interprocedural products are first-class pass-manager analyses:
served from :class:`AnalysisCache` on demand, reused across clients,
consumed by the VRP driver itself, and dropped or kept by
``invalidate`` according to a pass's ``preserves`` contract.
"""

from __future__ import annotations

import pytest

from repro.core.callgraph import CallGraph
from repro.core.summaries import ModuleSummaries
from repro.passes import ANALYSIS_NAMES, PRESERVES_ALL, AnalysisCache

from tests.helpers import compile_and_prepare

CALLS = """
func affine(v) {
  return v * 3 + 1;
}

func main(n) {
  var a = affine(n % 8);
  if (a < 12) { return 1; }
  return affine(a);
}
"""


def _cache(source=CALLS, **kwargs):
    module, infos = compile_and_prepare(source)
    kwargs.setdefault("enabled", True)
    return module, AnalysisCache(module, infos, **kwargs)


class TestRegistration:
    def test_interprocedural_products_are_registered_analyses(self):
        for name in ("callgraph", "summaries", "module_prediction"):
            assert name in ANALYSIS_NAMES
            assert name in PRESERVES_ALL


class TestDemandComputation:
    def test_callgraph_is_module_scoped_and_cached(self):
        module, cache = _cache()
        graph = cache.callgraph()
        assert isinstance(graph, CallGraph)
        assert graph is cache.callgraph()
        assert graph is cache.get("callgraph")
        assert cache.misses["callgraph"] == 1
        assert cache.hits["callgraph"] == 2
        assert graph.bottom_up_order() == ["affine", "main"]

    def test_summaries_are_module_scoped_and_cached(self):
        module, cache = _cache()
        summaries = cache.summaries()
        assert isinstance(summaries, ModuleSummaries)
        assert summaries is cache.summaries()
        assert summaries.of("affine").call_sites == 2
        assert summaries.of("affine").pure

    def test_summaries_ride_with_the_prediction(self):
        module, cache = _cache()
        prediction = cache.prediction()
        assert cache.summaries() is prediction.summaries

    def test_module_prediction_aliases_prediction(self):
        module, cache = _cache()
        assert cache.get("module_prediction") is cache.prediction()

    def test_driver_consumes_the_cached_callgraph(self):
        module, cache = _cache()
        graph = cache.callgraph()
        hits_before = cache.hits.get("callgraph", 0)
        prediction = cache.prediction()
        # The interprocedural driver must reuse the cached graph rather
        # than rebuilding its own: a cache hit, not a second miss.
        assert cache.misses["callgraph"] == 1
        assert cache.hits["callgraph"] > hits_before
        assert set(prediction.functions) == set(graph.bottom_up_order())

    def test_function_scoped_request_is_rejected_for_module_analyses(self):
        module, cache = _cache()
        # Module-scoped analyses ignore the function operand entirely;
        # the cache must hand back the same module-wide object.
        assert cache.get("callgraph", module.main) is cache.callgraph()


class TestInvalidation:
    def test_unpreserved_module_analyses_are_dropped(self):
        module, cache = _cache()
        cache.callgraph()
        cache.summaries()
        cache.prediction()
        dropped = cache.invalidate(preserves=frozenset(("cfg", "loops")))
        assert dropped >= 3
        for name in ("callgraph", "summaries", "prediction"):
            assert cache.invalidations.get(name, 0) == 1

    def test_preserves_all_keeps_every_module_analysis(self):
        module, cache = _cache()
        graph = cache.callgraph()
        summaries = cache.summaries()
        prediction = cache.prediction()
        assert cache.invalidate(preserves=PRESERVES_ALL) == 0
        assert cache.callgraph() is graph
        assert cache.summaries() is summaries
        assert cache.prediction() is prediction

    def test_partial_preserves_is_honoured(self):
        module, cache = _cache()
        graph = cache.callgraph()
        summaries = cache.summaries()
        cache.invalidate(preserves=frozenset(("callgraph",)))
        assert cache.callgraph() is graph
        assert cache.summaries() is not summaries
        assert cache.invalidations["summaries"] == 1
        assert cache.invalidations.get("callgraph", 0) == 0

    def test_function_limited_invalidation_still_drops_module_scope(self):
        module, cache = _cache()
        cache.callgraph()
        cache.summaries()
        before = cache.misses["callgraph"]
        cache.invalidate(preserves=frozenset(), functions=["affine"])
        cache.callgraph()
        assert cache.misses["callgraph"] == before + 1

    def test_recompute_after_invalidation_is_fresh(self):
        module, cache = _cache()
        graph = cache.callgraph()
        cache.invalidate_all()
        fresh = cache.callgraph()
        assert fresh is not graph
        assert fresh.bottom_up_order() == graph.bottom_up_order()


class TestIntraproceduralFallback:
    def test_summaries_are_distilled_without_driver_built_ones(self):
        module, cache = _cache()
        prediction = cache.prediction()
        # Simulate a prediction from the intraprocedural path, which
        # carries no driver-built summaries.
        prediction.summaries = None
        summaries = cache.summaries()
        assert isinstance(summaries, ModuleSummaries)
        assert summaries.of("affine").call_sites == 2
        assert summaries.of("affine").pure

    def test_unknown_module_analysis_is_rejected(self):
        module, cache = _cache()
        with pytest.raises(KeyError):
            cache.get("module_callgraph")
