"""``repro submit --jobs N``: concurrent fan-out, deterministic output."""

import threading

import pytest

from repro.cli import main
from repro.server import ReproServer, ServeClient
from repro.server.client import ServerError
from repro.server.frontend import ShardedServer
from repro.server.loadgen import make_corpus

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 50; i = i + 1) {
    if (i > 40) { total = total + i; }
  }
  return total;
}
"""

OTHER = "func main(n) { if (n > 0) { return 1; } return 0; }"

BROKEN = "func main( { oops"


@pytest.fixture
def served():
    server = ReproServer(port=0, workers=2, queue_size=32)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.port)
    client.wait_ready()
    yield server, client
    server.drain(timeout=10)


class TestAnalyzeMany:
    def test_results_in_submission_order(self, served):
        _, client = served
        sources = make_corpus(12)
        items = [
            {"command": "predict", "source": source, "name": f"p{index}"}
            for index, source in enumerate(sources)
        ]
        sequential = client.analyze_many(items, jobs=1)
        concurrent = client.analyze_many(items, jobs=4)
        assert [r["output"] for r in concurrent] == [
            r["output"] for r in sequential
        ]
        assert [r["key"] for r in concurrent] == [r["key"] for r in sequential]

    def test_jobs_must_be_positive(self, served):
        _, client = served
        with pytest.raises(ValueError):
            client.analyze_many([], jobs=0)

    def test_failed_item_fills_its_slot(self, served):
        _, client = served
        items = [
            {"command": "predict", "source": PROGRAM},
            {"command": "predict", "source": BROKEN},
            {"command": "ir", "source": OTHER},
        ]
        results = client.analyze_many(items, jobs=3)
        assert results[0]["status"] == "ok"
        assert results[1]["status"] == "error"
        assert results[2]["status"] == "ok"

    def test_transport_failure_is_an_error_slot_not_an_exception(self):
        client = ServeClient(port=1)  # nothing listens there
        results = client.analyze_many(
            [{"command": "predict", "source": PROGRAM}], jobs=2
        )
        assert results[0]["status"] == "error"
        assert results[0]["http_status"] is None
        assert "cannot reach" in results[0]["error"]

    def test_unknown_command_goes_through_analyze_route(self, served):
        _, client = served
        results = client.analyze_many(
            [{"command": "bogus", "source": PROGRAM}], jobs=1
        )
        assert results[0]["status"] == "error"


class TestSubmitJobsCLI:
    def _write_corpus(self, tmp_path, count=6):
        paths = []
        for index, source in enumerate(make_corpus(count)):
            path = tmp_path / f"p{index}.toy"
            path.write_text(source, encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_jobs_output_is_byte_identical_to_sequential(
        self, capsys, tmp_path, served
    ):
        server, _ = served
        paths = self._write_corpus(tmp_path)
        code = main(["submit", "--port", str(server.port), *paths])
        sequential = capsys.readouterr().out
        assert code == 0
        code = main(
            ["submit", "--port", str(server.port), "--jobs", "4", *paths]
        )
        fanned_out = capsys.readouterr().out
        assert code == 0
        assert fanned_out == sequential

    def test_jobs_against_sharded_daemon(self, capsys, tmp_path):
        server = ShardedServer(port=0, shards=2, queue_size=32)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            ServeClient(port=server.port).wait_ready()
            paths = self._write_corpus(tmp_path)
            code = main(["submit", "--port", str(server.port), *paths])
            sequential = capsys.readouterr().out
            code2 = main(
                ["submit", "--port", str(server.port), "--jobs", "3", *paths]
            )
            fanned_out = capsys.readouterr().out
            assert (code, code2) == (0, 0)
            assert fanned_out == sequential
        finally:
            server.drain(timeout=10)

    def test_single_file_ignores_jobs(self, capsys, tmp_path, served):
        server, _ = served
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        code = main(
            ["submit", "--port", str(server.port), "--jobs", "8", str(path)]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("function")

    def test_jobs_propagates_worst_exit_code(self, capsys, tmp_path, served):
        server, _ = served
        good = tmp_path / "good.toy"
        good.write_text(PROGRAM, encoding="utf-8")
        bad = tmp_path / "bad.toy"
        bad.write_text(BROKEN, encoding="utf-8")
        code = main(
            [
                "submit", "--port", str(server.port), "--jobs", "2",
                str(good), str(bad),
            ]
        )
        capsys.readouterr()
        assert code == 1
