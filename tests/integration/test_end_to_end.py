"""End-to-end integration tests: prediction accuracy on analysable programs."""

import pytest

import repro
from repro.core import VRPPredictor
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.profiling import run_module


def predict_and_observe(source, args, inputs=None):
    """Compile once; return (predictions, observed branch probabilities)."""
    module = compile_source(source)
    infos = prepare_module(module)
    prediction = VRPPredictor().predict_module(module, infos)
    run = run_module(module, args=args, input_values=inputs)
    observed = {}
    for (func, label), counts in run.branch_counts.items():
        total = counts[0] + counts[1]
        if total:
            observed[(func, label)] = counts[0] / total
    return prediction.all_branches(), observed


class TestAnalyticAgreement:
    def test_constant_loop_exact(self):
        predictions, observed = predict_and_observe(
            "func main(n) { var t = 0; for (i = 0; i < 100; i = i + 1) { t = t + 1; } return t; }",
            args=[0],
        )
        for key, actual in observed.items():
            assert predictions[key] == pytest.approx(actual, abs=1e-9)

    def test_mod_branch_matches_uniform_data(self):
        # Uniform input: VRP's uniform assumption is exactly right.
        source = """
        func main(n) {
          var hits = 0;
          for (i = 0; i < 1000; i = i + 1) {
            var v = input() % 8;
            if (v < 2) { hits = hits + 1; }
          }
          return hits;
        }
        """
        predictions, observed = predict_and_observe(
            source, args=[0], inputs=[i % 8 for i in range(1000)]
        )
        for key, actual in observed.items():
            assert predictions[key] == pytest.approx(actual, abs=0.02)

    def test_nested_diamond_matches(self):
        # The paper's example executed for real: 30% observed.
        source = """
        func main(n) {
          var hits = 0;
          for (x = 0; x < 10; x = x + 1) {
            var y = 0;
            if (x > 7) { y = 1; } else { y = x; }
            if (y == 1) { hits = hits + 1; }
          }
          return hits;
        }
        """
        predictions, observed = predict_and_observe(source, args=[0])
        module_keys = {key for key in observed}
        for key in module_keys:
            assert predictions[key] == pytest.approx(observed[key], abs=1e-9), key

    def test_interprocedural_constant_matches(self):
        source = """
        func kernel(size) {
          var t = 0;
          for (i = 0; i < size; i = i + 1) { t = t + 1; }
          return t;
        }
        func main(n) { return kernel(64); }
        """
        predictions, observed = predict_and_observe(source, args=[0])
        for key, actual in observed.items():
            assert predictions[key] == pytest.approx(actual, abs=1e-9)

    def test_triangular_loops_close(self):
        source = """
        func main(n) {
          var t = 0;
          for (i = 0; i < 30; i = i + 1) {
            for (j = 0; j <= i; j = j + 1) { t = t + 1; }
          }
          return t;
        }
        """
        predictions, observed = predict_and_observe(source, args=[0])
        for key, actual in observed.items():
            assert predictions[key] == pytest.approx(actual, abs=0.05), key


class TestTopLevelAPI:
    def test_compile_and_predict(self):
        probabilities = repro.compile_and_predict(
            "func main(n) { var t = 0; for (i = 0; i < 4; i = i + 1) { t = t + i; } return t; }"
        )
        assert len(probabilities) == 1
        (probability,) = probabilities.values()
        assert probability == pytest.approx(4 / 5)

    def test_version_exposed(self):
        assert repro.__version__

    def test_intraprocedural_flag(self):
        source = """
        func helper(k) { if (k > 0) { return 1; } return 0; }
        func main(n) { return helper(3); }
        """
        inter = repro.compile_and_predict(source, interprocedural=True)
        intra = repro.compile_and_predict(source, interprocedural=False)
        helper_key = next(k for k in inter if k[0] == "helper")
        assert inter[helper_key] == pytest.approx(1.0)
        assert intra[helper_key] != pytest.approx(1.0)


class TestPredictorComparison:
    def test_vrp_beats_heuristics_on_analysable_program(self):
        from repro.evalharness import branch_errors, mean_error, prepare_workload
        from repro.heuristics import BallLarusPredictor
        from repro.workloads import Workload

        workload = Workload(
            name="bench-tiny",
            suite="fp",
            description="test",
            source="""
            func main(n) {
              var hits = 0;
              for (i = 0; i < 500; i = i + 1) {
                var v = input() % 100;
                if (v < 37) { hits = hits + 1; }
              }
              return hits;
            }
            """,
            train_args=[0],
            ref_args=[0],
            train_inputs=[(i * 13) % 100 for i in range(500)],
            ref_inputs=[(i * 7) % 100 for i in range(500)],
        )
        prepared = prepare_workload(workload)
        from repro.evalharness import vrp_predictions, profile_predictions

        vrp_records = branch_errors(vrp_predictions(prepared), prepared.truth_profile)
        heuristic_predictions = {}
        for name, function in prepared.module.functions.items():
            for label, p in BallLarusPredictor().predict_function(function).items():
                heuristic_predictions[(name, label)] = p
        heuristic_records = branch_errors(heuristic_predictions, prepared.truth_profile)
        assert mean_error(vrp_records) < mean_error(heuristic_records)
