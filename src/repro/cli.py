"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``predict FILE``   -- branch probabilities for a toy-language program;
* ``ir FILE``        -- dump the canonicalised SSA IR;
* ``run FILE``       -- interpret a program and print its profile;
* ``ranges FILE``    -- final value ranges per SSA variable;
* ``check FILE...``  -- static diagnostics from the computed ranges
  (dead branches, out-of-bounds accesses, division by zero, ...) as
  text, JSON, or SARIF 2.1.0; many files check in one invocation
  (``--jobs N`` fans out over processes, ``--output-dir`` writes one
  report per input);
* ``opt FILE``       -- run a pass pipeline (``--pipeline predict|
  optimize|diagnose`` or an explicit ``--passes a,b,c`` list) through
  the pass manager, with per-pass timing/cache statistics;
* ``trace FILE``     -- phase timings + propagation event stream;
* ``explain FILE BRANCH`` -- why a branch got its probability;
* ``workloads``      -- list the built-in benchmark suite;
* ``evaluate``       -- score all predictors on a workload or a suite;
* ``serve``          -- long-running prediction daemon (HTTP JSON API,
  content-addressed result cache, bounded worker pool, graceful
  degradation -- see ``docs/SERVING.md``);
* ``submit FILE...`` -- send programs to a running daemon; output is
  byte-identical to the corresponding one-shot command (``--trace-out``
  additionally exports the exchange as Chrome trace-event JSON);
* ``profile FILE``   -- per-pass / per-analysis self and cumulative
  times, hot transfer functions, and collapsed stacks for flamegraphs
  (``--collapsed``, ``--trace-out``);
* ``watch FILE...``  -- re-run ``predict``/``check``/``ranges`` whenever
  a watched file changes, replaying unchanged functions from the
  incremental summary store (``docs/INCREMENTAL.md``) so each recheck
  re-analyses only the edited function plus its summary-dependents.

``predict`` and ``check`` accept ``--incremental`` (with an optional
``--store-dir DIR`` for a cross-run on-disk store) to replay unchanged
callgraph components from the content-addressed summary store; output
is byte-identical to a cold run.

``predict``, ``ir``, ``ranges``, ``submit`` and (single-file) ``check``
read from stdin when FILE is ``-``.  ``predict``, ``opt``, ``check``,
``evaluate`` and ``submit`` accept ``--emit-metrics PATH`` to write a
machine-readable metrics JSON (schema in ``docs/OBSERVABILITY.md``;
``opt`` adds the ``passes`` key, ``submit`` fetches the daemon's
``server`` key).  ``evaluate`` and ``check`` accept ``--jobs N``;
outputs are byte-identical for every worker count (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import VRPConfig, VRPPredictor
from repro.ir import format_module, prepare_module
from repro.lang import compile_source
from repro.profiling import run_module


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _write_text_output(path: str, text: str, label: str = "report") -> None:
    """Write ``text`` to ``path`` with the CLI's uniform error contract.

    Every command that writes an artifact funnels through here: one
    error message shape (``error: cannot write <label>: ...``), one
    confirmation line (``<label> written to <path>``).
    """
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as error:
        raise SystemExit(f"error: cannot write {label}: {error}")
    print(f"{label} written to {path}")


def _emit_metrics(data, path: str) -> None:
    """Serialise a metrics document (MetricsReport or plain dict) to disk."""
    import json

    if hasattr(data, "to_json"):
        text = data.to_json() + "\n"
    else:
        text = json.dumps(data, indent=1, sort_keys=True) + "\n"
    _write_text_output(path, text, label="metrics")


def _parse_ints(text: Optional[str]) -> List[int]:
    if not text:
        return []
    return [int(part) for part in text.replace(",", " ").split()]


def _config_from_args(args: argparse.Namespace) -> VRPConfig:
    kwargs = dict(
        max_ranges=args.max_ranges,
        symbolic=not args.numeric,
        derive_loops=not args.no_derive,
        track_arrays=args.track_arrays,
        sanitize=getattr(args, "sanitize", False),
        context_depth=max(0, getattr(args, "context_depth", 0)),
        incremental=bool(getattr(args, "incremental", False)),
    )
    # Only force the field when asked; the default tracks REPRO_PERF.
    if getattr(args, "no_perf", False):
        kwargs["perf"] = False
    return VRPConfig(**kwargs)


def _incremental_store(args: argparse.Namespace):
    """The incremental summary store for this invocation, or ``None``.

    ``--incremental`` alone gets a process-local in-memory store (useful
    once per process only through ``watch``); ``--store-dir`` adds the
    on-disk tier so summaries survive across invocations.
    """
    if not getattr(args, "incremental", False):
        return None
    from repro.incremental import IncrementalStore

    return IncrementalStore(disk_dir=getattr(args, "store_dir", None))


def _prepare(args: argparse.Namespace):
    from repro.lang import LexError, LoweringError, ParseError

    try:
        module = compile_source(_read_source(args.file))
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {args.file}")
    except (LexError, ParseError, LoweringError) as error:
        raise SystemExit(f"error: {error}")
    ssa_infos = prepare_module(module)
    return module, ssa_infos


def cmd_predict(args: argparse.Namespace) -> int:
    module, ssa_infos = _prepare(args)
    predictor = VRPPredictor(
        config=_config_from_args(args),
        interprocedural=not args.intra,
        incremental_store=_incremental_store(args),
    )
    emit_metrics = getattr(args, "emit_metrics", None)
    if emit_metrics:
        from repro.observability import Tracer, build_metrics_report, use

        tracer = Tracer()
        with use(tracer):
            prediction = predictor.predict_module(module, ssa_infos)
    else:
        tracer = None
        prediction = predictor.predict_module(module, ssa_infos)
    from repro import rendering

    sys.stdout.write(
        rendering.branch_table(
            prediction.all_branches(), prediction.heuristic_branches()
        )
    )
    if emit_metrics:
        from repro.core import perf

        outcome = predictor.last_incremental
        report = build_metrics_report(
            prediction,
            tracer,
            program=module.name,
            perf_stats=perf.snapshot() if predictor.config.perf else None,
            incremental=outcome.as_metrics() if outcome is not None else None,
        )
        _emit_metrics(report, emit_metrics)
    return 0


def cmd_opt(args: argparse.Namespace) -> int:
    from repro.passes import (
        PIPELINES,
        PassPipeline,
        available_passes,
        create_pass,
        parse_passes,
    )

    if args.list_passes:
        print("passes:")
        for name in available_passes():
            print(f"  {name:<16s} {create_pass(name).describe()}")
        print()
        print("pipelines:")
        for name in sorted(PIPELINES):
            print(f"  {name:<16s} {' -> '.join(PIPELINES[name])}")
        return 0
    if not args.file:
        raise SystemExit("error: FILE is required unless --list-passes is given")

    config = _config_from_args(args)
    if args.verify_ir:
        config.verify_ir = True
    try:
        if args.passes:
            pipeline = PassPipeline(parse_passes(args.passes), config=config)
        else:
            pipeline = PassPipeline.named(args.pipeline, config=config)
    except (KeyError, ValueError) as error:
        raise SystemExit(f"error: {error.args[0]}")

    module, ssa_infos = _prepare(args)
    emit_metrics = getattr(args, "emit_metrics", None)
    from repro.ir import VerificationError

    try:
        if emit_metrics:
            from repro.observability import Tracer, build_metrics_report, use

            tracer = Tracer()
            with use(tracer):
                result = pipeline.run(module, ssa_infos)
                prediction = result.cache.prediction()
        else:
            tracer = None
            result = pipeline.run(module, ssa_infos)
    except VerificationError as error:
        raise SystemExit(f"error: {error}")

    print(f"{'pass':<16s} {'changed':>7s} {'seconds':>10s} {'hits':>5s} {'miss':>5s} {'inval':>6s}")
    for run in result.runs:
        print(
            f"{run.name:<16s} {run.changed:>7d} {run.seconds:>10.6f} "
            f"{run.cache_hits:>5d} {run.cache_misses:>5d} {run.invalidated:>6d}"
        )
    print(f"total rewrites: {result.changed}")
    if config.verify_ir:
        print("IR verified after each mutating pass")
    if args.print_ir:
        print()
        print(format_module(module))
    if emit_metrics:
        from repro.core import perf

        report = build_metrics_report(
            prediction,
            tracer,
            program=module.name,
            perf_stats=perf.snapshot() if config.perf else None,
            passes=result.passes_metrics(),
        )
        _emit_metrics(report, emit_metrics)
    return 0


_CHECK_EXTENSIONS = {"text": "txt", "json": "json", "sarif": "sarif"}


def _check_file(item):
    """Compile, analyse, and render diagnostics for one file.

    Module-level (picklable) so ``--jobs N`` can run it in a process
    pool; the sequential path calls the same function, which keeps the
    rendered reports byte-identical for every worker count.  Returns a
    plain dict; compile errors come back under an ``error`` key instead
    of raising, so one bad file fails the run cleanly from the parent.
    """
    path, config, intra, fmt, with_metrics, fail_on, store_dir = item
    from repro.diagnostics import check_module, render_json, render_sarif, render_text
    from repro.lang import LexError, LoweringError, ParseError

    try:
        module = compile_source(_read_source(path))
    except FileNotFoundError:
        return {"path": path, "error": f"no such file: {path}"}
    except (LexError, ParseError, LoweringError) as error:
        return {"path": path, "error": str(error)}
    ssa_infos = prepare_module(module)
    # The store is built per worker (it holds a lock and is not
    # picklable); the on-disk tier under ``store_dir`` is what the
    # worker processes actually share.
    store = None
    if config.incremental:
        from repro.incremental import IncrementalStore

        store = IncrementalStore(disk_dir=store_dir)
    predictor = VRPPredictor(
        config=config, interprocedural=not intra, incremental_store=store
    )
    program = module.name if path == "-" else path
    if with_metrics:
        from repro.core import perf
        from repro.observability import Tracer, build_metrics_report, use

        tracer = Tracer()
        with use(tracer):
            prediction = predictor.predict_module(module, ssa_infos)
            report = check_module(module, prediction, program=program)
        outcome = predictor.last_incremental
        metrics = build_metrics_report(
            prediction,
            tracer,
            program=program,
            findings=report.findings,
            perf_stats=perf.snapshot() if predictor.config.perf else None,
            incremental=outcome.as_metrics() if outcome is not None else None,
        ).to_dict()
    else:
        prediction = predictor.predict_module(module, ssa_infos)
        report = check_module(module, prediction, program=program)
        metrics = None

    if fmt == "json":
        rendered = render_json(report)
    elif fmt == "sarif":
        rendered = render_sarif(report, artifact_uri=program)
    else:
        rendered = render_text(report)
    return {
        "path": path,
        "rendered": rendered,
        "metrics": metrics,
        "fails": report.fails(fail_on),
    }


def _stem_of(path: str) -> str:
    import os

    return os.path.splitext(os.path.basename(path))[0]


def cmd_check(args: argparse.Namespace) -> int:
    import os

    files = args.files
    jobs = max(1, args.jobs)
    output_dir = args.output_dir
    emit_metrics = getattr(args, "emit_metrics", None)
    multi = len(files) > 1 or output_dir is not None
    if "-" in files and (multi or jobs > 1):
        raise SystemExit("error: stdin ('-') requires a single file and --jobs 1")
    if args.output and multi:
        raise SystemExit(
            "error: --output is single-file; use --output-dir for many files"
        )
    if multi and (output_dir or emit_metrics):
        # Per-file outputs are named by stem: two inputs with the same
        # basename would silently overwrite each other.
        stems: dict = {}
        for path in files:
            stem = _stem_of(path)
            if stem in stems:
                raise SystemExit(
                    f"error: duplicate output stem {stem!r} "
                    f"({stems[stem]} and {path}); rename one input"
                )
            stems[stem] = path

    config = _config_from_args(args)
    store_dir = getattr(args, "store_dir", None)
    items = [
        (
            path,
            config,
            args.intra,
            args.format,
            bool(emit_metrics),
            args.fail_on,
            store_dir,
        )
        for path in files
    ]
    if jobs > 1 and len(items) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # map() yields in submission order: deterministic output.
            results = list(pool.map(_check_file, items))
    else:
        results = [_check_file(item) for item in items]
    for result in results:
        if "error" in result:
            raise SystemExit(f"error: {result['error']}")

    extension = _CHECK_EXTENSIONS[args.format]
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
    if emit_metrics and multi:
        os.makedirs(emit_metrics, exist_ok=True)
    failed = False
    for result in results:
        failed = failed or result["fails"]
        if output_dir is not None:
            target = os.path.join(
                output_dir, f"{_stem_of(result['path'])}.{extension}"
            )
            _write_text_output(
                target, result["rendered"] + "\n", label=f"{args.format} report"
            )
        elif args.output:
            _write_text_output(
                args.output, result["rendered"] + "\n", label=f"{args.format} report"
            )
        else:
            if len(results) > 1:
                print(f"== {result['path']} ==")
            print(result["rendered"])
    if emit_metrics:
        for result in results:
            if multi:
                # With many files --emit-metrics names a directory.
                target = os.path.join(
                    emit_metrics, f"{_stem_of(result['path'])}.metrics.json"
                )
            else:
                target = emit_metrics
            _emit_metrics(result["metrics"], target)

    return 1 if failed else 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability.instrument import trace_analysis

    try:
        source = _read_source(args.file)
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {args.file}")
    from repro.lang import LexError, LoweringError, ParseError

    try:
        session = trace_analysis(
            source,
            config=_config_from_args(args),
            interprocedural=not args.intra,
            record_events=not args.no_events,
        )
    except (LexError, ParseError, LoweringError) as error:
        raise SystemExit(f"error: {error}")
    tracer = session.tracer

    print("phase timings:")
    print(f"  {'phase':<22s} {'count':>7s} {'seconds':>10s}")
    for timing in tracer.phase_timings().values():
        print(f"  {timing.name:<22s} {timing.count:>7d} {timing.seconds:>10.6f}")

    print()
    print("event counts:")
    for kind in sorted(tracer.event_counts):
        print(f"  {kind:<22s} {tracer.event_counts[kind]:>7d}")
    if tracer.dropped_events:
        print(f"  (dropped {tracer.dropped_events} events past the cap)")

    print()
    print("counters:")
    for name, value in session.prediction.counters.as_dict().items():
        print(f"  {name:<22s} {value:>7d}")

    if args.jsonl:
        import json

        try:
            with open(args.jsonl, "w", encoding="utf-8") as handle:
                for event in tracer.events:
                    handle.write(json.dumps(event.as_dict()) + "\n")
        except OSError as error:
            raise SystemExit(f"error: cannot write event stream: {error}")
        print()
        print(f"{len(tracer.events)} events written to {args.jsonl}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.observability.explain import explain_module

    module, ssa_infos = _prepare(args)
    explanations = explain_module(
        module,
        ssa_infos,
        config=_config_from_args(args),
        interprocedural=not args.intra,
    )
    if not explanations:
        print("no conditional branches")
        return 0
    function, _, label = args.branch.partition("/")
    selected = [
        explanation
        for (fn, lbl), explanation in sorted(explanations.items())
        if (fn == function or (not label and lbl == function))
        and (not label or lbl == label)
    ]
    if not selected:
        known = ", ".join(f"{fn}/{lbl}" for fn, lbl in sorted(explanations))
        raise SystemExit(
            f"error: no branch matches {args.branch!r}; known branches: {known}"
        )
    for index, explanation in enumerate(selected):
        if index:
            print()
        print(explanation.render())
    return 0


def cmd_ir(args: argparse.Namespace) -> int:
    from repro import rendering

    module, _ = _prepare(args)
    sys.stdout.write(rendering.ir_dump(module))
    return 0


def cmd_ranges(args: argparse.Namespace) -> int:
    from repro import rendering

    module, ssa_infos = _prepare(args)
    predictor = VRPPredictor(
        config=_config_from_args(args), interprocedural=not args.intra
    )
    prediction = predictor.predict_module(module, ssa_infos)
    sys.stdout.write(rendering.ranges_listing(prediction))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro import rendering

    module, _ = _prepare(args)
    result = run_module(
        module,
        args=_parse_ints(args.args),
        input_values=_parse_ints(args.inputs),
        max_steps=args.max_steps,
    )
    sys.stdout.write(rendering.run_report(result, profile=args.profile))
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads

    print(f"{'name':<12s} {'suite':<6s} description")
    for workload in all_workloads():
        print(f"{workload.name:<12s} {workload.suite:<6s} {workload.description}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evalharness import (
        evaluate_workload,
        format_cdf_table,
        format_suite_figure,
        prepare_workload,
        run_suite,
    )
    from repro.evalharness.accuracy import error_cdf
    from repro.workloads import get_workload, suite

    emit_metrics = getattr(args, "emit_metrics", None)
    context_depth = max(0, getattr(args, "context_depth", 0))
    if args.workload:
        workload = get_workload(args.workload)
        prepared = prepare_workload(workload)
        evaluation = evaluate_workload(
            workload, prepared=prepared, context_depth=context_depth
        )
        series = {
            name: error_cdf(records, weighted=args.weighted)
            for name, records in evaluation.records.items()
        }
        print(format_cdf_table(series, title=f"workload {workload.name}"))
        if emit_metrics:
            from repro.core import VRPConfig
            from repro.evalharness.runner import workload_metrics

            _emit_metrics(
                workload_metrics(
                    prepared, VRPConfig(context_depth=context_depth)
                ),
                emit_metrics,
            )
        return 0
    suite_name = args.suite or "fp"
    if suite_name == "all":
        workloads = suite("int") + suite("fp")
    else:
        workloads = suite(suite_name)
    # One pass prepares, scores, and (when asked) collects metrics.
    evaluation, reports = run_suite(
        workloads,
        suite_name,
        jobs=max(1, args.jobs),
        with_metrics=bool(emit_metrics),
        context_depth=context_depth,
    )
    print(
        format_suite_figure(
            evaluation,
            weighted=args.weighted,
            title=f"{suite_name} suite",
        )
    )
    if emit_metrics:
        _emit_metrics({"suite": suite_name, "workloads": reports}, emit_metrics)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve_daemon

    base_options = {}
    if args.intra:
        base_options["intra"] = True
    if args.numeric:
        base_options["numeric"] = True
    if args.no_derive:
        base_options["no_derive"] = True
    if args.track_arrays:
        base_options["track_arrays"] = True
    if args.max_ranges != 4:
        base_options["max_ranges"] = args.max_ranges
    if args.context_depth:
        base_options["context_depth"] = args.context_depth
    return serve_daemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache_dir=args.cache_dir,
        memory_cache_entries=args.memory_cache,
        timeout_s=args.timeout,
        max_request_bytes=args.max_request_bytes,
        drain_timeout_s=args.drain_timeout,
        base_options=base_options or None,
        verbose=args.verbose,
        shards=args.shards,
        incremental=args.incremental,
    )


def _submit_verbose_line(response: dict) -> str:
    """The ``--verbose`` provenance line for one submit response.

    Always carries the full provenance -- key, status, cache tier,
    degradation (with the daemon's reason when it gave one), latency,
    and trace id -- so degraded and error responses explain themselves
    the same way cached hits do.
    """
    line = (
        f"# key={response.get('key')} status={response.get('status')} "
        f"cached={response.get('cached')} degraded={response.get('degraded')} "
        f"elapsed_ms={response.get('elapsed_ms')}"
    )
    reason = response.get("degraded_reason")
    if reason:
        line += f" reason={reason!r}"
    error = response.get("error")
    if error:
        line += f" error={error!r}"
    trace_id = response.get("trace_id")
    if trace_id:
        line += f" trace_id={trace_id}"
    return line


def _submit_trace_events(context, files, responses, started_us, elapsed_us):
    """Chrome trace events for one submit invocation.

    The client span covers the whole exchange on tid 1; each response's
    shipped server spans (relative offsets) are re-based at the client's
    request-start instant on their own tid, which nests them under the
    client span without synchronised clocks.
    """
    from repro.observability import chrometrace

    events = [
        chrometrace.metadata_event("process_name", 1, "repro submit"),
        chrometrace.metadata_event("thread_name", 1, "client", tid=1),
    ]
    events.append(
        chrometrace.complete_event(
            f"submit:{','.join(files)}",
            started_us,
            elapsed_us,
            tid=1,
            args={"trace_id": context.trace_id},
        )
    )
    for index, (path, response) in enumerate(zip(files, responses)):
        wire_spans = response.get("trace")
        if not isinstance(wire_spans, list) or not wire_spans:
            continue
        tid = 2 + index
        events.append(
            chrometrace.metadata_event(
                "thread_name", 1, f"server:{path}", tid=tid
            )
        )
        events.extend(
            chrometrace.events_from_wire_spans(
                wire_spans,
                started_us,
                tid=tid,
                trace_id=response.get("trace_id") or context.trace_id,
            )
        )
    return events


def cmd_submit(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.observability import chrometrace
    from repro.observability import context as tracecontext
    from repro.server.client import ServeClient, ServerError

    files = args.files
    if "-" in files and len(files) > 1:
        raise SystemExit("error: stdin ('-') must be the only input")
    command = args.command
    options: dict = {}
    if args.intra:
        options["intra"] = True
    if args.numeric:
        options["numeric"] = True
    if args.no_derive:
        options["no_derive"] = True
    if args.track_arrays:
        options["track_arrays"] = True
    if args.max_ranges != 4:
        options["max_ranges"] = args.max_ranges
    if args.context_depth:
        options["context_depth"] = args.context_depth
    if command == "check":
        options["format"] = args.format
        options["fail_on"] = args.fail_on
    if command == "run":
        if args.args:
            options["args"] = _parse_ints(args.args)
        if args.inputs:
            options["inputs"] = _parse_ints(args.inputs)
        options["max_steps"] = args.max_steps
        if args.profile:
            options["profile"] = True
    if args.trace_out:
        options["trace"] = True

    items = []
    for path in files:
        try:
            source = _read_source(path)
        except FileNotFoundError:
            raise SystemExit(f"error: no such file: {path}")
        items.append(
            {"command": command, "source": source, "name": path, "options": options}
        )
    client = ServeClient(args.host, args.port, timeout=args.http_timeout)
    # One trace id for the whole invocation: the client mints it, the
    # header carries it, the daemon's access log and events echo it.
    context = tracecontext.mint()
    started_us = time.perf_counter() * 1e6
    try:
        with tracecontext.use(context):
            if len(items) == 1:
                responses = [
                    client.analyze(
                        command, items[0]["source"], name=items[0]["name"],
                        options=options,
                    )
                ]
            elif args.jobs > 1:
                # Client-side fan-out: N concurrent independent
                # requests, results in submission order, so stdout is
                # byte-identical to --jobs 1 (asserted in tests).
                responses = client.analyze_many(items, jobs=args.jobs)
            else:
                responses = client.batch(items)
    except ServerError as error:
        suffix = f" (HTTP {error.status})" if error.status else ""
        raise SystemExit(f"error: {error}{suffix}")
    elapsed_us = time.perf_counter() * 1e6 - started_us

    exit_code = 0
    for path, response in zip(files, responses):
        if len(responses) > 1:
            print(f"== {path} ==")
        if response.get("status") == "error":
            print(f"error: {response.get('error')}", file=sys.stderr)
        sys.stdout.write(response.get("output") or "")
        if args.verbose:
            print(_submit_verbose_line(response), file=sys.stderr)
        exit_code = max(exit_code, int(response.get("exit_code", 0)))
    if args.trace_out:
        events = _submit_trace_events(
            context, files, responses, started_us, elapsed_us
        )
        document = chrometrace.chrome_trace_document(
            events, trace_id=context.trace_id
        )
        _write_text_output(
            args.trace_out,
            json.dumps(document, indent=1) + "\n",
            label="trace",
        )
    if args.emit_metrics:
        try:
            _emit_metrics(client.metricsz(), args.emit_metrics)
        except ServerError as error:
            raise SystemExit(f"error: {error}")
    return exit_code


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.server.client import ServeClient, ServerError
    from repro.server.loadgen import dump_report, format_report, run_load

    client = ServeClient(args.host, args.port, timeout=args.http_timeout)
    try:
        client.healthz()
    except ServerError as error:
        raise SystemExit(f"error: {error}")
    reports = []
    for workload in args.workloads.split(","):
        workload = workload.strip()
        report = run_load(
            args.host,
            args.port,
            requests=args.requests,
            concurrency=args.concurrency,
            command=args.command,
            workload=workload,
            hot_set=args.hot_set,
            corpus_offset=args.corpus_offset,
            http_timeout=args.http_timeout,
        )
        reports.append(report)
        print(format_report(report))
        print()
    if args.emit:
        document = reports[0] if len(reports) == 1 else {"runs": reports}
        if args.emit == "-":
            print(json.dumps(document, indent=1, sort_keys=True))
        else:
            dump_report(document, args.emit)
            print(f"loadgen: report written to {args.emit}", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.lang import LexError, LoweringError, ParseError
    from repro.observability import chrometrace
    from repro.observability import context as tracecontext
    from repro.observability.profiler import profile_source
    from repro.passes import parse_passes

    try:
        source = _read_source(args.file)
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {args.file}")
    try:
        passes = parse_passes(args.passes) if args.passes else None
    except ValueError as error:
        raise SystemExit(f"error: {error.args[0]}")
    context = tracecontext.mint()
    try:
        with tracecontext.use(context):
            session = profile_source(
                source,
                config=_config_from_args(args),
                pipeline=args.pipeline,
                passes=passes,
                max_events=args.max_events,
            )
    except (LexError, ParseError, LoweringError) as error:
        raise SystemExit(f"error: {error}")
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}")

    report = session.report
    sys.stdout.write(report.render_text(top=args.top))
    if args.collapsed:
        _write_text_output(
            args.collapsed, report.render_collapsed(), label="collapsed stacks"
        )
    if args.trace_out:
        wire_spans = chrometrace.serialize_spans(session.tracer.spans)
        events = [
            chrometrace.metadata_event("process_name", 1, "repro profile"),
        ]
        events.extend(
            chrometrace.events_from_wire_spans(
                wire_spans, 0.0, trace_id=context.trace_id
            )
        )
        document = chrometrace.chrome_trace_document(
            events, trace_id=context.trace_id
        )
        _write_text_output(
            args.trace_out, json.dumps(document, indent=1) + "\n", label="trace"
        )
    if args.emit_metrics:
        from repro.core import perf
        from repro.observability import build_metrics_report

        with tracecontext.use(context):
            metrics = build_metrics_report(
                session.prediction,
                session.tracer,
                program=report.program,
                perf_stats=perf.snapshot() if _config_from_args(args).perf else None,
                profile=report.as_metrics(),
            )
        _emit_metrics(metrics, args.emit_metrics)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.diagnostics import check_module, render_json, render_sarif, render_text
    from repro.incremental import IncrementalStore
    from repro.incremental.watch import run_watch
    from repro.lang import LexError, LoweringError, ParseError
    from repro import rendering

    if "-" in args.files:
        raise SystemExit("error: watch needs real files, not stdin ('-')")
    config = _config_from_args(args)
    config.incremental = True  # the whole point of the watch loop
    # One store for the whole loop: the in-memory tier is what makes
    # the second and later rechecks cheap; --store-dir persists it.
    store = IncrementalStore(disk_dir=getattr(args, "store_dir", None))
    command = args.command

    def render(path: str, source: str):
        try:
            module = compile_source(source)
        except (LexError, ParseError, LoweringError) as error:
            return "", None, str(error)
        ssa_infos = prepare_module(module)
        predictor = VRPPredictor(
            config=config,
            interprocedural=not args.intra,
            incremental_store=store,
        )
        prediction = predictor.predict_module(module, ssa_infos)
        if command == "check":
            report = check_module(module, prediction, program=path)
            if args.format == "json":
                text = render_json(report) + "\n"
            elif args.format == "sarif":
                text = render_sarif(report, artifact_uri=path) + "\n"
            else:
                text = render_text(report) + "\n"
        elif command == "ranges":
            text = rendering.ranges_listing(prediction)
        else:
            text = rendering.branch_table(
                prediction.all_branches(), prediction.heuristic_branches()
            )
        return text, predictor.last_incremental, None

    return run_watch(
        args.files,
        render,
        interval_s=max(0.05, args.interval),
        max_cycles=args.max_cycles,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Value range propagation (Patterson, PLDI 1995) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_analysis_flags(
        p: argparse.ArgumentParser,
        multi_file: bool = False,
        optional_file: bool = False,
    ) -> None:
        if multi_file:
            p.add_argument(
                "files",
                nargs="+",
                help="toy-language source files ('-' for stdin, single file only)",
            )
        elif optional_file:
            p.add_argument(
                "file",
                nargs="?",
                help="toy-language source file ('-' for stdin)",
            )
        else:
            p.add_argument("file", help="toy-language source file ('-' for stdin)")
        p.add_argument("--intra", action="store_true", help="disable interprocedural analysis")
        p.add_argument("--numeric", action="store_true", help="disable symbolic ranges")
        p.add_argument("--no-derive", action="store_true", help="disable loop derivation")
        p.add_argument("--track-arrays", action="store_true", help="track array contents")
        p.add_argument("--max-ranges", type=int, default=4, help="ranges per variable (default 4)")
        p.add_argument(
            "--context-depth",
            type=int,
            default=0,
            metavar="K",
            help="k-limited context-sensitive interprocedural analysis "
            "(default 0 = context-insensitive)",
        )
        p.add_argument(
            "--sanitize",
            action="store_true",
            help="validate engine lattice invariants while propagating",
        )
        p.add_argument(
            "--no-perf",
            action="store_true",
            help="disable the interning/memoization performance layer",
        )

    def add_incremental_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--incremental",
            action="store_true",
            help="replay unchanged functions from the content-addressed "
            "summary store (byte-identical output; docs/INCREMENTAL.md)",
        )
        p.add_argument(
            "--store-dir",
            metavar="DIR",
            help="on-disk tier for the incremental summary store "
            "(summaries survive across invocations)",
        )

    predict = sub.add_parser("predict", help="predict every conditional branch")
    add_analysis_flags(predict)
    add_incremental_flags(predict)
    predict.add_argument(
        "--emit-metrics",
        metavar="PATH",
        help="write a metrics JSON (timings, counters, branch provenance)",
    )
    predict.set_defaults(handler=cmd_predict)

    opt_cmd = sub.add_parser(
        "opt", help="run a pass pipeline through the pass manager"
    )
    add_analysis_flags(opt_cmd, optional_file=True)
    opt_group = opt_cmd.add_mutually_exclusive_group()
    opt_group.add_argument(
        "--pipeline",
        default="optimize",
        metavar="NAME",
        help="named pipeline: predict, optimize, or diagnose (default optimize)",
    )
    opt_group.add_argument(
        "--passes",
        metavar="A,B,C",
        help="explicit comma-separated pass list (overrides --pipeline)",
    )
    opt_cmd.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and named pipelines, then exit",
    )
    opt_cmd.add_argument(
        "--verify-ir",
        action="store_true",
        help="verify the IR after every mutating pass",
    )
    opt_cmd.add_argument(
        "--print-ir",
        action="store_true",
        help="dump the IR after the pipeline ran",
    )
    opt_cmd.add_argument(
        "--emit-metrics",
        metavar="PATH",
        help="write a metrics JSON including per-pass telemetry (schema v4)",
    )
    opt_cmd.set_defaults(handler=cmd_opt)

    ranges_cmd = sub.add_parser("ranges", help="print final value ranges")
    add_analysis_flags(ranges_cmd)
    ranges_cmd.set_defaults(handler=cmd_ranges)

    check_cmd = sub.add_parser(
        "check", help="static diagnostics from the computed ranges"
    )
    add_analysis_flags(check_cmd, multi_file=True)
    add_incremental_flags(check_cmd)
    check_cmd.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default text)",
    )
    check_cmd.add_argument(
        "--fail-on",
        choices=["error", "warning", "never"],
        default="error",
        help="exit non-zero when a finding at/above this severity exists",
    )
    check_cmd.add_argument(
        "--output", metavar="PATH", help="write the report to a file (single input)"
    )
    check_cmd.add_argument(
        "--output-dir",
        metavar="DIR",
        help="write one report per input file as DIR/<stem>.<format>",
    )
    check_cmd.add_argument(
        "--emit-metrics",
        metavar="PATH",
        help=(
            "write a metrics JSON including the findings "
            "(a directory of <stem>.metrics.json files with many inputs)"
        ),
    )
    check_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="check files over N worker processes (same output as N=1)",
    )
    check_cmd.set_defaults(handler=cmd_check)

    watch_cmd = sub.add_parser(
        "watch",
        help="re-analyse files on change via the incremental summary store",
    )
    add_analysis_flags(watch_cmd, multi_file=True)
    watch_cmd.add_argument(
        "--command",
        choices=["predict", "check", "ranges"],
        default="predict",
        help="what to re-render on each change (default predict)",
    )
    watch_cmd.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="check output format (default text)",
    )
    watch_cmd.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval (default 0.5)",
    )
    watch_cmd.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help="stop after N poll cycles (default: run until interrupted)",
    )
    watch_cmd.add_argument(
        "--store-dir",
        metavar="DIR",
        help="on-disk tier for the incremental summary store",
    )
    watch_cmd.set_defaults(handler=cmd_watch)

    trace_cmd = sub.add_parser(
        "trace", help="phase timings and the propagation event stream"
    )
    add_analysis_flags(trace_cmd)
    trace_cmd.add_argument(
        "--jsonl", metavar="PATH", help="dump every trace event as JSONL"
    )
    trace_cmd.add_argument(
        "--no-events",
        action="store_true",
        help="record phase timings and event counts only",
    )
    trace_cmd.set_defaults(handler=cmd_trace)

    explain_cmd = sub.add_parser(
        "explain", help="explain one branch prediction (why this probability?)"
    )
    add_analysis_flags(explain_cmd)
    explain_cmd.add_argument(
        "branch",
        help="branch to explain: FUNCTION/LABEL, LABEL, or FUNCTION (all its branches)",
    )
    explain_cmd.set_defaults(handler=cmd_explain)

    ir_cmd = sub.add_parser("ir", help="dump canonicalised SSA IR")
    ir_cmd.add_argument("file", help="toy-language source file ('-' for stdin)")
    ir_cmd.set_defaults(handler=cmd_ir)

    run_cmd = sub.add_parser("run", help="interpret a program")
    run_cmd.add_argument("file", help="toy-language source file ('-' for stdin)")
    run_cmd.add_argument("--args", default="", help="main() arguments, comma separated")
    run_cmd.add_argument("--inputs", default="", help="input() stream, comma separated")
    run_cmd.add_argument("--max-steps", type=int, default=5_000_000)
    run_cmd.add_argument("--profile", action="store_true", help="print branch profile")
    run_cmd.set_defaults(handler=cmd_run)

    workloads_cmd = sub.add_parser("workloads", help="list benchmark workloads")
    workloads_cmd.set_defaults(handler=cmd_workloads)

    evaluate_cmd = sub.add_parser("evaluate", help="score predictors (figures 7/8)")
    evaluate_cmd.add_argument("--workload", help="one workload by name")
    evaluate_cmd.add_argument(
        "--suite",
        choices=["int", "fp", "inter", "all"],
        help="whole suite ('all' = int + fp)",
    )
    evaluate_cmd.add_argument("--weighted", action="store_true")
    evaluate_cmd.add_argument(
        "--context-depth",
        type=int,
        default=0,
        metavar="K",
        help="k-limited context sensitivity for the VRP lines (default 0)",
    )
    evaluate_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate workloads over N worker processes (same output as N=1)",
    )
    evaluate_cmd.add_argument(
        "--emit-metrics",
        metavar="PATH",
        help="write VRP metrics JSON for the evaluated workload(s)",
    )
    evaluate_cmd.set_defaults(handler=cmd_evaluate)

    serve_cmd = sub.add_parser(
        "serve", help="long-running prediction daemon (HTTP JSON API)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8077, help="TCP port (0 = kernel-assigned)"
    )
    serve_cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="analysis shard processes (default: one per CPU core; "
        "0 = single-process threaded tier)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=4, metavar="K",
        help="analysis worker threads for --shards 0 (default 4)",
    )
    serve_cmd.add_argument(
        "--queue-size", type=int, default=64, metavar="N",
        help="waiting-request capacity (per shard) before 503 "
        "backpressure (default 64)",
    )
    serve_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk result cache (warm results survive restarts)",
    )
    serve_cmd.add_argument(
        "--memory-cache", type=int, default=1024, metavar="N",
        help="in-memory result cache entries (default 1024)",
    )
    serve_cmd.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request analysis deadline; past it the response "
        "degrades to heuristics-only prediction (default: none)",
    )
    serve_cmd.add_argument(
        "--max-request-bytes", type=int, default=1 << 20, metavar="N",
        help="largest accepted request body (default 1 MiB)",
    )
    serve_cmd.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="grace period for in-flight requests on SIGTERM (default 30)",
    )
    serve_cmd.add_argument(
        "--incremental",
        action="store_true",
        help="consult the per-function summary store on whole-file "
        "cache misses (disk tier under <cache-dir>/incremental)",
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_cmd.add_argument("--intra", action="store_true", help=argparse.SUPPRESS)
    serve_cmd.add_argument("--numeric", action="store_true", help=argparse.SUPPRESS)
    serve_cmd.add_argument("--no-derive", action="store_true", help=argparse.SUPPRESS)
    serve_cmd.add_argument(
        "--track-arrays", action="store_true", help=argparse.SUPPRESS
    )
    serve_cmd.add_argument(
        "--max-ranges", type=int, default=4, help=argparse.SUPPRESS
    )
    serve_cmd.add_argument(
        "--context-depth", type=int, default=0, help=argparse.SUPPRESS
    )
    serve_cmd.set_defaults(handler=cmd_serve)

    submit_cmd = sub.add_parser(
        "submit", help="send programs to a running repro serve daemon"
    )
    add_analysis_flags(submit_cmd, multi_file=True)
    submit_cmd.add_argument(
        "--command",
        choices=["predict", "check", "ranges", "ir", "run"],
        default="predict",
        help="what to ask the daemon for (default predict)",
    )
    submit_cmd.add_argument("--host", default="127.0.0.1", help="daemon address")
    submit_cmd.add_argument(
        "--port", type=int, default=8077, help="daemon port (default 8077)"
    )
    submit_cmd.add_argument(
        "--http-timeout", type=float, default=60.0, metavar="SECONDS",
        help="client-side HTTP timeout (default 60)",
    )
    submit_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent submissions (client-side fan-out; results are "
        "printed in file order, byte-identical to --jobs 1)",
    )
    submit_cmd.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="check output format (default text)",
    )
    submit_cmd.add_argument(
        "--fail-on",
        choices=["error", "warning", "never"],
        default="error",
        help="check exit-code gate (default error)",
    )
    submit_cmd.add_argument("--args", default="", help="run: main() arguments")
    submit_cmd.add_argument("--inputs", default="", help="run: input() stream")
    submit_cmd.add_argument("--max-steps", type=int, default=5_000_000)
    submit_cmd.add_argument(
        "--profile", action="store_true", help="run: include the branch profile"
    )
    submit_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="print cache tier / degradation / latency per response (stderr)",
    )
    submit_cmd.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "request server-side spans and write a Chrome trace-event "
            "JSON (chrome://tracing, Perfetto) for the exchange"
        ),
    )
    submit_cmd.add_argument(
        "--emit-metrics",
        metavar="PATH",
        help="fetch the daemon's /metricsz document (schema v6) into PATH",
    )
    submit_cmd.set_defaults(handler=cmd_submit)

    loadgen_cmd = sub.add_parser(
        "loadgen", help="drive load at a running daemon and measure"
    )
    loadgen_cmd.add_argument("--host", default="127.0.0.1", help="daemon address")
    loadgen_cmd.add_argument(
        "--port", type=int, default=8077, help="daemon port (default 8077)"
    )
    loadgen_cmd.add_argument(
        "--requests", type=int, default=200, metavar="N",
        help="requests per workload (default 200)",
    )
    loadgen_cmd.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="closed-loop client threads (default 8)",
    )
    loadgen_cmd.add_argument(
        "--command",
        choices=["predict", "check", "ranges", "ir", "run"],
        default="predict",
        help="endpoint to drive (default predict)",
    )
    loadgen_cmd.add_argument(
        "--workloads", default="cold,hot,mixed", metavar="LIST",
        help="comma-separated workloads: cold, hot, mixed "
        "(default all three)",
    )
    loadgen_cmd.add_argument(
        "--hot-set", type=int, default=8, metavar="N",
        help="working-set size for hot/mixed workloads (default 8)",
    )
    loadgen_cmd.add_argument(
        "--corpus-offset", type=int, default=0, metavar="N",
        help="shift the program corpus (fresh offset = cold caches)",
    )
    loadgen_cmd.add_argument(
        "--http-timeout", type=float, default=60.0, metavar="SECONDS",
        help="client-side HTTP timeout (default 60)",
    )
    loadgen_cmd.add_argument(
        "--emit", metavar="PATH",
        help="write the JSON load report to PATH ('-' for stdout)",
    )
    loadgen_cmd.set_defaults(handler=cmd_loadgen)

    profile_cmd = sub.add_parser(
        "profile", help="per-pass and per-analysis self/cumulative profile"
    )
    add_analysis_flags(profile_cmd)
    profile_group = profile_cmd.add_mutually_exclusive_group()
    profile_group.add_argument(
        "--pipeline",
        default="predict",
        metavar="NAME",
        help="named pipeline to profile (default predict)",
    )
    profile_group.add_argument(
        "--passes",
        metavar="A,B,C",
        help="explicit comma-separated pass list (overrides --pipeline)",
    )
    profile_cmd.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="hot transfer functions to list (default 10)",
    )
    profile_cmd.add_argument(
        "--collapsed",
        metavar="PATH",
        help="write collapsed stacks (flamegraph.pl / speedscope input)",
    )
    profile_cmd.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the span tree as Chrome trace-event JSON",
    )
    profile_cmd.add_argument(
        "--max-events",
        type=int,
        default=1_000_000,
        metavar="N",
        help="event-stream retention cap (default 1000000)",
    )
    profile_cmd.add_argument(
        "--emit-metrics",
        metavar="PATH",
        help="write a metrics JSON including the 'profile' key (schema v6)",
    )
    profile_cmd.set_defaults(handler=cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.core import SanitizerError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except SanitizerError as error:
        raise SystemExit(f"error: {error}")


if __name__ == "__main__":
    raise SystemExit(main())
