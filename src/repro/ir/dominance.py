"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" iterative dominator
algorithm and the Cytron et al. dominance-frontier computation used for
phi placement during SSA construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import CFG


class DominatorTree:
    """Immediate dominators, dominator tree children, dominance frontiers."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        entry = cfg.function.entry_label
        assert entry is not None
        self.entry = entry
        self.idom: Dict[str, Optional[str]] = {}
        self.children: Dict[str, List[str]] = {}
        self.frontier: Dict[str, Set[str]] = {}
        self._rpo_index: Dict[str, int] = {}
        self._compute_idoms()
        self._compute_children()
        self._compute_frontiers()

    # -- immediate dominators (Cooper-Harvey-Kennedy) -----------------------

    def _compute_idoms(self) -> None:
        rpo = self.cfg.reverse_postorder()
        self._rpo_index = {label: i for i, label in enumerate(rpo)}
        idom: Dict[str, Optional[str]] = {label: None for label in rpo}
        idom[self.entry] = self.entry
        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.entry:
                    continue
                preds = [p for p in self.cfg.predecessors[label] if idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(idom, new_idom, pred)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[self.entry] = None  # conventional: entry has no idom
        self.idom = idom

    def _intersect(self, idom: Dict[str, Optional[str]], a: str, b: str) -> str:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    def _compute_children(self) -> None:
        self.children = {label: [] for label in self.idom}
        for label, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(label)

    # -- dominance frontiers (Cytron et al.) --------------------------------

    def _compute_frontiers(self) -> None:
        self.frontier = {label: set() for label in self.idom}
        for label in self.idom:
            preds = self.cfg.predecessors[label]
            if len(preds) < 2:
                continue
            target_idom = self.idom[label]
            for pred in preds:
                runner: Optional[str] = pred
                while runner is not None and runner != target_idom and runner in self.idom:
                    self.frontier[runner].add(label)
                    runner = self.idom[runner]

    # -- queries -------------------------------------------------------------

    def dominates(self, a: str, b: str) -> bool:
        """True when block ``a`` dominates block ``b`` (reflexively)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def dom_tree_preorder(self) -> List[str]:
        order: List[str] = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children[node]))
        return order

    def iterated_frontier(self, blocks: Set[str]) -> Set[str]:
        """DF+ of a set of blocks -- where phis must be placed."""
        result: Set[str] = set()
        worklist = [b for b in blocks if b in self.frontier]
        while worklist:
            block = worklist.pop()
            for frontier_block in self.frontier[block]:
                if frontier_block not in result:
                    result.add(frontier_block)
                    worklist.append(frontier_block)
        return result
