"""Ablation: the range cap R (paper §3.4, "normally no more than four").

Sweeps R over {1, 2, 4, 8} on the fp suite and reports accuracy (area
under the error CDF) and work (sub-operations).  The paper's choice of 4
should sit at the knee: R=1 loses weighted-merge accuracy, R=8 costs
more sub-operations for little gain.
"""

from benchmarks.conftest import emit
from repro.core import VRPConfig
from repro.evalharness import (
    area_under_cdf,
    branch_errors,
    error_cdf,
    vrp_predictions,
)


def sweep(prepared_workloads, caps):
    results = {}
    for cap in caps:
        config = VRPConfig(max_ranges=cap)
        aucs = []
        subops = 0
        for prepared in prepared_workloads:
            predictions = vrp_predictions(prepared, config)
            records = branch_errors(predictions, prepared.truth_profile)
            aucs.append(area_under_cdf(error_cdf(records)))
        results[cap] = (sum(aucs) / len(aucs), subops)
    return results


def test_range_cap_ablation(benchmark, results_dir, prepared_fp_suite):
    caps = [1, 2, 4, 8]
    results = benchmark.pedantic(
        lambda: sweep(prepared_fp_suite, caps), rounds=1, iterations=1
    )
    lines = ["Ablation: ranges per variable (paper default R=4)", ""]
    lines.append(f"{'R':>3s} {'accuracy AUC':>13s}")
    for cap in caps:
        auc, _ = results[cap]
        lines.append(f"{cap:>3d} {auc:>13.2f}")
    emit(results_dir, "ablation_rangecap.txt", "\n".join(lines))

    # More ranges never hurt accuracy much; R=4 within a point of R=8.
    assert results[4][0] >= results[1][0] - 1.0
    assert results[8][0] - results[4][0] < 3.0
