"""CFG construction and transformation tests."""

import pytest

from repro.ir.cfg import CFG, remove_unreachable_blocks, split_critical_edges
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Cmp, Copy, Jump, Phi, Return
from repro.ir.values import Constant, Temp


def diamond() -> Function:
    """entry -> (left | right) -> join -> exit"""
    function = Function("diamond", ["n"])
    entry = function.add_block(BasicBlock("entry"))
    left = function.add_block(BasicBlock("left"))
    right = function.add_block(BasicBlock("right"))
    join = function.add_block(BasicBlock("join"))
    entry.append(Cmp(Temp("c"), "lt", Temp("n"), Constant(0)))
    entry.append(Branch(Temp("c"), "left", "right"))
    left.append(Jump("join"))
    right.append(Jump("join"))
    join.append(Return(Constant(0)))
    return function


def loop() -> Function:
    """entry -> header <-> body, header -> exit"""
    function = Function("loop", ["n"])
    entry = function.add_block(BasicBlock("entry"))
    header = function.add_block(BasicBlock("header"))
    body = function.add_block(BasicBlock("body"))
    exit_block = function.add_block(BasicBlock("exit"))
    entry.append(Jump("header"))
    header.append(Cmp(Temp("c"), "gt", Temp("n"), Constant(0)))
    header.append(Branch(Temp("c"), "body", "exit"))
    body.append(Jump("header"))
    exit_block.append(Return(Constant(0)))
    return function


class TestCFGQueries:
    def test_successors(self):
        cfg = CFG(diamond())
        assert cfg.successors["entry"] == ["left", "right"]
        assert cfg.successors["join"] == []

    def test_predecessors(self):
        cfg = CFG(diamond())
        assert sorted(cfg.predecessors["join"]) == ["left", "right"]
        assert cfg.predecessors["entry"] == []

    def test_edges(self):
        cfg = CFG(diamond())
        assert ("entry", "left") in cfg.edges()
        assert len(cfg.edges()) == 4

    def test_unknown_target_raises(self):
        function = Function("bad")
        block = function.add_block(BasicBlock("entry"))
        block.append(Jump("nowhere"))
        with pytest.raises(KeyError):
            CFG(function)

    def test_back_edges_in_loop(self):
        cfg = CFG(loop())
        assert cfg.back_edges == frozenset({("body", "header")})

    def test_no_back_edges_in_diamond(self):
        assert not CFG(diamond()).back_edges

    def test_dfs_preorder_starts_at_entry(self):
        order = CFG(diamond()).dfs_preorder()
        assert order[0] == "entry"
        assert set(order) == {"entry", "left", "right", "join"}

    def test_reverse_postorder_entry_first(self):
        rpo = CFG(loop()).reverse_postorder()
        assert rpo[0] == "entry"
        assert rpo.index("header") < rpo.index("body")
        assert rpo.index("header") < rpo.index("exit")

    def test_reachable_excludes_orphan(self):
        function = diamond()
        orphan = function.add_block(BasicBlock("orphan"))
        orphan.append(Return(Constant(9)))
        assert "orphan" not in CFG(function).reachable()


class TestCriticalEdgeSplitting:
    def test_critical_edge_split(self):
        # entry branches to join directly (critical: join has 2 preds).
        function = Function("crit", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        middle = function.add_block(BasicBlock("middle"))
        join = function.add_block(BasicBlock("join"))
        entry.append(Cmp(Temp("c"), "lt", Temp("n"), Constant(0)))
        entry.append(Branch(Temp("c"), "middle", "join"))
        middle.append(Jump("join"))
        join.append(Return(Constant(0)))
        assert split_critical_edges(function) == 1
        cfg = CFG(function)
        # Every branch successor now has exactly one predecessor.
        branch = function.block("entry").terminator
        for succ in branch.successors():
            assert len(cfg.predecessors[succ]) == 1

    def test_no_split_when_unneeded(self):
        assert split_critical_edges(diamond()) == 0

    def test_branch_with_shared_target_split_twice(self):
        # Both out-edges of one branch go to the same block: each edge is
        # critical and each must get its own forwarding block.
        function = Function("shared", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        join = function.add_block(BasicBlock("join"))
        entry.append(Cmp(Temp("c"), "lt", Temp("n"), Constant(0)))
        entry.append(Branch(Temp("c"), "join", "join"))
        join.append(Return(Constant(0)))
        assert split_critical_edges(function) == 2
        branch = function.block("entry").terminator
        assert branch.true_target != branch.false_target

    def test_split_preserves_phi_routing(self):
        function = Function("phis", ["n"])
        entry = function.add_block(BasicBlock("entry"))
        other = function.add_block(BasicBlock("other"))
        join = function.add_block(BasicBlock("join"))
        entry.append(Cmp(Temp("c"), "lt", Temp("n"), Constant(0)))
        entry.append(Branch(Temp("c"), "other", "join"))
        other.append(Jump("join"))
        phi = Phi(Temp("x"), [("entry", Constant(1)), ("other", Constant(2))])
        join.append(phi)
        join.append(Return(Temp("x")))
        split_critical_edges(function)
        labels = [label for label, _ in phi.incomings]
        assert "entry" not in labels  # redirected to the split block
        assert "other" in labels
        cfg = CFG(function)
        assert set(labels) == set(cfg.predecessors["join"])


class TestUnreachableRemoval:
    def test_orphan_removed(self):
        function = diamond()
        orphan = function.add_block(BasicBlock("orphan"))
        orphan.append(Return(Constant(1)))
        removed = remove_unreachable_blocks(function)
        assert removed == ["orphan"]
        assert "orphan" not in function.blocks

    def test_phi_incomings_pruned(self):
        function = diamond()
        orphan = function.add_block(BasicBlock("orphan"))
        orphan.append(Jump("join"))
        phi = Phi(
            Temp("x"),
            [("left", Constant(1)), ("right", Constant(2)), ("orphan", Constant(3))],
        )
        function.block("join").prepend_phi(phi)
        remove_unreachable_blocks(function)
        assert [label for label, _ in phi.incomings] == ["left", "right"]

    def test_nothing_removed_when_all_reachable(self):
        assert remove_unreachable_blocks(diamond()) == []
