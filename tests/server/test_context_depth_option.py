"""The ``context_depth`` analysis option: validation, config, cache key.

``--context-depth`` is an engine knob, so the server folds it into the
config fingerprint (not ``canonical_options``): a request spelling out
the k=0 default hits the same cache entry as one omitting it, while any
k >= 1 keys separately and actually changes the analysis.
"""

from __future__ import annotations

import pytest

from repro.server.protocol import (
    ProtocolError,
    canonical_options,
    validate_request,
)
from repro.server.service import AnalysisService, build_config

PROGRAM = """
func affine(v) {
  return v * 3 + 1;
}

func main(n) {
  var x = input();
  var a = affine(x % 8);
  var w = affine(x);
  if (a < 12) { return 1; }
  if (w < 0) { return 2; }
  return 0;
}
"""


def _request(options):
    return {
        "command": "predict",
        "source": PROGRAM,
        "options": options,
    }


class TestValidation:
    def test_accepted_on_every_analysis_command(self):
        for command in ("predict", "check", "ranges", "ir"):
            body = _request({"context_depth": 2})
            body["command"] = command
            _, _, _, clean = validate_request(body)
            assert clean["context_depth"] == 2

    def test_negative_depth_is_rejected(self):
        with pytest.raises(ProtocolError, match="must be >= 0"):
            validate_request(_request({"context_depth": -1}))

    def test_non_integer_depth_is_rejected(self):
        for bad in ("1", 1.5, True, None):
            with pytest.raises(ProtocolError, match="must be an integer"):
                validate_request(_request({"context_depth": bad}))


class TestConfig:
    def test_build_config_threads_the_depth(self):
        assert build_config({"context_depth": 3}).context_depth == 3

    def test_default_depth_is_zero(self):
        assert build_config({}).context_depth == 0

    def test_engine_knob_stays_out_of_canonical_options(self):
        canonical = canonical_options("predict", {"context_depth": 2})
        assert "context_depth" not in canonical


class TestCacheKeys:
    def test_spelled_out_default_hits_the_same_key(self):
        service = AnalysisService()
        bare = service.execute(_request({}))
        explicit = service.execute(_request({"context_depth": 0}))
        assert bare["key"] == explicit["key"]
        assert explicit["cached"] == "memory"

    def test_positive_depth_keys_separately_and_changes_results(self):
        service = AnalysisService()
        base = service.execute(_request({}))
        deep = service.execute(_request({"context_depth": 1}))
        assert base["key"] != deep["key"]
        assert base["status"] == deep["status"] == "ok"
        # k=1 re-derives the narrow call site, so the prediction output
        # itself differs from the merged-summary run.
        assert base["output"] != deep["output"]
