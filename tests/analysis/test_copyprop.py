"""Copy propagation tests."""

from repro.analysis.copyprop import copy_chains, propagate_copies, remove_dead_copies
from repro.ir.instructions import Copy, Return
from repro.ir.values import Temp

from tests.helpers import prepare_single


class TestCopyChains:
    def test_simple_chain_resolved(self):
        function, _ = prepare_single(
            "func main(n) { var a = n; var b = a; var c = b; return c; }"
        )
        chains = copy_chains(function)
        assert chains["c.0"] == "n.0"
        assert chains["b.0"] == "n.0"

    def test_assertions_not_followed_by_default(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = n + 0; } return n; }"
        )
        chains = copy_chains(function)
        # No pi destinations in the chain map.
        pis = {i.dest.name for block in function.blocks.values() for i in block.pis()}
        assert not (set(chains) & pis)

    def test_assertions_followed_when_enabled(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { x = n; } else { x = 0; } return x; }"
        )
        chains = copy_chains(function, through_assertions=True)
        pis = {i.dest.name for block in function.blocks.values() for i in block.pis()}
        assert set(chains) & pis


class TestRewrites:
    def test_propagate_replaces_uses(self):
        function, _ = prepare_single(
            "func main(n) { var a = n; var b = a + 1; return b; }"
        )
        replaced = propagate_copies(function)
        assert replaced >= 1
        # The add must now read n.0 directly.
        from repro.ir.instructions import BinOp

        adds = [i for i in function.instructions() if isinstance(i, BinOp)]
        assert any(Temp("n.0") in add.operands() for add in adds)

    def test_remove_dead_copies(self):
        function, _ = prepare_single(
            "func main(n) { var a = n; var b = a + 1; return b; }"
        )
        propagate_copies(function)
        removed = remove_dead_copies(function)
        assert removed >= 1
        remaining = [
            i
            for i in function.instructions()
            if isinstance(i, Copy) and i.dest.name.startswith("a.")
        ]
        assert remaining == []

    def test_execution_preserved_after_rewrite(self):
        source = "func main(n) { var a = n; var b = a; var c = b * 2; return c; }"
        function, _ = prepare_single(source)
        propagate_copies(function)
        remove_dead_copies(function)
        from repro.ir.function import Module
        from repro.profiling import run_module

        module = Module("m")
        module.add_function(function)
        assert run_module(module, args=[21]).return_value == 42


class TestVRPSubsumption:
    def test_vrp_discovers_copy_relations(self):
        from tests.helpers import analyse

        prediction = analyse(
            "func main(n) { var a = n; var b = a; return b; }"
        )
        # VRP marks b as a pure copy (range 1[n.0:n.0:0])... but n is ⊥,
        # so the copy shows through the Copy transfer: b's range is ⊥ too
        # (copies of ⊥ stay ⊥).  Use a bounded parameter instead.
        from repro.core.rangeset import RangeSet

        prediction = analyse(
            "func main(n) { var a = n; var b = a; return b; }",
            param_ranges={"n": RangeSet.symbol("n.0")},
        )
        assert prediction.values["b.0"].copy_symbol() == "n.0"
