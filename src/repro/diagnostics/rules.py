"""Rule implementations: from a :class:`FunctionPrediction` to findings.

Every rule reads the *converged* analysis results -- range sets, branch
probabilities, edge/block frequencies, derivation outcomes -- and never
re-propagates.  Rules stay silent in provably-dead code (a division in
a block that never executes is the dead code's problem, reported once
by ``unreachable-block``) and on heuristic probabilities (opinions, not
proofs), which is what keeps the clean-workload suite at zero findings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.loops import LoopInfo
from repro.core.bounds import Bound
from repro.core.propagation import FunctionPrediction
from repro.core.rangeset import RangeSet
from repro.diagnostics.findings import ERROR, WARNING, Finding, rangeset_payload
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Branch, Load, Phi, Return, Store
from repro.ir.values import Constant, Temp, Undef
from repro.opt.boundscheck import UNSAFE, classify_access
from repro.opt.unreachable import unreachable_blocks

# Branch probabilities this close to 0/1 count as proven-certain (the
# engine produces exact 0.0/1.0 for range proofs; the epsilon only
# absorbs float noise from weighted merges).
_CERTAIN_EPS = 1e-12


def all_findings(
    function: Function, prediction: FunctionPrediction
) -> List[Finding]:
    """Run every rule over one analysed function."""
    if prediction.aborted:
        # The safety valve cut propagation short: ranges are best-effort,
        # not proofs, so no rule may fire on them.
        return []
    findings: List[Finding] = []
    findings.extend(_dead_branches(function, prediction))
    findings.extend(_array_bounds(function, prediction))
    findings.extend(_div_by_zero(function, prediction))
    findings.extend(_unreachable(function, prediction))
    findings.extend(_loops(function, prediction))
    findings.extend(_uninitialised(function, prediction))
    return findings


# -- shared helpers ------------------------------------------------------------


def _operand_name(operand) -> Optional[str]:
    """The SSA name behind an operand, for provenance lookups."""
    return operand.name if isinstance(operand, Temp) else None


def _operand_range(prediction: FunctionPrediction, operand) -> RangeSet:
    if isinstance(operand, Constant):
        return RangeSet.constant(operand.value)
    if isinstance(operand, Temp):
        return prediction.values.get(operand.name, RangeSet.bottom())
    return RangeSet.bottom()


def _executes(prediction: FunctionPrediction, label: str) -> bool:
    return prediction.block_frequency.get(label, 0.0) > 0.0


def _proven(prediction: FunctionPrediction, label: str) -> bool:
    """The branch at ``label`` has a range-derived (non-heuristic) probability."""
    return (
        label in prediction.branch_probability
        and label not in prediction.used_heuristic
    )


def _block_line(block) -> Optional[int]:
    for instr in block.instructions:
        if instr.loc is not None:
            return instr.loc
    return None


def _edge_probability(
    function: Function, prediction: FunctionPrediction, src: str, dst: str
) -> Optional[float]:
    """P(src takes the edge to dst), from *proven* branch probabilities.

    Edge and block frequencies are unsuitable for proofs: the engine
    suppresses sub-tolerance frequency updates, so a rarely-reached
    branch can report an edge frequency of exactly 0 that really means
    "too small to track".  Branch probabilities have no such cutoff.
    Returns None when the probability is heuristic or unresolved.
    """
    term = function.block(src).terminator
    if not isinstance(term, Branch):
        return 1.0  # jump/return: the single out-edge is always taken
    if term.true_target == term.false_target:
        return 1.0
    if not _proven(prediction, src):
        return None
    probability = prediction.branch_probability[src]
    return probability if dst == term.true_target else 1.0 - probability


def _provably_dead_blocks(function: Function, prediction: FunctionPrediction):
    """Blocks no path with provably non-zero probability can reach."""
    entry = function.entry_label
    alive = {entry}
    frontier = [entry]
    while frontier:
        label = frontier.pop()
        for succ in function.block(label).successors():
            if succ in alive:
                continue
            probability = _edge_probability(function, prediction, label, succ)
            if probability is not None and probability <= _CERTAIN_EPS:
                continue  # proven never taken
            alive.add(succ)
            frontier.append(succ)
    return set(function.blocks) - alive


def _zero_mass(rangeset: RangeSet) -> float:
    """Probability mass of components whose range provably contains 0."""
    mass = 0.0
    zero = Bound.number(0)
    for r in rangeset.ranges:
        lo_ok = r.lo.less_equal(zero)
        hi_ok = zero.less_equal(r.hi)
        if not (lo_ok and hi_ok):
            continue
        if r.stride > 1 and r.lo.is_numeric() and r.lo.is_finite():
            if (0 - int(r.lo.offset)) % r.stride != 0:
                continue  # progression steps over zero
        mass += r.probability
    return mass


# -- rules ------------------------------------------------------------


def _dead_branches(
    function: Function, prediction: FunctionPrediction
) -> Iterable[Finding]:
    for label, block in function.blocks.items():
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        if not _executes(prediction, label) or not _proven(prediction, label):
            continue
        probability = prediction.branch_probability[label]
        if _CERTAIN_EPS < probability < 1.0 - _CERTAIN_EPS:
            continue
        always_true = probability >= 1.0 - _CERTAIN_EPS
        dead_target = term.false_target if always_true else term.true_target
        cond_range = _operand_range(prediction, term.cond)
        yield Finding(
            rule="dead-branch",
            severity=WARNING,
            message=(
                f"branch is always {'taken' if always_true else 'not taken'}: "
                f"the {'false' if always_true else 'true'} side "
                f"({dead_target}) is dead code"
            ),
            function=function.name,
            block=label,
            line=term.loc,
            evidence={
                "probability": probability,
                "condition_range": rangeset_payload(cond_range),
                "dead_target": dead_target,
                "operand": _operand_name(term.cond),
            },
        )


def _array_bounds(
    function: Function, prediction: FunctionPrediction
) -> Iterable[Finding]:
    for label, block in function.blocks.items():
        if not _executes(prediction, label):
            continue
        for instr in block.instructions:
            if isinstance(instr, Load):
                array, index = instr.array, instr.index
            elif isinstance(instr, Store):
                array, index = instr.array, instr.index
            else:
                continue
            size = function.arrays.get(array)
            index_range = _operand_range(prediction, index)
            verdict = classify_access(index_range, size)
            if verdict.classification != UNSAFE:
                continue
            if verdict.definitely_oob:
                severity, what = ERROR, "is always"
            else:
                # A partial verdict says "some component of the index
                # range is out of bounds" -- but whether that component
                # can really occur depends on the probability weights
                # that built the merge.  With heuristic branches in the
                # function those weights are opinions (correlated guards
                # like a -1 sentinel tested through another variable are
                # the classic case), so only report when every branch
                # probability is range-proven.
                if prediction.used_heuristic:
                    continue
                severity, what = WARNING, "can be"
            yield Finding(
                rule="array-bounds",
                severity=severity,
                message=(
                    f"index into {array}[{size}] {what} out of bounds "
                    f"(out-of-bounds probability {verdict.oob_mass:.3g})"
                ),
                function=function.name,
                block=label,
                line=instr.loc,
                evidence={
                    "array": array,
                    "size": size,
                    "index_range": rangeset_payload(index_range),
                    "oob_mass": verdict.oob_mass,
                    "definitely_oob": verdict.definitely_oob,
                    "operand": _operand_name(index),
                },
            )


def _div_by_zero(
    function: Function, prediction: FunctionPrediction
) -> Iterable[Finding]:
    for label, block in function.blocks.items():
        if not _executes(prediction, label):
            continue
        for instr in block.instructions:
            if not isinstance(instr, BinOp) or instr.op not in ("div", "mod"):
                continue
            divisor = _operand_range(prediction, instr.rhs)
            if not divisor.is_set:
                continue  # ⊥/⊤ proves nothing about the divisor
            if divisor.constant_value() == 0:
                severity = ERROR
                what = "is always zero"
                mass = 1.0
            else:
                mass = _zero_mass(divisor)
                if mass <= 0.0:
                    continue
                if prediction.used_heuristic:
                    # Same reasoning as the partial bounds verdict: the
                    # zero component's weight is only meaningful when no
                    # branch fell back to heuristics.
                    continue
                severity = WARNING
                what = f"can be zero (probability {mass:.3g})"
            op_word = "modulo" if instr.op == "mod" else "division"
            yield Finding(
                rule="div-by-zero",
                severity=severity,
                message=f"{op_word} divisor {what}",
                function=function.name,
                block=label,
                line=instr.loc,
                evidence={
                    "operator": instr.op,
                    "divisor_range": rangeset_payload(divisor),
                    "zero_mass": mass,
                    "operand": _operand_name(instr.rhs),
                },
            )


def _unreachable(
    function: Function, prediction: FunctionPrediction
) -> Iterable[Finding]:
    # Intersect the frequency view (what the opt pipeline would prune)
    # with the proof view: a frequency of 0 alone may just mean the
    # engine stopped tracking a sub-tolerance value.
    dead = _provably_dead_blocks(function, prediction)
    for label in unreachable_blocks(function, prediction):
        if label not in dead:
            continue
        block = function.block(label)
        yield Finding(
            rule="unreachable-block",
            severity=WARNING,
            message=(
                f"block {label} survives in the CFG but the ranges prove "
                f"it never executes"
            ),
            function=function.name,
            block=label,
            line=_block_line(block),
            evidence={
                "incoming_frequencies": {
                    f"{pred}->{label}": prediction.edge_frequency.get(
                        (pred, label), 0.0
                    )
                    for pred in _predecessors(function, label)
                }
            },
        )


def _predecessors(function: Function, label: str) -> List[str]:
    return [
        block.label
        for block in function.blocks.values()
        if label in block.successors()
    ]


def _loop_evidence(
    function: Function, prediction: FunctionPrediction, header: str
) -> dict:
    """Loop-carried ranges at the header, tagged with derivation status."""
    carried = {}
    for phi in function.block(header).phis():
        name = phi.dest.name
        carried[name] = {
            "range": rangeset_payload(
                prediction.values.get(name, RangeSet.bottom())
            ),
            "derived": name in prediction.derived,
            "widened": name in prediction.widened,
        }
    return carried


def _loops(
    function: Function, prediction: FunctionPrediction
) -> Iterable[Finding]:
    loop_info = LoopInfo.for_function(function)
    cfg = loop_info.cfg
    for header, loop in loop_info.loops.items():
        if not _executes(prediction, header):
            continue
        header_block = function.block(header)
        exits = loop.exit_edges(cfg)
        returns = any(
            isinstance(function.block(label).terminator, Return)
            for label in loop.blocks
        )

        # Zero-trip: the edge from the header into the loop never fires
        # although the header itself executes.
        term = header_block.terminator
        if isinstance(term, Branch) and _proven(prediction, header):
            for succ in term.successors():
                if succ not in loop.blocks:
                    continue
                probability = _edge_probability(
                    function, prediction, header, succ
                )
                if probability is None or probability > _CERTAIN_EPS:
                    continue
                yield Finding(
                    rule="zero-trip-loop",
                    severity=WARNING,
                    message=(
                        f"loop at {header} never enters its body: the entry "
                        f"condition is false on first evaluation"
                    ),
                    function=function.name,
                    block=header,
                    line=term.loc,
                    evidence={
                        "entry_edge": f"{header}->{succ}",
                        "probability": prediction.branch_probability.get(header),
                        "carried": _loop_evidence(function, prediction, header),
                    },
                )

        # Non-termination.  Case A: no way out at all (no exit edge, no
        # return inside the loop).  Case B: exits exist but every one has
        # a range-proven frequency of 0.
        if not exits and not returns:
            yield Finding(
                rule="non-terminating-loop",
                severity=ERROR,
                message=f"loop at {header} has no exit: it never terminates",
                function=function.name,
                block=header,
                line=_block_line(header_block),
                evidence={
                    "exits": [],
                    "carried": _loop_evidence(function, prediction, header),
                },
            )
        elif exits and not returns:
            exit_probs = [
                _edge_probability(function, prediction, src, dst)
                for src, dst in exits
            ]
            if any(p is None or p > _CERTAIN_EPS for p in exit_probs):
                continue  # some exit is (possibly) taken, or unproven
            yield Finding(
                rule="non-terminating-loop",
                severity=ERROR,
                message=(
                    f"loop at {header} provably never exits: every exit "
                    f"edge has frequency 0"
                ),
                function=function.name,
                block=header,
                line=_block_line(header_block),
                evidence={
                    "exits": [f"{src}->{dst}" for src, dst in exits],
                    "carried": _loop_evidence(function, prediction, header),
                },
            )


def _reaches_real_use(function: Function) -> set:
    """SSA names whose value can reach a non-phi instruction.

    SSA construction here is minimal but not pruned: a variable declared
    inside a loop body gets a dead header phi whose entry-edge incoming
    is Undef.  Nothing ever consumes that phi, so it is an artefact, not
    an uninitialised use.  A name counts as *really used* when a non-phi
    instruction reads it, or when it feeds (through any chain of phis) a
    name that is.
    """
    nonphi_used = set()
    phis = []
    for block in function.blocks.values():
        for instr in block.instructions:
            if isinstance(instr, Phi):
                phis.append(instr)
            else:
                for operand in instr.operands():
                    if isinstance(operand, Temp):
                        nonphi_used.add(operand.name)
    reaches = set(nonphi_used)
    changed = True
    while changed:
        changed = False
        for phi in phis:
            if phi.dest.name not in reaches:
                continue
            for _, value in phi.incomings:
                if isinstance(value, Temp) and value.name not in reaches:
                    reaches.add(value.name)
                    changed = True
    return reaches


# -- module-scoped rules ------------------------------------------------------


def module_findings(module, callgraph=None) -> List[Finding]:
    """Rules over the whole module (call-graph reachability)."""
    return list(_unreachable_functions(module, callgraph))


def _unreachable_functions(module, callgraph=None) -> Iterable[Finding]:
    """Defined functions no chain of call sites reaches from the entry.

    Only meaningful when the module has a ``main`` entry; a library-like
    module (no entry) has no reachability root, so the rule stays silent
    rather than flagging everything.
    """
    entry = "main"
    if entry not in module.functions:
        return
    if callgraph is None:
        from repro.core.callgraph import CallGraph

        callgraph = CallGraph(module)
    reachable = {entry}
    frontier = [entry]
    while frontier:
        name = frontier.pop()
        for callee in callgraph.callees[name]:
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    for name, function in module.functions.items():
        if name in reachable:
            continue
        entry_label = function.entry_label or ""
        entry_block = function.blocks.get(entry_label)
        yield Finding(
            rule="unreachable-function",
            severity=WARNING,
            message=(
                f"function {name} is never called: no chain of call "
                f"sites reaches it from {entry}"
            ),
            function=name,
            block=entry_label,
            line=_block_line(entry_block) if entry_block is not None else None,
            evidence={
                "entry": entry,
                "callers": sorted(callgraph.callers.get(name, ())),
            },
        )


def _uninitialised(
    function: Function, prediction: FunctionPrediction
) -> Iterable[Finding]:
    really_used = _reaches_real_use(function)
    for label, block in function.blocks.items():
        if not _executes(prediction, label):
            continue
        for instr in block.instructions:
            if isinstance(instr, Phi):
                if instr.dest.name not in really_used:
                    continue  # dead phi from non-pruned SSA
                for pred, value in instr.incomings:
                    if not isinstance(value, Undef):
                        continue
                    if prediction.edge_frequency.get((pred, label), 0.0) <= 0.0:
                        continue
                    yield Finding(
                        rule="uninit-value",
                        severity=WARNING,
                        message=(
                            f"{instr.dest.name} may be used uninitialised: "
                            f"no definition reaches it from {pred}"
                        ),
                        function=function.name,
                        block=label,
                        line=instr.loc,
                        evidence={
                            "name": instr.dest.name,
                            "undefined_from": pred,
                            "range": rangeset_payload(RangeSet.bottom()),
                        },
                    )
                continue
            for operand in instr.operands():
                if isinstance(operand, Undef):
                    yield Finding(
                        rule="uninit-value",
                        severity=ERROR,
                        message="use of an uninitialised value",
                        function=function.name,
                        block=label,
                        line=instr.loc,
                        evidence={
                            "instruction": repr(instr),
                            "range": rangeset_payload(RangeSet.bottom()),
                        },
                    )
