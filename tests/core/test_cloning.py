"""Procedure cloning tests."""

import pytest

from repro.core.cloning import clone_for_contexts, clone_function
from repro.core.interprocedural import analyse_module
from repro.ir import prepare_for_analysis
from repro.profiling import run_module

from tests.helpers import compile_and_prepare

DIVERGENT = """
func kernel(size) {
  var t = 0;
  for (i = 0; i < size; i = i + 1) { t = t + i; }
  return t;
}

func main(n) {
  var small = kernel(4);
  var large = kernel(400);
  return small + large;
}
"""


class TestCloneFunction:
    def test_clone_is_deep(self):
        module, _ = compile_and_prepare(DIVERGENT)
        original = module.function("kernel")
        clone = clone_function(original, "kernel$clone1")
        assert clone.name == "kernel$clone1"
        assert set(clone.blocks) == set(original.blocks)
        # Mutating the clone must not touch the original.
        first_block = next(iter(clone.blocks.values()))
        first_instr = first_block.instructions[0]
        assert first_instr is not next(iter(original.blocks.values())).instructions[0]

    def test_clone_executes_identically(self):
        module, _ = compile_and_prepare(DIVERGENT)
        module.add_function(clone_function(module.function("kernel"), "kernel2"))
        result = run_module(module, args=[0])
        assert result.return_value == sum(range(4)) + sum(range(400))


class TestCloneForContexts:
    def test_divergent_contexts_cloned(self):
        module, infos = compile_and_prepare(DIVERGENT)
        prediction = analyse_module(module, infos)
        report = clone_for_contexts(module, prediction)
        assert "kernel" in report.variants
        assert len(report.variants["kernel"]) == 2
        clone_name = report.variants["kernel"][1]
        assert clone_name in module.functions

    def test_clones_get_precise_predictions(self):
        module, infos = compile_and_prepare(DIVERGENT)
        prediction = analyse_module(module, infos)
        report = clone_for_contexts(module, prediction)
        # Re-prepare the new clones' SSA infos and re-analyse.
        for name, function in module.functions.items():
            if name not in infos:
                infos[name] = _reuse_info(function)
        prediction2 = analyse_module(module, infos)
        kernel_probs = sorted(
            p
            for name in report.variants["kernel"]
            for p in prediction2.functions[name].branch_probability.values()
        )
        # One clone sees size=4 (P=4/5), the other size=400 (P=400/401).
        assert kernel_probs[0] == pytest.approx(4 / 5, abs=0.02)
        assert kernel_probs[-1] == pytest.approx(400 / 401, abs=0.002)

    def test_uniform_contexts_not_cloned(self):
        source = """
        func kernel(size) { return size * 2; }
        func main(n) {
          var a = kernel(7);
          var b = kernel(7);
          return a + b;
        }
        """
        module, infos = compile_and_prepare(source)
        prediction = analyse_module(module, infos)
        report = clone_for_contexts(module, prediction)
        assert report.variants == {}

    def test_entry_never_cloned(self):
        module, infos = compile_and_prepare(DIVERGENT)
        prediction = analyse_module(module, infos)
        report = clone_for_contexts(module, prediction)
        assert "main" not in report.variants

    def test_projection_back_to_original(self):
        module, infos = compile_and_prepare(DIVERGENT)
        prediction = analyse_module(module, infos)
        report = clone_for_contexts(module, prediction)
        for name, function in module.functions.items():
            if name not in infos:
                infos[name] = _reuse_info(function)
        prediction2 = analyse_module(module, infos)
        projected = report.project_probabilities(prediction2)
        originals = {function for function, _ in projected}
        assert "kernel" in originals
        assert all("$clone" not in function for function, _ in projected)


def _reuse_info(function):
    """Clones are already in SSA form; synthesise their SSAInfo."""
    from repro.ir.ssa import SSAInfo

    info = SSAInfo()
    for param in function.params:
        info.param_names[param] = f"{param}.0"
    return info


class TestAnalyseWithCloning:
    def test_one_call_workflow(self):
        from repro.core import analyse_with_cloning

        module, infos = compile_and_prepare(DIVERGENT)
        refined, report, projected = analyse_with_cloning(module, infos)
        assert report.variants  # divergent contexts found
        assert ("kernel", "for1") in projected
        assert 0.9 < projected[("kernel", "for1")] <= 1.0
        # The refined prediction covers the clones too.
        clone_names = [n for n in refined.functions if "$clone" in n]
        assert clone_names

    def test_no_clones_returns_original_prediction(self):
        from repro.core import analyse_with_cloning

        module, infos = compile_and_prepare(
            "func main(n) { if (n > 0) { return 1; } return 0; }"
        )
        refined, report, projected = analyse_with_cloning(module, infos)
        assert report.variants == {}
        assert projected  # still keyed by (function, branch)
