"""Call-graph edge cases: the shapes real programs throw at §3.7.

Undefined callees, self- and mutual recursion, nested-loop call
frequencies, and the determinism of the SCC decomposition -- each is a
way the interprocedural driver (and, since the summaries layer, the
pass manager's cached ``callgraph`` analysis) can go subtly wrong.
"""

from __future__ import annotations

from repro.core.callgraph import CallGraph
from repro.core.interprocedural import analyse_module
from repro.ir import prepare_module
from repro.lang import compile_source


def compile_and_graph(source):
    module = compile_source(source)
    return module, CallGraph(module)


# The front end rejects calls to unknown names, so an undefined callee
# is modelled the way it arises in practice -- a module where the
# callee's body is unavailable (external/library function): compile a
# complete program, then drop the callee's definition.
UNDEFINED_CALLEE = """
func mystery(x) {
  return x + 1;
}

func main(n) {
  var v = mystery(n);
  if (v > 0) { return 1; }
  return 0;
}
"""


def _module_with_undefined_callee():
    module = compile_source(UNDEFINED_CALLEE)
    del module.functions["mystery"]
    return module


class TestUndefinedCallees:
    def test_site_enumerated_but_not_an_edge(self):
        module = _module_with_undefined_callee()
        graph = CallGraph(module)
        sites = graph.sites_of_callee("mystery")
        assert len(sites) == 1
        assert sites[0].caller == "main"
        # Only defined functions appear as graph nodes/edges.
        assert "mystery" not in graph.callees
        assert graph.callees["main"] == set()
        assert graph.bottom_up_order() == ["main"]

    def test_analysis_survives_and_stays_unknown(self):
        module = _module_with_undefined_callee()
        ssa_infos = prepare_module(module)
        prediction = analyse_module(module, ssa_infos)
        # An undefined callee's result is ⊥: the branch on it must fall
        # back to heuristics rather than crash or fabricate a range.
        assert any(
            function == "main"
            for function, _ in prediction.heuristic_branches()
        )


SELF_RECURSIVE = """
func count(n) {
  if (n < 1) { return 0; }
  var rest = count(n - 1);
  return rest + 1;
}

func main(n) {
  return count(12);
}
"""


class TestSelfRecursion:
    def test_detected_and_isolated(self):
        _, graph = compile_and_graph(SELF_RECURSIVE)
        assert graph.is_recursive("count")
        assert not graph.is_recursive("main")
        component = next(c for c in graph.sccs() if "count" in c)
        assert list(component) == ["count"]

    def test_fixed_point_terminates(self):
        module = compile_source(SELF_RECURSIVE)
        ssa_infos = prepare_module(module)
        prediction = analyse_module(module, ssa_infos)
        assert "count" in prediction.functions
        assert prediction.rounds >= 1


MUTUAL_TRIPLE = """
func alpha(n) {
  if (n < 1) { return 0; }
  return beta(n - 1) + 1;
}

func beta(n) {
  if (n < 1) { return 0; }
  return gamma(n - 1) + 1;
}

func gamma(n) {
  if (n < 1) { return 0; }
  return alpha(n - 1) + 1;
}

func main(n) {
  return alpha(9);
}
"""


class TestMutualTriple:
    def test_three_cycle_is_one_scc(self):
        _, graph = compile_and_graph(MUTUAL_TRIPLE)
        component = next(c for c in graph.sccs() if "alpha" in c)
        assert sorted(component) == ["alpha", "beta", "gamma"]
        for name in ("alpha", "beta", "gamma"):
            assert graph.is_recursive(name)

    def test_scc_precedes_entry_bottom_up(self):
        _, graph = compile_and_graph(MUTUAL_TRIPLE)
        order = graph.bottom_up_order()
        assert sorted(order) == ["alpha", "beta", "gamma", "main"]
        assert order.index("main") == len(order) - 1

    def test_analysis_terminates_on_the_cycle(self):
        module = compile_source(MUTUAL_TRIPLE)
        ssa_infos = prepare_module(module)
        prediction = analyse_module(module, ssa_infos)
        assert set(prediction.functions) == {"alpha", "beta", "gamma", "main"}


NESTED_FREQUENCY = """
func tick(v) {
  return v + 1;
}

func tock(v) {
  return v + 2;
}

func main(n) {
  var acc = 0;
  for (i = 0; i < 10; i = i + 1) {
    for (j = 0; j < 10; j = j + 1) {
      acc = tick(acc);
    }
  }
  acc = tock(acc);
  return acc;
}
"""


class TestCallFrequencyWeighting:
    def test_nested_loop_site_outweighs_straightline_site(self):
        module = compile_source(NESTED_FREQUENCY)
        ssa_infos = prepare_module(module)
        prediction = analyse_module(module, ssa_infos)
        summaries = prediction.summaries
        tick = summaries.of("tick")
        tock = summaries.of("tock")
        assert tick.call_sites == 1
        assert tock.call_sites == 1
        # The doubly nested call site carries ~100x the weighted call
        # traffic of the straight-line one.
        assert tick.call_frequency > tock.call_frequency * 10


class TestSCCDeterminism:
    def test_identical_modules_decompose_identically(self):
        runs = []
        for _ in range(3):
            _, graph = compile_and_graph(MUTUAL_TRIPLE)
            runs.append((graph.sccs(), graph.bottom_up_order()))
        assert runs[0] == runs[1] == runs[2]

    def test_site_order_is_program_order(self):
        _, graph = compile_and_graph(
            """
            func f(x) { return x; }
            func main(n) { return f(1) + f(2) + f(3); }
            """
        )
        sites = graph.sites_of_callee("f")
        assert len(sites) == 3
        assert [site.caller for site in sites] == ["main"] * 3
