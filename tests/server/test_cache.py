"""Content addressing and the two-tier result cache."""

import json
import os

from repro.core import VRPConfig
from repro.server.cache import ResultCache, request_key

SOURCE = "func main(n) { return n; }"


def key_of(**overrides) -> str:
    params = {
        "command": "predict",
        "source": SOURCE,
        "name": "-",
        "options": {"intra": False},
        "config": VRPConfig(),
    }
    params.update(overrides)
    return request_key(
        params["command"],
        params["source"],
        params["name"],
        params["options"],
        params["config"],
    )


class TestRequestKey:
    def test_stable(self):
        assert key_of() == key_of()

    def test_source_is_key_material(self):
        assert key_of(source="func main(n) { return n + 1; }") != key_of()

    def test_command_is_key_material(self):
        assert key_of(command="ranges") != key_of()

    def test_options_are_key_material(self):
        assert key_of(options={"intra": True}) != key_of()

    def test_name_is_key_material(self):
        # The service normalises the name away for every command except
        # check; when a name does reach the key, it must count.
        assert key_of(name="examples/foo.toy") != key_of()

    def test_neutral_config_fields_are_not(self):
        assert key_of(config=VRPConfig(perf=False, sanitize=True)) == key_of()
        assert key_of(config=VRPConfig(max_ranges=9)) != key_of()


class TestMemoryTier:
    def test_roundtrip(self):
        cache = ResultCache(memory_entries=8)
        cache.put("k1", {"output": "x"})
        payload, tier = cache.get("k1")
        assert payload == {"output": "x"}
        assert tier == "memory"

    def test_miss(self):
        cache = ResultCache(memory_entries=8)
        assert cache.get("absent") == (None, None)

    def test_returns_a_copy(self):
        cache = ResultCache(memory_entries=8)
        cache.put("k1", {"output": "x"})
        first, _ = cache.get("k1")
        first["output"] = "mutated"
        second, _ = cache.get("k1")
        assert second["output"] == "x"

    def test_lru_eviction(self):
        cache = ResultCache(memory_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", {"v": 3})
        assert cache.get("b") == (None, None)
        assert cache.get("a")[1] == "memory"
        assert cache.stats()["memory"]["evictions"] == 1

    def test_zero_entries_disables_the_tier(self):
        cache = ResultCache(memory_entries=0)
        cache.put("k1", {"v": 1})
        assert cache.get("k1") == (None, None)


class TestDiskTier:
    def test_survives_restart(self, tmp_path):
        warm = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        warm.put("deadbeef", {"output": "x"})
        cold = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        payload, tier = cold.get("deadbeef")
        assert payload == {"output": "x"}
        assert tier == "disk"

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        warm = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        warm.put("deadbeef", {"output": "x"})
        cold = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        assert cold.get("deadbeef")[1] == "disk"
        assert cold.get("deadbeef")[1] == "memory"

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        cache.put("deadbeef", {"v": 1})
        assert (tmp_path / "de" / "deadbeef.json").is_file()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        cache.put("deadbeef", {"v": 1})
        path = tmp_path / "de" / "deadbeef.json"
        path.write_text("{not json", encoding="utf-8")
        cold = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        assert cold.get("deadbeef") == (None, None)
        assert not path.exists()
        assert cold.stats()["disk"]["errors"] == 1

    def test_non_object_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        path = tmp_path / "de" / "deadbeef.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert cache.get("deadbeef") == (None, None)

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        for i in range(10):
            cache.put(f"ke{i:06x}", {"v": i})
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(memory_entries=8, disk_dir=str(tmp_path))
        cache.put("deadbeef", {"v": 1})
        cache.get("deadbeef")
        cache.get("absent00")
        stats = cache.stats()
        assert stats["stores"] == 1
        assert stats["memory"]["hits"] == 1
        assert stats["disk"]["enabled"] is True
        assert stats["disk"]["misses"] == 1
