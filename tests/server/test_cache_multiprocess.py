"""Cross-process safety of the shared on-disk result cache.

The sharded tier points every shard process at one ``--cache-dir``.
Safety rests on the atomic write protocol (temp file + ``os.replace``
in the same directory): a reader can never observe a half-written
entry, racing writers of the same key each land a *complete* entry
(last replace wins), and a corrupt entry is evicted on read without
disturbing concurrent readers.  These tests drive real processes, not
threads -- the GIL serialises threads enough to mask real races.
"""

import json
import multiprocessing
import os

from repro.server.cache import ResultCache

KEY = "ab" + "0" * 62  # well-formed sha256-shaped key


def _writer(disk_dir: str, key: str, rounds: int, seed: int) -> None:
    cache = ResultCache(memory_entries=4, disk_dir=disk_dir)
    for round_index in range(rounds):
        cache.put(key, {"output": f"writer-{seed}-round-{round_index}", "n": seed})


def _reader(disk_dir: str, key: str, rounds: int, queue) -> None:
    # memory_entries=0 forces every get to the disk tier.
    cache = ResultCache(memory_entries=0, disk_dir=disk_dir)
    bad = 0
    for _ in range(rounds):
        payload, tier = cache.get(key)
        if payload is None:
            continue
        if tier != "disk" or not str(payload.get("output", "")).startswith("writer-"):
            bad += 1
    queue.put((bad, cache.stats()["disk"]["errors"]))


def _hammer(disk_dir: str, worker_id: int, rounds: int, queue) -> None:
    """Mixed load: each process writes its own keys and reads everyone's."""
    cache = ResultCache(memory_entries=2, disk_dir=disk_dir)
    bad = 0
    for round_index in range(rounds):
        own = f"{worker_id:02x}" + "c" * 62
        cache.put(own, {"output": f"w{worker_id}", "round": round_index})
        for other in range(4):
            key = f"{other:02x}" + "c" * 62
            payload, _ = cache.get(key)
            if payload is not None and payload.get("output") != f"w{other}":
                bad += 1
    queue.put(bad)


class TestRacingWriters:
    def test_same_key_racing_writers_never_corrupt(self, tmp_path):
        disk_dir = str(tmp_path / "cache")
        context = multiprocessing.get_context()
        queue = context.Queue()
        writers = [
            context.Process(target=_writer, args=(disk_dir, KEY, 50, seed))
            for seed in range(4)
        ]
        readers = [
            context.Process(target=_reader, args=(disk_dir, KEY, 200, queue))
            for _ in range(2)
        ]
        for process in writers + readers:
            process.start()
        for process in writers + readers:
            process.join(timeout=60)
            assert process.exitcode == 0
        for _ in readers:
            bad, disk_errors = queue.get(timeout=10)
            assert bad == 0
            # Atomic replace means a racing read never sees a torn
            # file, so the error counter stays at zero.
            assert disk_errors == 0
        # The surviving entry is one complete write, valid JSON.
        final = ResultCache(memory_entries=0, disk_dir=disk_dir)
        payload, tier = final.get(KEY)
        assert tier == "disk"
        assert payload["output"].startswith("writer-")

    def test_mixed_read_write_load_across_processes(self, tmp_path):
        disk_dir = str(tmp_path / "cache")
        context = multiprocessing.get_context()
        queue = context.Queue()
        processes = [
            context.Process(target=_hammer, args=(disk_dir, worker, 30, queue))
            for worker in range(4)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        for _ in processes:
            assert queue.get(timeout=10) == 0


class TestCorruptEntries:
    def _corrupt(self, disk_dir: str, key: str) -> str:
        path = os.path.join(disk_dir, key[:2], f"{key}.json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"output": "trunca')  # torn write, pre-atomicity
        return path

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        disk_dir = str(tmp_path / "cache")
        cache = ResultCache(memory_entries=4, disk_dir=disk_dir)
        path = self._corrupt(disk_dir, KEY)
        assert cache.get(KEY) == (None, None)
        assert cache.stats()["disk"]["errors"] == 1
        assert not os.path.exists(path)  # evicted, next store rewrites

    def test_concurrent_readers_of_a_corrupt_entry(self, tmp_path):
        # Every reader process sees a clean miss; whichever one evicts
        # first does not break the others mid-read.
        disk_dir = str(tmp_path / "cache")
        self._corrupt(disk_dir, KEY)
        context = multiprocessing.get_context()
        queue = context.Queue()
        readers = [
            context.Process(target=_reader, args=(disk_dir, KEY, 50, queue))
            for _ in range(4)
        ]
        for process in readers:
            process.start()
        for process in readers:
            process.join(timeout=60)
            assert process.exitcode == 0
        for _ in readers:
            bad, _errors = queue.get(timeout=10)
            assert bad == 0

    def test_rewrite_after_eviction_round_trips(self, tmp_path):
        disk_dir = str(tmp_path / "cache")
        cache = ResultCache(memory_entries=0, disk_dir=disk_dir)
        self._corrupt(disk_dir, KEY)
        assert cache.get(KEY) == (None, None)
        cache.put(KEY, {"output": "clean"})
        payload, tier = cache.get(KEY)
        assert (payload["output"], tier) == ("clean", "disk")


class TestDiskPromotion:
    def test_disk_hit_promotes_into_local_memory_tier(self, tmp_path):
        # Two caches over one directory model two shards sharing
        # --cache-dir: shard A's store is shard B's disk hit, and the
        # hit lands in B's *own* memory LRU (never in A's).
        disk_dir = str(tmp_path / "cache")
        shard_a = ResultCache(memory_entries=8, disk_dir=disk_dir)
        shard_b = ResultCache(memory_entries=8, disk_dir=disk_dir)
        shard_a.put(KEY, {"output": "from-a"})

        payload, tier = shard_b.get(KEY)
        assert (payload["output"], tier) == ("from-a", "disk")
        payload, tier = shard_b.get(KEY)
        assert tier == "memory"  # promoted into B's LRU
        assert shard_b.stats()["memory"]["entries"] == 1
        # A's memory tier holds its own store; B's promotion did not
        # touch it (stats are shard-local).
        assert shard_a.stats()["memory"]["hits"] == 0

    def test_promotion_respects_local_lru_bound(self, tmp_path):
        disk_dir = str(tmp_path / "cache")
        writer = ResultCache(memory_entries=16, disk_dir=disk_dir)
        keys = [f"{index:02x}" + "d" * 62 for index in range(8)]
        for index, key in enumerate(keys):
            writer.put(key, {"output": f"v{index}"})
        reader = ResultCache(memory_entries=2, disk_dir=disk_dir)
        for key in keys:
            assert reader.get(key)[1] == "disk"
        stats = reader.stats()
        assert stats["memory"]["entries"] == 2  # bound held
        assert stats["memory"]["evictions"] == 6
        # The most recent promotions are the residents.
        assert reader.get(keys[-1])[1] == "memory"
        assert reader.get(keys[0])[1] == "disk"

    def test_disk_payload_matches_store_bytes(self, tmp_path):
        # The disk file is the payload, verbatim JSON: what one shard
        # stores is byte-for-byte what another serves.
        disk_dir = str(tmp_path / "cache")
        cache = ResultCache(memory_entries=4, disk_dir=disk_dir)
        payload = {"output": "table\n", "exit_code": 0, "status": "ok"}
        cache.put(KEY, payload)
        path = os.path.join(disk_dir, KEY[:2], f"{KEY}.json")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == payload
