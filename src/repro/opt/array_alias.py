"""Array-access alias disambiguation from value ranges (paper §6).

"Using value range propagation it is sometimes possible to show that the
ranges of the indices of two array accesses cannot overlap" -- a simple
false-dependency breaker for compilers without full dependence analysis
(the paper contrasts it with Banerjee's inequalities).

Two accesses to the same array are independent when their index ranges
are provably disjoint: separated hulls, same-symbol offset windows that
never meet, or interleaved strided progressions (even/odd and the like).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.comparisons import compare_sets
from repro.core.propagation import FunctionPrediction
from repro.core.rangeset import RangeSet
from repro.ir.function import Function
from repro.ir.instructions import Load, Store
from repro.ir.values import Constant, Temp


@dataclass
class ArrayAccess:
    """One load or store, with the range of its index."""

    block_label: str
    array: str
    kind: str  # "load" | "store"
    index_range: RangeSet

    def __repr__(self) -> str:
        return f"ArrayAccess({self.kind} {self.array}[{self.index_range}])"


def collect_accesses(
    function: Function, prediction: FunctionPrediction
) -> List[ArrayAccess]:
    out: List[ArrayAccess] = []
    for label, block in function.blocks.items():
        for instr in block.instructions:
            if isinstance(instr, Load):
                out.append(
                    ArrayAccess(label, instr.array, "load", _range_of(prediction, instr.index))
                )
            elif isinstance(instr, Store):
                out.append(
                    ArrayAccess(label, instr.array, "store", _range_of(prediction, instr.index))
                )
    return out


def _range_of(prediction: FunctionPrediction, operand) -> RangeSet:
    if isinstance(operand, Constant):
        return RangeSet.constant(operand.value)
    if isinstance(operand, Temp):
        return prediction.values.get(operand.name, RangeSet.bottom())
    return RangeSet.bottom()


def may_alias(a: ArrayAccess, b: ArrayAccess) -> bool:
    """Conservative aliasing: False only with a proof of disjointness."""
    if a.array != b.array:
        return False
    return not provably_disjoint(a.index_range, b.index_range)


def provably_disjoint(a: RangeSet, b: RangeSet) -> bool:
    """True when no value can be in both index ranges.

    Uses the comparison machinery's exact equality counting: P(a == b)
    computed with zero unknown mass and zero probability means the
    progressions share no point.
    """
    if not (a.is_set and b.is_set):
        return False
    outcome = compare_sets("eq", a, b)
    if outcome is None:
        return False
    return outcome.is_known() and outcome.probability == 0.0


@dataclass
class DependencePair:
    """Two accesses with at least one store, and the verdict."""

    first: ArrayAccess
    second: ArrayAccess
    independent: bool


def independent_pairs(accesses: List[ArrayAccess]) -> List[DependencePair]:
    """All store-involving same-array pairs, with disjointness verdicts."""
    out: List[DependencePair] = []
    for i in range(len(accesses)):
        for j in range(i + 1, len(accesses)):
            a, b = accesses[i], accesses[j]
            if a.array != b.array:
                continue
            if a.kind == "load" and b.kind == "load":
                continue  # load/load pairs never constrain reordering
            out.append(DependencePair(a, b, independent=not may_alias(a, b)))
    return out


def disambiguated_fraction(pairs: List[DependencePair]) -> float:
    """Fraction of potentially-dependent pairs proven independent."""
    if not pairs:
        return 0.0
    return sum(1 for pair in pairs if pair.independent) / len(pairs)
