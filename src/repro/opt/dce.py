"""Dead code elimination and certain-branch folding.

Completes the paper's "value range propagation itself can be viewed as
an optimization" story: after the constant/copy folds, a mark-and-sweep
over SSA removes the computations they orphaned, and branches whose
range-derived probability is exactly 0 or 1 fold into jumps ("branches
to unreachable code have a probability of 0").
"""

from __future__ import annotations

from typing import List, Set

from repro.core.propagation import FunctionPrediction
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    Call,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Store,
)
from repro.ir.values import Temp
from repro.opt._verify import verify_after


def eliminate_dead_code(function: Function) -> int:
    """Remove instructions whose results are transitively unused.

    Side-effecting instructions (stores, calls, input reads) and
    terminators are always live; everything else is live only if some
    live instruction reads its result.  Returns instructions removed.
    """
    live: Set[int] = set()
    defining = {}
    for block in function.blocks.values():
        for instr in block.instructions:
            result = instr.result
            if result is not None:
                defining[result.name] = instr

    worklist: List[Instruction] = []
    for block in function.blocks.values():
        for instr in block.instructions:
            if instr.is_terminator() or isinstance(instr, (Store, Call, Input)):
                live.add(id(instr))
                worklist.append(instr)
    while worklist:
        instr = worklist.pop()
        for operand in instr.operands():
            if isinstance(operand, Temp):
                definition = defining.get(operand.name)
                if definition is not None and id(definition) not in live:
                    live.add(id(definition))
                    worklist.append(definition)

    removed = 0
    for block in function.blocks.values():
        kept = []
        for instr in block.instructions:
            if id(instr) in live:
                kept.append(instr)
            else:
                instr.block = None
                removed += 1
        block.instructions = kept
    if removed:
        verify_after(function, "eliminate_dead_code")
    return removed


def fold_certain_branches(
    function: Function,
    prediction: FunctionPrediction,
    fold_heuristic_branches: bool = False,
) -> int:
    """Turn probability-0/1 branches into jumps; prune what dies.

    Only range-derived certainties fold by default: a heuristic 0/1 is
    an opinion, not a proof.  Phi incomings from removed edges are
    dropped and unreachable blocks deleted.  Returns branches folded.
    """
    folded = 0
    removed_edges: List[tuple] = []
    for label, block in list(function.blocks.items()):
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        if label in prediction.used_heuristic and not fold_heuristic_branches:
            continue
        probability = prediction.branch_probability.get(label)
        if probability is None:
            continue
        if probability >= 1.0:
            survivor, casualty = term.true_target, term.false_target
        elif probability <= 0.0:
            survivor, casualty = term.false_target, term.true_target
        else:
            continue
        jump = Jump(survivor)
        jump.block = block
        jump.loc = term.loc
        block.instructions[-1] = jump
        folded += 1
        if casualty != survivor:
            removed_edges.append((label, casualty))
    for label, casualty in removed_edges:
        target = function.blocks.get(casualty)
        if target is None:
            continue
        for phi in target.phis():
            phi.incomings = [
                (pred, value) for pred, value in phi.incomings if pred != label
            ]
    if folded:
        remove_unreachable_blocks(function)
        _simplify_single_incoming_phis(function)
        verify_after(function, "fold_certain_branches")
    return folded


def _simplify_single_incoming_phis(function: Function) -> int:
    """Phis left with one incoming become plain copies.

    The copies are placed after the surviving phis *and* the assertion
    (Pi) prefix, preserving the ``[Phi*] [Pi*] body`` block layout.  A
    pi never reads a same-block phi (its source must dominate the
    predecessor's branch), so hoisting the copies past the pis is safe.
    """
    from repro.ir.instructions import Copy

    simplified = 0
    for block in function.blocks.values():
        phis = block.phis()
        singles = [phi for phi in phis if len(phi.incomings) == 1]
        if not singles:
            continue
        copies = []
        for phi in singles:
            (_, value), = phi.incomings
            block.instructions.remove(phi)
            phi.block = None
            copy = Copy(phi.dest, value)
            copy.block = block
            copies.append(copy)
            simplified += 1
        insert_at = 0
        for instr in block.instructions:
            if not isinstance(instr, (Phi, Pi)):
                break
            insert_at += 1
        block.instructions[insert_at:insert_at] = copies
    return simplified
