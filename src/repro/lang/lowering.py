"""Lowering from the toy-language AST to the three-address CFG IR.

Conditions are lowered structurally (short-circuit ``&&``/``||`` become
extra branches) so every conditional branch tests exactly one comparison
-- this is what lets the assertion pass attach precise Pi nodes.

Statements that end control flow (return/break/continue) are followed by
a fresh unreachable block so lowering can proceed; those blocks are
cleaned up by :func:`repro.ir.cfg.remove_unreachable_blocks`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Jump,
    Load,
    Return,
    Store,
    UnOp,
)
from repro.ir.values import Constant, Temp, Value
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse

_BINARY_OP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "<<": "shl",
    ">>": "shr",
    "&": "and",
    "|": "or",
    "^": "xor",
}

_CMP_OP_MAP = {
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


class LoweringError(Exception):
    """Raised on semantic errors discovered during lowering."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"lowering error at line {line}: {message}")


class _FunctionLowerer:
    """Lowers one function definition into a :class:`Function`."""

    def __init__(
        self,
        funcdef: ast.FuncDef,
        signatures: Dict[str, int],
        constants: Optional[Dict[str, int]] = None,
    ):
        self.funcdef = funcdef
        self.signatures = signatures
        self.constants = constants or {}
        for param in funcdef.params:
            if param in self.constants:
                raise LoweringError(
                    f"parameter {param!r} shadows a constant", funcdef.line
                )
        self.function = Function(funcdef.name, funcdef.params)
        self.current: BasicBlock = self.function.new_block(hint="entry")
        # Stack of (continue_target, break_target) labels.
        self.loop_stack: List[Tuple[str, str]] = []
        # Source line of the statement/expression being lowered; stamped
        # onto every emitted instruction (``instr.loc``).
        self._line: int = funcdef.line

    # -- plumbing -------------------------------------------------------------

    def _emit(self, instr):
        instr.loc = self._line
        return self.current.append(instr)

    def _terminate(self, instr) -> None:
        """Terminate the current block and continue in a fresh (dead) one."""
        instr.loc = self._line
        self.current.append(instr)
        self.current = self.function.new_block(hint="dead")

    def _start_block(self, block: BasicBlock) -> None:
        if not self.current.is_terminated():
            self.current.append(Jump(block.label))
        self.current = block

    # -- entry point -------------------------------------------------------------

    def lower(self) -> Function:
        self._lower_block(self.funcdef.body)
        if not self.current.is_terminated():
            self.current.append(Return(Constant(0)))
        # Any residual dead blocks must still be terminated for the verifier.
        for block in self.function.blocks.values():
            if not block.is_terminated():
                block.append(Return(Constant(0)))
        return self.function

    # -- statements ------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._lower_statement(stmt)

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        self._line = stmt.line
        if isinstance(stmt, ast.Assign):
            self._check_not_array(stmt.name, stmt.line)
            if stmt.name in self.constants:
                raise LoweringError(
                    f"cannot assign to constant {stmt.name!r}", stmt.line
                )
            value = self._lower_expr(stmt.value)
            self._emit(Copy(Temp(stmt.name), value))
        elif isinstance(stmt, ast.ArrayDecl):
            if stmt.name in self.function.arrays:
                raise LoweringError(f"array {stmt.name!r} redeclared", stmt.line)
            size = stmt.size
            if isinstance(size, str):
                if size not in self.constants:
                    raise LoweringError(
                        f"array size {size!r} is not a known constant", stmt.line
                    )
                size = self.constants[size]
            if size <= 0:
                raise LoweringError(
                    f"array {stmt.name!r} must have a positive size", stmt.line
                )
            self.function.arrays[stmt.name] = size
        elif isinstance(stmt, ast.ArrayAssign):
            self._check_array(stmt.array, stmt.line)
            index = self._lower_expr(stmt.index)
            value = self._lower_expr(stmt.value)
            self._emit(Store(stmt.array, index, value))
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LoweringError("break outside a loop", stmt.line)
            self._terminate(Jump(self.loop_stack[-1][1]))
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LoweringError("continue outside a loop", stmt.line)
            self._terminate(Jump(self.loop_stack[-1][0]))
        elif isinstance(stmt, ast.Return):
            value = (
                self._lower_expr(stmt.value)
                if stmt.value is not None
                else Constant(0)
            )
            self._terminate(Return(value))
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        else:
            raise LoweringError(f"unknown statement {stmt!r}", stmt.line)

    def _lower_if(self, stmt: ast.If) -> None:
        then_block = self.function.new_block(hint="then")
        join_block = self.function.new_block(hint="join")
        if stmt.else_block is not None:
            else_block = self.function.new_block(hint="else")
            self._lower_condition(stmt.condition, then_block.label, else_block.label)
            self.current = then_block
            self._lower_block(stmt.then_block)
            self._start_block_jump(join_block.label)
            self.current = else_block
            self._lower_block(stmt.else_block)
            self._start_block_jump(join_block.label)
        else:
            self._lower_condition(stmt.condition, then_block.label, join_block.label)
            self.current = then_block
            self._lower_block(stmt.then_block)
            self._start_block_jump(join_block.label)
        self.current = join_block

    def _start_block_jump(self, label: str) -> None:
        if not self.current.is_terminated():
            self.current.append(Jump(label))

    def _lower_while(self, stmt: ast.While) -> None:
        header = self.function.new_block(hint="loop")
        body = self.function.new_block(hint="body")
        exit_block = self.function.new_block(hint="exit")
        self._start_block(header)
        self._lower_condition(stmt.condition, body.label, exit_block.label)
        self.current = body
        self.loop_stack.append((header.label, exit_block.label))
        self._lower_block(stmt.body)
        self.loop_stack.pop()
        self._start_block_jump(header.label)
        self.current = exit_block

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.function.new_block(hint="dobody")
        latch = self.function.new_block(hint="dolatch")
        exit_block = self.function.new_block(hint="exit")
        self._start_block(body)
        self.loop_stack.append((latch.label, exit_block.label))
        self._lower_block(stmt.body)
        self.loop_stack.pop()
        self._start_block_jump(latch.label)
        self.current = latch
        self._lower_condition(stmt.condition, body.label, exit_block.label)
        self.current = exit_block

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._lower_statement(stmt.init)
        header = self.function.new_block(hint="for")
        body = self.function.new_block(hint="body")
        update = self.function.new_block(hint="update")
        exit_block = self.function.new_block(hint="exit")
        self._start_block(header)
        if stmt.condition is not None:
            self._lower_condition(stmt.condition, body.label, exit_block.label)
        else:
            self.current.append(Jump(body.label))
        self.current = body
        self.loop_stack.append((update.label, exit_block.label))
        self._lower_block(stmt.body)
        self.loop_stack.pop()
        self._start_block_jump(update.label)
        self.current = update
        if stmt.update is not None:
            self._lower_statement(stmt.update)
        self._start_block_jump(header.label)
        self.current = exit_block

    # -- conditions --------------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """Emit control flow that jumps to ``true_label`` iff expr != 0."""
        self._line = expr.line
        if isinstance(expr, ast.LogicalExpr):
            mid = self.function.new_block(hint="cond")
            if expr.op == "&&":
                self._lower_condition(expr.lhs, mid.label, false_label)
            else:  # "||"
                self._lower_condition(expr.lhs, true_label, mid.label)
            self.current = mid
            self._lower_condition(expr.rhs, true_label, false_label)
            return
        if isinstance(expr, ast.UnaryExpr) and expr.op == "!":
            self._lower_condition(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.IntLit):
            self._terminate(Jump(true_label if expr.value != 0 else false_label))
            return
        if isinstance(expr, ast.BinaryExpr) and expr.op in _CMP_OP_MAP:
            lhs = self._lower_expr(expr.lhs)
            rhs = self._lower_expr(expr.rhs)
            cond = self.function.new_temp(hint="c")
            self._emit(Cmp(cond, _CMP_OP_MAP[expr.op], lhs, rhs))
            self._terminate(Branch(cond, true_label, false_label))
            return
        value = self._lower_expr(expr)
        cond = self.function.new_temp(hint="c")
        self._emit(Cmp(cond, "ne", value, Constant(0)))
        self._terminate(Branch(cond, true_label, false_label))

    # -- expressions ---------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return Constant(expr.value)
        if isinstance(expr, ast.Var):
            self._check_not_array(expr.name, expr.line)
            if expr.name in self.constants:
                return Constant(self.constants[expr.name])
            return Temp(expr.name)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.LogicalExpr):
            return self._lower_logical_value(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.IndexExpr):
            self._check_array(expr.array, expr.line)
            index = self._lower_expr(expr.index)
            dest = self.function.new_temp(hint="ld")
            self._emit(Load(dest, expr.array, index))
            return dest
        if isinstance(expr, ast.InputExpr):
            dest = self.function.new_temp(hint="in")
            self._emit(Input(dest))
            return dest
        raise LoweringError(f"unknown expression {expr!r}", expr.line)

    def _lower_binary(self, expr: ast.BinaryExpr) -> Value:
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        dest = self.function.new_temp(hint="t")
        if expr.op in _CMP_OP_MAP:
            self._emit(Cmp(dest, _CMP_OP_MAP[expr.op], lhs, rhs))
        elif expr.op in _BINARY_OP_MAP:
            self._emit(BinOp(dest, _BINARY_OP_MAP[expr.op], lhs, rhs))
        else:
            raise LoweringError(f"unknown binary operator {expr.op!r}", expr.line)
        return dest

    def _lower_logical_value(self, expr: ast.LogicalExpr) -> Value:
        """Materialise a short-circuit expression into a 0/1 temp."""
        dest = self.function.new_temp(hint="b")
        rhs_block = self.function.new_block(hint="scrhs")
        end_block = self.function.new_block(hint="scend")
        if expr.op == "&&":
            self._emit(Copy(dest, Constant(0)))
            self._lower_condition(expr.lhs, rhs_block.label, end_block.label)
        else:  # "||"
            self._emit(Copy(dest, Constant(1)))
            self._lower_condition(expr.lhs, end_block.label, rhs_block.label)
        self.current = rhs_block
        value = self._lower_expr(expr.rhs)
        normalised = self.function.new_temp(hint="b")
        self._emit(Cmp(normalised, "ne", value, Constant(0)))
        self._emit(Copy(dest, normalised))
        self._start_block_jump(end_block.label)
        self.current = end_block
        return dest

    def _lower_unary(self, expr: ast.UnaryExpr) -> Value:
        operand = self._lower_expr(expr.operand)
        dest = self.function.new_temp(hint="t")
        if expr.op == "-":
            self._emit(UnOp(dest, "neg", operand))
        elif expr.op == "!":
            self._emit(Cmp(dest, "eq", operand, Constant(0)))
        else:
            raise LoweringError(f"unknown unary operator {expr.op!r}", expr.line)
        return dest

    def _lower_call(self, expr: ast.CallExpr) -> Value:
        if expr.callee not in self.signatures:
            intrinsic = self._lower_intrinsic(expr)
            if intrinsic is not None:
                return intrinsic
            raise LoweringError(f"call to undefined function {expr.callee!r}", expr.line)
        arity = self.signatures[expr.callee]
        if len(expr.args) != arity:
            raise LoweringError(
                f"{expr.callee!r} expects {arity} arguments, got {len(expr.args)}",
                expr.line,
            )
        args = [self._lower_expr(arg) for arg in expr.args]
        dest = self.function.new_temp(hint="call")
        self._emit(Call(dest, expr.callee, args))
        return dest

    def _lower_intrinsic(self, expr: ast.CallExpr) -> Optional[Value]:
        """``min``/``max``/``abs`` builtins (unless user-defined)."""
        if expr.callee in ("min", "max"):
            if len(expr.args) != 2:
                raise LoweringError(
                    f"{expr.callee}() expects 2 arguments", expr.line
                )
            lhs = self._lower_expr(expr.args[0])
            rhs = self._lower_expr(expr.args[1])
            dest = self.function.new_temp(hint="t")
            self._emit(BinOp(dest, expr.callee, lhs, rhs))
            return dest
        if expr.callee == "abs":
            if len(expr.args) != 1:
                raise LoweringError("abs() expects 1 argument", expr.line)
            operand = self._lower_expr(expr.args[0])
            negated = self.function.new_temp(hint="t")
            self._emit(UnOp(negated, "neg", operand))
            dest = self.function.new_temp(hint="t")
            self._emit(BinOp(dest, "max", operand, negated))
            return dest
        return None

    # -- checks ----------------------------------------------------------------

    def _check_array(self, name: str, line: int) -> None:
        if name not in self.function.arrays:
            raise LoweringError(f"unknown array {name!r}", line)

    def _check_not_array(self, name: str, line: int) -> None:
        if name in self.function.arrays:
            raise LoweringError(f"array {name!r} used as a scalar", line)


def lower_program(program: ast.Program, module_name: str = "module") -> Module:
    """Lower a parsed program into an IR module."""
    signatures = {f.name: len(f.params) for f in program.functions}
    if len(signatures) != len(program.functions):
        raise LoweringError("duplicate function definition", 0)
    constants = _evaluate_constants(program.constants)
    module = Module(module_name)
    for funcdef in program.functions:
        if funcdef.name in constants:
            raise LoweringError(
                f"function {funcdef.name!r} shadows a constant", funcdef.line
            )
        module.add_function(
            _FunctionLowerer(funcdef, signatures, constants).lower()
        )
    from repro.core.config import default_verify_ir

    if default_verify_ir():
        from repro.ir.verifier import verify_function

        for function in module.functions.values():
            verify_function(function)
    return module


def _evaluate_constants(definitions: List[ast.ConstDef]) -> Dict[str, int]:
    """Fold top-level constant definitions (may reference earlier ones)."""
    constants: Dict[str, int] = {}
    for definition in definitions:
        if definition.name in constants:
            raise LoweringError(
                f"constant {definition.name!r} redefined", definition.line
            )
        constants[definition.name] = _fold_const_expr(definition.value, constants)
    return constants


def _fold_const_expr(expr: ast.Expr, constants: Dict[str, int]) -> int:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Var):
        if expr.name not in constants:
            raise LoweringError(
                f"constant expression references unknown name {expr.name!r}",
                expr.line,
            )
        return constants[expr.name]
    if isinstance(expr, ast.UnaryExpr):
        value = _fold_const_expr(expr.operand, constants)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return int(not value)
    if isinstance(expr, ast.BinaryExpr):
        lhs = _fold_const_expr(expr.lhs, constants)
        rhs = _fold_const_expr(expr.rhs, constants)
        try:
            return {
                "+": lambda: lhs + rhs,
                "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs // rhs,
                "%": lambda: lhs % rhs,
                "<<": lambda: lhs << rhs,
                ">>": lambda: lhs >> rhs,
                "&": lambda: lhs & rhs,
                "|": lambda: lhs | rhs,
                "^": lambda: lhs ^ rhs,
                "==": lambda: int(lhs == rhs),
                "!=": lambda: int(lhs != rhs),
                "<": lambda: int(lhs < rhs),
                "<=": lambda: int(lhs <= rhs),
                ">": lambda: int(lhs > rhs),
                ">=": lambda: int(lhs >= rhs),
            }[expr.op]()
        except (KeyError, ZeroDivisionError, ValueError) as error:
            raise LoweringError(
                f"bad constant expression: {error}", expr.line
            ) from None
    raise LoweringError("constant expressions must be compile-time foldable", expr.line)


def compile_source(source: str, module_name: str = "module") -> Module:
    """Parse and lower toy-language source into an IR module."""
    return lower_program(parse(source), module_name=module_name)
