"""Payload serialization: exact JSON round trips, order preserved.

The disk tier rewrites payloads through ``json.dump(sort_keys=True)``,
so everything order-sensitive must survive that -- hence the pair-list
encodings -- and floats/infinite bounds must round-trip exactly.
"""

import json
import math

import pytest

from repro.core import VRPPredictor
from repro.core.bounds import Bound
from repro.core.counters import Counters
from repro.core.rangeset import BOTTOM, RangeSet, TOP
from repro.incremental.serialize import (
    PayloadError,
    bound_from_json,
    bound_to_json,
    counters_from_json,
    counters_to_json,
    prediction_from_json,
    prediction_to_json,
    rangeset_from_json,
    rangeset_map_from_json,
    rangeset_map_to_json,
    rangeset_to_json,
)

from tests.incremental.helpers import MULTI_COMPONENT, build


def disk_round_trip(document):
    """What the disk tier does to a payload: dump sorted, reload."""
    return json.loads(json.dumps(document, sort_keys=True))


class TestBounds:
    @pytest.mark.parametrize(
        "bound",
        [
            Bound(0, None),
            Bound(-7, None),
            Bound(3.5, None),
            Bound(2, "n"),
            Bound(math.inf, None),
            Bound(-math.inf, None),
        ],
    )
    def test_round_trip(self, bound):
        assert bound_from_json(disk_round_trip(bound_to_json(bound))) == bound

    def test_infinities_encode_as_strings(self):
        assert bound_to_json(Bound(math.inf, None))[0] == "inf"
        assert bound_to_json(Bound(-math.inf, None))[0] == "-inf"

    @pytest.mark.parametrize("data", [None, [], [1], [1, 2, 3], ["x", 1]])
    def test_malformed_raises_payload_error(self, data):
        with pytest.raises(PayloadError):
            bound_from_json(data)


class TestRangeSets:
    @pytest.mark.parametrize(
        "rangeset",
        [
            TOP,
            BOTTOM,
            RangeSet.constant(5),
            RangeSet.span(0, 100, 3),
            RangeSet.symbol("n", 2),
            RangeSet.boolean(0.875),
        ],
    )
    def test_round_trip(self, rangeset):
        clone = rangeset_from_json(disk_round_trip(rangeset_to_json(rangeset)))
        assert clone == rangeset

    def test_probabilities_round_trip_exactly(self):
        # repr-based JSON floats are exact; merge products like 1/3
        # must not drift through the store.
        rangeset = RangeSet.boolean(1.0 / 3.0)
        clone = rangeset_from_json(disk_round_trip(rangeset_to_json(rangeset)))
        assert clone.ranges[0].probability == rangeset.ranges[0].probability

    def test_map_round_trip_preserves_order(self):
        mapping = {"z_1": RangeSet.constant(1), "a_2": TOP, "m_3": BOTTOM}
        clone = rangeset_map_from_json(
            disk_round_trip(rangeset_map_to_json(mapping))
        )
        assert list(clone) == ["z_1", "a_2", "m_3"]
        assert clone == mapping

    @pytest.mark.parametrize(
        "data", [None, {}, {"k": "wat"}, {"k": "set", "r": [[1, 2]]}]
    )
    def test_malformed_raises_payload_error(self, data):
        with pytest.raises(PayloadError):
            rangeset_from_json(data)


class TestCounters:
    def test_round_trip(self):
        counters = Counters()
        counters.expr_evaluations += 13
        counters.phi_evaluations += 2
        clone = counters_from_json(disk_round_trip(counters_to_json(counters)))
        assert clone.as_dict() == counters.as_dict()

    def test_unknown_fields_are_ignored(self):
        clone = counters_from_json({"expr_evaluations": 4, "not_a_field": 9})
        assert clone.expr_evaluations == 4

    def test_malformed_raises_payload_error(self):
        with pytest.raises(PayloadError):
            counters_from_json([1, 2])


class TestPredictions:
    @pytest.fixture(scope="class")
    def analysed(self):
        module, infos = build(MULTI_COMPONENT)
        prediction = VRPPredictor().predict_module(module, infos)
        return module, prediction

    def test_round_trip_is_exact(self, analysed):
        module, prediction = analysed
        for name, function_prediction in prediction.functions.items():
            document = disk_round_trip(prediction_to_json(function_prediction))
            clone = prediction_from_json(module.functions[name], document)
            # Iteration order of these mappings reaches rendered output,
            # so compare as item lists, not just as dicts.
            assert list(clone.branch_probability.items()) == list(
                function_prediction.branch_probability.items()
            )
            assert list(clone.values.items()) == list(
                function_prediction.values.items()
            )
            assert clone.edge_frequency == function_prediction.edge_frequency
            assert clone.block_frequency == function_prediction.block_frequency
            assert clone.used_heuristic == function_prediction.used_heuristic
            assert clone.return_set == function_prediction.return_set
            assert clone.aborted == function_prediction.aborted
            assert clone.derived == function_prediction.derived
            assert clone.widened == function_prediction.widened
            assert (
                clone.counters.as_dict()
                == function_prediction.counters.as_dict()
            )

    def test_malformed_prediction_raises_payload_error(self, analysed):
        module, prediction = analysed
        function_prediction = next(iter(prediction.functions.values()))
        document = prediction_to_json(function_prediction)
        del document["branch_probability"]
        with pytest.raises(PayloadError):
            prediction_from_json(module.functions["main"], document)

    def test_malformed_edge_raises_payload_error(self, analysed):
        module, prediction = analysed
        function_prediction = next(iter(prediction.functions.values()))
        document = prediction_to_json(function_prediction)
        document["edge_frequency"] = [["a", "b"]]
        with pytest.raises(PayloadError):
            prediction_from_json(module.functions["main"], document)
