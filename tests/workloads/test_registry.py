"""Workload registry and program validity tests.

Every workload must compile, pass the SSA verifier, and run both input
sets deterministically -- these are the programs all figures depend on.
"""

import pytest

from repro.ir import prepare_module, verify_function
from repro.lang import compile_source
from repro.profiling import run_module
from repro.workloads import Workload, all_workloads, get_workload, lcg_stream, suite


class TestRegistry:
    def test_suites_populated(self):
        assert len(suite("int")) >= 10
        assert len(suite("fp")) >= 10

    def test_names_unique(self):
        names = [w.name for w in all_workloads()]
        assert len(names) == len(set(names))

    def test_get_workload(self):
        assert get_workload("matmul").suite == "fp"
        with pytest.raises(KeyError):
            get_workload("no_such_workload")

    def test_invalid_suite_rejected(self):
        with pytest.raises(ValueError):
            Workload(
                name="x", suite="quantum", description="", source="",
                train_args=[], ref_args=[],
            )

    def test_lcg_stream_deterministic(self):
        assert lcg_stream(42, 10) == lcg_stream(42, 10)
        assert lcg_stream(42, 10) != lcg_stream(43, 10)

    def test_lcg_stream_bounds(self):
        for value in lcg_stream(7, 100, modulus=50):
            assert 0 <= value < 50

    def test_train_and_ref_inputs_differ(self):
        for workload in all_workloads():
            distinct = (
                workload.train_args != workload.ref_args
                or workload.train_inputs != workload.ref_inputs
            )
            assert distinct, f"{workload.name} train and ref are identical"


@pytest.mark.parametrize("workload", all_workloads(), ids=lambda w: w.name)
class TestWorkloadValidity:
    def test_compiles_and_verifies(self, workload):
        module = compile_source(workload.source, module_name=workload.name)
        infos = prepare_module(module)
        for name, function in module.functions.items():
            verify_function(
                function, ssa=True, param_names=set(infos[name].param_names.values())
            )

    def test_train_run_completes(self, workload):
        module = compile_source(workload.source, module_name=workload.name)
        prepare_module(module)
        result = run_module(
            module,
            args=workload.train_args,
            input_values=workload.train_inputs,
            max_steps=workload.max_steps,
        )
        assert result.return_value is not None
        assert result.branch_counts  # every program must exercise branches

    def test_train_run_deterministic(self, workload):
        module = compile_source(workload.source, module_name=workload.name)
        prepare_module(module)
        first = run_module(
            module, args=workload.train_args, input_values=workload.train_inputs,
            max_steps=workload.max_steps,
        )
        second = run_module(
            module, args=workload.train_args, input_values=workload.train_inputs,
            max_steps=workload.max_steps,
        )
        assert first.return_value == second.return_value
        assert first.branch_counts == second.branch_counts
