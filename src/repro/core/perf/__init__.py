"""Analysis performance layer: interning, memoization, and cache stats.

The layer is behaviour-neutral by construction (see ``docs/PERFORMANCE.md``):
with it on, predictions and Figure-5/6 work counts are byte-identical to a
run with it off -- only wall time changes.  It is controlled by
``VRPConfig.perf`` (default: the process-global switch, itself seeded from
the ``REPRO_PERF`` environment variable).

Only :mod:`.context` is imported eagerly: the other submodules import the
lattice-value modules, which themselves import :mod:`.context`, so loading
them from here would be a cycle.  Access them lazily
(``perf.memo``/``perf.interning``/``perf.stats``) or via the helpers below.
"""

from __future__ import annotations

from repro.core.perf.context import (
    activate,
    globally_enabled,
    is_active,
    set_global_enabled,
)

__all__ = [
    "activate",
    "globally_enabled",
    "is_active",
    "set_global_enabled",
    "reset",
    "configure",
    "snapshot",
    "interning",
    "memo",
    "stats",
    "context",
    "fingerprint",
]

_SUBMODULES = ("interning", "memo", "stats", "context", "fingerprint")


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.core.perf.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def reset() -> None:
    """Clear every cache and every hit/miss counter.

    Not called on the analysis path: caches persist across runs (results
    are cache-state-independent by construction, so persistence only
    buys hit rate).  Use this for isolation in tests and benchmarks --
    e.g. before timing a cold run.
    """
    from repro.core.perf import interning as _interning
    from repro.core.perf import memo as _memo
    from repro.core.perf import stats as _stats

    _interning.clear()
    _memo.clear()
    _stats.reset_stats()


def configure(
    memo_size: "int | None" = None, intern_size: "int | None" = None
) -> None:
    """Apply cache-capacity knobs (``VRPConfig.perf_memo_size`` etc.)."""
    if intern_size is not None:
        from repro.core.perf import interning as _interning

        _interning.configure(intern_size)
    if memo_size is not None:
        from repro.core.perf import memo as _memo

        _memo.configure(memo_size)


def snapshot() -> dict:
    """A serialisable copy of all cache statistics (metrics ``perf`` key)."""
    from repro.core.perf import stats as _stats

    return _stats.snapshot()
