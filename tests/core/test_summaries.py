"""Function summaries, purity, and k-limited context sensitivity.

The contract under test, in order of importance:

1. ``context_depth=0`` is byte-identical to the analysis before the
   summaries layer existed -- same branches, same work counters;
2. ``context_depth>=1`` strictly removes heuristic fallbacks on
   multi-site programs where one unanalysable call site used to poison
   the merged summary;
3. purity (range-effect freedom) is computed correctly, because it is
   the soundness condition for memoizing (function, context) pairs;
4. the context memo is a bounded LRU whose statistics feed the perf
   layer, and the round-cap safety valve reports itself through both a
   counter and a trace event.
"""

from __future__ import annotations

from repro.core import VRPConfig
from repro.core.callgraph import CallGraph
from repro.core.interprocedural import analyse_module
from repro.core.perf import stats as perf_stats_mod
from repro.core.rangeset import BOTTOM, TOP, RangeSet
from repro.core.summaries import (
    DEFAULT_CONTEXT_CACHE_SIZE,
    SummaryCache,
    abstract_argument_set,
    compute_purity,
    context_key,
)
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.observability import Tracer, use
from repro.observability.events import RoundCap


def prepare(source):
    module = compile_source(source)
    return module, prepare_module(module)


# One pure helper, two narrow call sites, one ⊥ site: the canonical
# program where the context-insensitive merge loses and k=1 wins.
DISPATCH = """
func affine(v) {
  return v * 3 + 1;
}

func main(n) {
  var low = 0;
  var wild = 0;
  for (i = 0; i < n; i = i + 1) {
    var x = input();
    var a8 = x % 8;
    var a = affine(a8);
    if (a < 12) { low = low + 1; }
    var w = affine(x);
    if (w < 0) { wild = wild + 1; }
  }
  return low + wild;
}
"""


class TestPurity:
    def test_input_makes_impure(self):
        module, _ = prepare(
            """
            func reader() { return input(); }
            func main(n) { return reader(); }
            """
        )
        purity = compute_purity(module)
        assert not purity["reader"]
        assert not purity["main"]

    def test_impurity_propagates_to_callers(self):
        module, _ = prepare(DISPATCH)
        purity = compute_purity(module)
        assert purity["affine"]
        assert not purity["main"]  # reads input()

    def test_pure_recursion_stays_pure(self):
        module, _ = prepare(
            """
            func fact(v) {
              if (v < 2) { return 1; }
              var r = fact(v - 1);
              return v * r;
            }
            func main(n) { return fact(6); }
            """
        )
        purity = compute_purity(module)
        assert purity["fact"]
        assert purity["main"]

    def test_undefined_callee_is_impure(self):
        module, _ = prepare(
            """
            func ext(x) { return x; }
            func main(n) { return ext(n); }
            """
        )
        del module.functions["ext"]
        purity = compute_purity(module, CallGraph(module))
        assert not purity["main"]


class TestContextKeys:
    def test_key_shape_and_hashability(self):
        args = (RangeSet.constant(3), BOTTOM)
        key = context_key("f", args, 2)
        assert key == ("f", 2, args)
        assert hash(key) == hash(("f", 2, args))

    def test_abstraction_widens_top_to_bottom(self):
        assert abstract_argument_set(TOP).is_bottom
        assert abstract_argument_set(BOTTOM).is_bottom

    def test_abstraction_keeps_numeric_sets(self):
        narrow = RangeSet.constant(5)
        assert abstract_argument_set(narrow) == narrow


class TestSummaryCache:
    def setup_method(self):
        perf_stats_mod.stats().caches["summary_context"].reset()

    def test_miss_then_hit(self):
        cache = SummaryCache()
        key = context_key("f", (RangeSet.constant(1),), 1)
        assert cache.get(key) is None
        cache.put(key, RangeSet.constant(4))
        assert cache.get(key) == RangeSet.constant(4)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_lru_eviction_counts(self):
        cache = SummaryCache(capacity=2)
        keys = [
            context_key("f", (RangeSet.constant(i),), 1) for i in range(3)
        ]
        for key in keys:
            cache.put(key, BOTTOM)
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is not None
        assert cache.stats()["evictions"] == 1

    def test_clear_drops_entries_keeps_stats(self):
        cache = SummaryCache()
        key = context_key("f", (), 1)
        cache.put(key, BOTTOM)
        assert cache.get(key) is not None
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key) is None
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_default_capacity(self):
        assert SummaryCache().capacity == DEFAULT_CONTEXT_CACHE_SIZE


class TestContextInsensitiveIdentity:
    def test_k0_equals_default_config(self):
        module_a, ssa_a = prepare(DISPATCH)
        baseline = analyse_module(module_a, ssa_a, config=VRPConfig())
        module_b, ssa_b = prepare(DISPATCH)
        depth0 = analyse_module(
            module_b, ssa_b, config=VRPConfig(context_depth=0)
        )
        assert baseline.all_branches() == depth0.all_branches()
        assert baseline.heuristic_branches() == depth0.heuristic_branches()
        assert (
            baseline.counters.as_dict() == depth0.counters.as_dict()
        )

    def test_k0_reports_no_contexts(self):
        module, ssa = prepare(DISPATCH)
        prediction = analyse_module(module, ssa, config=VRPConfig())
        assert prediction.interprocedural["context_depth"] == 0
        assert prediction.interprocedural["contexts_analyzed"] == 0


class TestContextSensitivity:
    def test_k1_removes_poisoned_fallbacks(self):
        module0, ssa0 = prepare(DISPATCH)
        at0 = analyse_module(module0, ssa0, config=VRPConfig(context_depth=0))
        module1, ssa1 = prepare(DISPATCH)
        at1 = analyse_module(module1, ssa1, config=VRPConfig(context_depth=1))
        assert len(at1.heuristic_branches()) < len(at0.heuristic_branches())
        # The recovered branch is interior: a proof would be unsound
        # (the merged behaviour includes the unknown site).
        recovered = set(at0.heuristic_branches()) - set(
            at1.heuristic_branches()
        )
        for key in recovered:
            assert 0.0 < at1.all_branches()[key] < 1.0

    def test_contexts_and_cache_stats_reported(self):
        module, ssa = prepare(DISPATCH)
        prediction = analyse_module(
            module, ssa, config=VRPConfig(context_depth=1)
        )
        stats = prediction.interprocedural
        assert stats["context_depth"] == 1
        assert stats["contexts_analyzed"] > 0
        assert set(stats["summary_cache"]) >= {"hits", "misses", "evictions"}

    def test_two_level_chain_needs_k2(self):
        source = """
        func inner(v) {
          return v * 2 + 1;
        }

        func outer(v) {
          var w = inner(v);
          return w + v;
        }

        func main(n) {
          var hits = 0;
          for (i = 0; i < n; i = i + 1) {
            var x = input();
            var x4 = x % 4;
            var y = outer(x4);
            if (y < 5) { hits = hits + 1; }
            var z = inner(x);
            if (z < 0) { hits = hits - 1; }
          }
          return hits;
        }
        """
        counts = {}
        for depth in (0, 1, 2):
            module, ssa = prepare(source)
            prediction = analyse_module(
                module, ssa, config=VRPConfig(context_depth=depth)
            )
            counts[depth] = len(prediction.heuristic_branches())
        # k=1 refines outer's *own* context but its inner call still
        # reads the poisoned merged summary; only k=2 reaches through.
        assert counts[1] == counts[0]
        assert counts[2] < counts[1]

    def test_recursive_context_answers_with_merge(self):
        source = """
        func fact(v) {
          if (v < 2) { return 1; }
          var r = fact(v - 1);
          return v * r;
        }

        func main(n) {
          var acc = 0;
          for (i = 0; i < n; i = i + 1) {
            var x = input();
            var x6 = x % 6;
            var f = fact(x6);
            if (f > 10) { acc = acc + 1; }
          }
          return acc;
        }
        """
        baselines = {}
        for depth in (0, 2):
            module, ssa = prepare(source)
            prediction = analyse_module(
                module, ssa, config=VRPConfig(context_depth=depth)
            )
            baselines[depth] = prediction.all_branches()
        # The cycle guard answers recursive contexts from the merged
        # fixed point: no unrolling, no divergence, identical answers.
        assert set(baselines[0]) == set(baselines[2])


class TestModuleSummaries:
    def test_summary_contents(self):
        module, ssa = prepare(DISPATCH)
        prediction = analyse_module(module, ssa)
        summary = prediction.summaries.of("affine")
        assert summary.pure
        assert summary.call_sites == 2
        assert summary.params == ("v",)
        assert summary.call_frequency > 0.0
        # One ⊥ site poisons the merged parameter and return ranges.
        assert summary.param_range("v").is_bottom
        assert summary.return_range.is_bottom
        as_dict = summary.as_dict()
        assert as_dict["function"] == "affine"
        assert as_dict["pure"] is True

    def test_container_protocols(self):
        module, ssa = prepare(DISPATCH)
        summaries = analyse_module(module, ssa).summaries
        assert "affine" in summaries
        assert "nope" not in summaries
        assert list(summaries) == sorted(summaries.as_dict())
        assert len(summaries) == 2
        assert summaries.of("nope") is None


class TestRoundCap:
    def test_cap_emits_event_and_counter(self):
        module, ssa = prepare(
            """
            func ping(n) {
              if (n < 1) { return 0; }
              var r = pong(n - 1);
              return r + 1;
            }

            func pong(n) {
              if (n < 1) { return 1; }
              var r = ping(n - 1);
              return r + 1;
            }

            func main(n) {
              return ping(40);
            }
            """
        )
        tracer = Tracer()
        with use(tracer):
            prediction = analyse_module(module, ssa, max_rounds=1)
        assert prediction.counters.as_dict()["interprocedural_round_caps"] == 1
        stats = prediction.interprocedural
        assert stats["round_cap_hits"] == 1
        assert stats["converged"] is False
        events = tracer.events_of(RoundCap)
        assert len(events) == 1
        assert events[0].rounds == 1
        assert set(events[0].functions) >= {"ping", "pong"}

    def test_converged_run_reports_no_cap(self):
        module, ssa = prepare(DISPATCH)
        prediction = analyse_module(module, ssa)
        stats = prediction.interprocedural
        assert stats["round_cap_hits"] == 0
        assert stats["converged"] is True
        assert prediction.counters.as_dict()["interprocedural_round_caps"] == 0


class TestProvenance:
    def test_branch_provenance_tags(self):
        module, ssa = prepare(DISPATCH)
        prediction = analyse_module(
            module, ssa, config=VRPConfig(context_depth=1)
        )
        tags = {
            label: prediction.branch_provenance("main", label)
            for _, label in prediction.all_branches()
        }
        assert "interprocedural" in tags.values()
        assert "heuristic" in tags.values()

    def test_taint_chain_names_call_sites(self):
        # Every call site passes a real range, so affine's merged
        # parameter is a real range too and seeds the taint.
        module, ssa = prepare(
            """
            func affine(v) {
              return v * 3 + 1;
            }

            func main(n) {
              var low = 0;
              for (i = 0; i < n; i = i + 1) {
                var x = input();
                var a8 = x % 8;
                var a = affine(a8);
                if (a < 12) { low = low + 1; }
                var a4 = x % 4;
                var b = affine(a4);
                if (b < 7) { low = low + 1; }
              }
              return low;
            }
            """
        )
        prediction = analyse_module(module, ssa)
        # Inside affine, the parameter is seeded interprocedurally; its
        # provenance chain points back at both call sites in main.
        tainted = prediction.tainted_names("affine")
        assert tainted
        param_seeds = [
            entry
            for name in sorted(tainted)
            for entry in prediction.provenance_chain("affine", name)
            if entry["kind"] == "param"
        ]
        assert param_seeds
        entry = param_seeds[0]
        assert entry["function"] == "affine"
        assert {site["function"] for site in entry["sites"]} == {"main"}
        assert len(entry["sites"]) == 2

    def test_intraprocedural_function_has_no_taint(self):
        module, ssa = prepare(
            """
            func main(n) {
              if (n > 0) { return 1; }
              return 0;
            }
            """
        )
        prediction = analyse_module(module, ssa)
        assert prediction.tainted_names("main") == set()
        assert (
            prediction.branch_provenance("main", "entry")
            in ("intraprocedural", "heuristic")
        )
