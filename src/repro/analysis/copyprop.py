"""Copy propagation over SSA form.

The classical transformation VRP subsumes: a variable defined by
``x = Copy y`` (or by a Pi node, which is a semantic copy) can have all
its uses replaced by its source.  Provided both as a plain SSA rewrite
and as a query API used to validate the paper's subsumption claim
(a VRP final range ``1[y:y:0]`` must agree with the copy chains here).

Pi-derived copies are *not* folded by default: the assertion carries
range information VRP wants to keep.  Enable ``through_assertions`` when
using this as a pure optimiser.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Copy, Pi
from repro.ir.values import Temp, Value


def copy_chains(function: Function, through_assertions: bool = False) -> Dict[str, str]:
    """Map each copy-defined SSA name to its ultimate source name."""
    direct: Dict[str, str] = {}
    for block in function.blocks.values():
        for instr in block.instructions:
            if isinstance(instr, Copy) and isinstance(instr.src, Temp):
                direct[instr.dest.name] = instr.src.name
            elif (
                through_assertions
                and isinstance(instr, Pi)
                and isinstance(instr.src, Temp)
            ):
                direct[instr.dest.name] = instr.src.name
    resolved: Dict[str, str] = {}

    def resolve(name: str) -> str:
        seen = []
        current = name
        while current in direct and current not in resolved:
            seen.append(current)
            current = direct[current]
        root = resolved.get(current, current)
        for entry in seen:
            resolved[entry] = root
        return root

    return {name: resolve(name) for name in direct}


def propagate_copies(function: Function, through_assertions: bool = False) -> int:
    """Rewrite uses of copies to their sources; returns replacements made."""
    chains = copy_chains(function, through_assertions=through_assertions)
    replaced = 0
    for block in function.blocks.values():
        for instr in block.instructions:
            for operand in list(instr.operands()):
                if isinstance(operand, Temp) and operand.name in chains:
                    root = chains[operand.name]
                    if root != operand.name:
                        instr.replace_operand(operand, Temp(root))
                        replaced += 1
    return replaced


def remove_dead_copies(function: Function) -> int:
    """Delete Copy instructions whose result is no longer used."""
    used = set()
    for block in function.blocks.values():
        for instr in block.instructions:
            for operand in instr.operands():
                if isinstance(operand, Temp):
                    used.add(operand.name)
    removed = 0
    for block in function.blocks.values():
        for instr in list(block.instructions):
            if isinstance(instr, Copy) and instr.dest.name not in used:
                block.remove(instr)
                removed += 1
    return removed
