"""Sparse conditional constant propagation (Wegman–Zadeck, TOPLAS 1991).

The algorithm value range propagation generalises.  Implemented over the
same SSA IR with the same two-worklist structure, using the classic
three-level lattice (⊤ / constant / ⊥).  Serves three purposes here:

* the baseline for the paper's claim that VRP *subsumes* constant
  propagation (every constant SCCP finds, VRP finds as a ``1[c:c:0]``);
* executable-edge information (unreachable code detection);
* a reference point for the Figure 5/6 work-count comparison.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.ssa import SSAInfo, build_ssa_edges
from repro.ir.values import Constant, Temp, Undef, Value


class LatticeValue:
    """⊤ (undetermined), a known constant, or ⊥ (not constant)."""

    __slots__ = ("kind", "constant")

    TOP = "top"
    CONST = "const"
    BOTTOM = "bottom"

    def __init__(self, kind: str, constant: Optional[int] = None):
        self.kind = kind
        self.constant = constant

    @staticmethod
    def top() -> "LatticeValue":
        return _TOP

    @staticmethod
    def bottom() -> "LatticeValue":
        return _BOTTOM

    @staticmethod
    def const(value: int) -> "LatticeValue":
        return LatticeValue(LatticeValue.CONST, value)

    @property
    def is_top(self) -> bool:
        return self.kind == LatticeValue.TOP

    @property
    def is_bottom(self) -> bool:
        return self.kind == LatticeValue.BOTTOM

    @property
    def is_const(self) -> bool:
        return self.kind == LatticeValue.CONST

    def meet(self, other: "LatticeValue") -> "LatticeValue":
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        if self.constant == other.constant:
            return self
        return _BOTTOM

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LatticeValue)
            and self.kind == other.kind
            and self.constant == other.constant
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.constant))

    def __repr__(self) -> str:
        if self.is_const:
            return f"Const({self.constant})"
        return "Top" if self.is_top else "Bottom"


_TOP = LatticeValue(LatticeValue.TOP)
_BOTTOM = LatticeValue(LatticeValue.BOTTOM)


class SCCPResult:
    """Constants, executable edges, and reachable blocks."""

    def __init__(
        self,
        values: Dict[str, LatticeValue],
        executable_edges: Set[Tuple[str, str]],
        reachable_blocks: Set[str],
    ):
        self.values = values
        self.executable_edges = executable_edges
        self.reachable_blocks = reachable_blocks

    def constants(self) -> Dict[str, int]:
        return {
            name: value.constant
            for name, value in self.values.items()
            if value.is_const and value.constant is not None
        }

    def value_of(self, name: str) -> LatticeValue:
        return self.values.get(name, _TOP)


def run_sccp(function: Function, ssa_info: SSAInfo) -> SCCPResult:
    """Run SCCP over a prepared (SSA-form) function."""
    cfg = CFG(function)
    edges = build_ssa_edges(function, ssa_info)
    values: Dict[str, LatticeValue] = {
        name: _BOTTOM for name in ssa_info.param_names.values()
    }
    executable: Set[Tuple[str, str]] = set()
    visited: Set[str] = set()
    flow: deque = deque()
    ssa_work: deque = deque()

    def value_of(operand: Value) -> LatticeValue:
        if isinstance(operand, Constant):
            return LatticeValue.const(int(operand.value))
        if isinstance(operand, Undef):
            return _BOTTOM
        if isinstance(operand, Temp):
            return values.get(operand.name, _TOP)
        raise TypeError(f"unknown operand {operand!r}")

    def update(name: str, new_value: LatticeValue) -> None:
        old = values.get(name, _TOP)
        merged = old.meet(new_value)
        if merged != old:
            values[name] = merged
            for use in edges.uses_of.get(name, ()):
                ssa_work.append(use)

    def transfer(instr: Instruction) -> Optional[LatticeValue]:
        if isinstance(instr, Copy):
            return value_of(instr.src)
        if isinstance(instr, Pi):
            return value_of(instr.src)  # assertions do not create constants
        if isinstance(instr, (Load, Input)):
            return _BOTTOM
        if isinstance(instr, Call):
            return _BOTTOM
        if isinstance(instr, BinOp):
            lhs, rhs = value_of(instr.lhs), value_of(instr.rhs)
            if lhs.is_bottom or rhs.is_bottom:
                return _BOTTOM
            if lhs.is_top or rhs.is_top:
                return _TOP
            return _fold_binop(instr.op, lhs.constant, rhs.constant)
        if isinstance(instr, UnOp):
            operand = value_of(instr.operand)
            if operand.is_bottom:
                return _BOTTOM
            if operand.is_top:
                return _TOP
            assert operand.constant is not None
            value = -operand.constant if instr.op == "neg" else int(not operand.constant)
            return LatticeValue.const(value)
        if isinstance(instr, Cmp):
            lhs, rhs = value_of(instr.lhs), value_of(instr.rhs)
            if lhs.is_bottom or rhs.is_bottom:
                return _BOTTOM
            if lhs.is_top or rhs.is_top:
                return _TOP
            return LatticeValue.const(
                int(_fold_cmp(instr.op, lhs.constant, rhs.constant))
            )
        return None

    def evaluate_phi(phi: Phi) -> None:
        label = phi.block.label  # type: ignore[union-attr]
        merged = _TOP
        for pred, incoming in phi.incomings:
            if (pred, label) in executable:
                merged = merged.meet(value_of(incoming))
        update(phi.dest.name, merged)

    def evaluate_terminator(instr: Instruction) -> None:
        label = instr.block.label  # type: ignore[union-attr]
        if isinstance(instr, Jump):
            mark_edge(label, instr.target)
        elif isinstance(instr, Branch):
            cond = value_of(instr.cond)
            if cond.is_top:
                return
            if cond.is_bottom:
                mark_edge(label, instr.true_target)
                mark_edge(label, instr.false_target)
            elif cond.constant != 0:
                mark_edge(label, instr.true_target)
            else:
                mark_edge(label, instr.false_target)

    def mark_edge(src: str, dst: str) -> None:
        if (src, dst) not in executable:
            executable.add((src, dst))
            flow.append((src, dst))

    def evaluate(instr: Instruction) -> None:
        if isinstance(instr, Phi):
            evaluate_phi(instr)
        elif isinstance(instr, (Jump, Branch)):
            evaluate_terminator(instr)
        elif isinstance(instr, (Return, Store)):
            pass
        else:
            result = instr.result
            if result is None:
                return
            new_value = transfer(instr)
            if new_value is not None:
                update(result.name, new_value)

    entry = function.entry_label
    assert entry is not None
    visited.add(entry)
    for instr in function.block(entry).instructions:
        evaluate(instr)

    while flow or ssa_work:
        if flow:
            _, target = flow.popleft()
            block = function.block(target)
            if target not in visited:
                visited.add(target)
                for instr in block.instructions:
                    evaluate(instr)
            else:
                for phi in block.phis():
                    evaluate_phi(phi)
                evaluate_terminator(block.terminator)
        else:
            instr = ssa_work.popleft()
            if instr.block is not None and instr.block.label in visited:
                evaluate(instr)

    return SCCPResult(values, executable, visited)


def _fold_binop(op: str, lhs: Optional[int], rhs: Optional[int]) -> LatticeValue:
    assert lhs is not None and rhs is not None
    try:
        if op == "add":
            return LatticeValue.const(lhs + rhs)
        if op == "sub":
            return LatticeValue.const(lhs - rhs)
        if op == "mul":
            return LatticeValue.const(lhs * rhs)
        if op == "div":
            return _BOTTOM if rhs == 0 else LatticeValue.const(lhs // rhs)
        if op == "mod":
            return _BOTTOM if rhs == 0 else LatticeValue.const(lhs % rhs)
        if op == "shl":
            return _BOTTOM if not 0 <= rhs <= 512 else LatticeValue.const(lhs << rhs)
        if op == "shr":
            return _BOTTOM if not 0 <= rhs <= 512 else LatticeValue.const(lhs >> rhs)
        if op == "and":
            return LatticeValue.const(lhs & rhs)
        if op == "or":
            return LatticeValue.const(lhs | rhs)
        if op == "xor":
            return LatticeValue.const(lhs ^ rhs)
        if op == "min":
            return LatticeValue.const(min(lhs, rhs))
        if op == "max":
            return LatticeValue.const(max(lhs, rhs))
    except (OverflowError, ValueError):
        return _BOTTOM
    raise ValueError(f"unknown binary op {op!r}")


def _fold_cmp(op: str, lhs: Optional[int], rhs: Optional[int]) -> bool:
    assert lhs is not None and rhs is not None
    if op == "eq":
        return lhs == rhs
    if op == "ne":
        return lhs != rhs
    if op == "lt":
        return lhs < rhs
    if op == "le":
        return lhs <= rhs
    if op == "gt":
        return lhs > rhs
    if op == "ge":
        return lhs >= rhs
    raise ValueError(f"unknown comparison {op!r}")
