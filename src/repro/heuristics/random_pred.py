"""Random branch prediction -- the paper's weakest reference line.

Each branch receives a uniformly random probability, drawn from a
deterministic per-branch hash so predictions are stable across runs
(and across predictors sharing a seed), with no hidden global RNG state.
"""

from __future__ import annotations

import hashlib

from repro.heuristics.base import FunctionContext, Predictor
from repro.ir.instructions import Branch


class RandomPredictor(Predictor):
    """Uniform random P(true) per branch, deterministic in (seed, branch)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def predict_branch(
        self, context: FunctionContext, label: str, branch: Branch
    ) -> float:
        key = f"{self.seed}:{context.function.name}:{label}".encode()
        digest = hashlib.sha256(key).digest()
        value = int.from_bytes(digest[:8], "big")
        return value / float(1 << 64)
