"""Token kinds for the toy language lexer."""

from __future__ import annotations

from typing import Optional, Union


class TokenKind:
    """Enumeration of token kinds (simple string constants)."""

    INT = "INT"
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    OP = "OP"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    {
        "func",
        "if",
        "else",
        "while",
        "for",
        "do",
        "break",
        "continue",
        "return",
        "array",
        "input",
        "var",
        "const",
    }
)

# Multi-character operators first so the lexer can do maximal munch.
OPERATORS = (
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "=",
)

PUNCTUATION = ("(", ")", "{", "}", "[", "]", ";", ",")


class Token:
    """A single lexical token with source position for diagnostics."""

    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(
        self,
        kind: str,
        text: str,
        line: int,
        column: int,
        value: Optional[Union[int, float]] = None,
    ):
        self.kind = kind
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == TokenKind.OP and self.text == op

    def is_punct(self, punct: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == punct
