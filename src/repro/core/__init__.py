"""Value range propagation: the paper's primary contribution.

Public surface:

* range algebra -- :class:`Bound`, :class:`StridedRange`,
  :class:`RangeSet`, arithmetic (:func:`evaluate_binop`), comparison
  probabilities (:func:`compare_sets`), assertion refinement
  (:func:`refine_set`);
* the engine -- :func:`analyse_function` /
  :class:`PropagationEngine` (intraprocedural),
  :func:`analyse_module` / :class:`InterproceduralVRP` (whole program),
  loop derivation (:func:`derive_loop_phi`);
* the predictor front door -- :class:`VRPPredictor`,
  :func:`predict_branch_probabilities`;
* procedure cloning -- :func:`clone_for_contexts`.
"""

from repro.core.bounds import Bound, NEG_INF, POS_INF, bound_max, bound_min
from repro.core.callgraph import CallGraph, CallSite
from repro.core.cloning import (
    CloneReport,
    analyse_with_cloning,
    clone_for_contexts,
    clone_function,
)
from repro.core.comparisons import CompareOutcome, compare_sets
from repro.core.config import VRPConfig, default_verify_ir, set_default_verify_ir
from repro.core.counters import Counters, active, use
from repro.core.derivation import DerivationOutcome, derive_loop_phi
from repro.core.interprocedural import (
    InterproceduralVRP,
    ModulePrediction,
    analyse_module,
)
from repro.core.predictor import (
    VRPPredictor,
    predict_branch_probabilities,
)
from repro.core.propagation import (
    FunctionPrediction,
    PropagationEngine,
    analyse_function,
)
from repro.core.range_arith import evaluate_binop, evaluate_unop
from repro.core.ranges import RangeError, StridedRange
from repro.core.rangeset import (
    BOTTOM,
    DEFAULT_MAX_RANGES,
    RangeSet,
    TOP,
    merge_weighted,
)
from repro.core.refine import refine_set
from repro.core.sanitize import LatticeSanitizer, SanitizerError

__all__ = [
    "BOTTOM",
    "Bound",
    "CallGraph",
    "CallSite",
    "CloneReport",
    "CompareOutcome",
    "Counters",
    "DEFAULT_MAX_RANGES",
    "DerivationOutcome",
    "FunctionPrediction",
    "InterproceduralVRP",
    "LatticeSanitizer",
    "ModulePrediction",
    "NEG_INF",
    "POS_INF",
    "PropagationEngine",
    "RangeError",
    "RangeSet",
    "SanitizerError",
    "StridedRange",
    "TOP",
    "VRPConfig",
    "VRPPredictor",
    "active",
    "analyse_function",
    "analyse_with_cloning",
    "analyse_module",
    "bound_max",
    "bound_min",
    "clone_for_contexts",
    "clone_function",
    "compare_sets",
    "default_verify_ir",
    "derive_loop_phi",
    "evaluate_binop",
    "evaluate_unop",
    "merge_weighted",
    "predict_branch_probabilities",
    "refine_set",
    "set_default_verify_ir",
    "use",
]
