"""Span-based tracing of the analysis pipeline.

The tracer answers two questions the counters cannot: *where does the
time go* (span-based phase timing over lex/parse/lower/ssa/assert/
propagate/derive/predict) and *why did the engine do what it did* (a
structured event stream -- see :mod:`repro.observability.events`).

Design constraints, in order of importance:

* a **disabled** tracer must cost one attribute check per instrumented
  site -- the propagation engine checks ``tracer.enabled`` once at
  construction and keeps ``None`` when tracing is off, so its hot paths
  pay a single ``is not None`` test;
* the active tracer is carried in a :class:`contextvars.ContextVar`
  (the same pattern as :mod:`repro.core.counters`), so nothing needs to
  be plumbed through every call and future thread/async parallelism
  sees a correctly scoped tracer;
* recording is bounded: past ``max_events`` the stream drops events
  (and counts the drops) instead of exhausting memory on big modules.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Type

from repro.observability import context as tracecontext
from repro.observability.events import TraceEvent


class SpanRecord:
    """One timed region.  ``end`` is ``None`` while the span is open."""

    __slots__ = ("name", "start", "end", "depth", "index", "parent", "trace_id")

    def __init__(
        self,
        name: str,
        start: float,
        depth: int,
        index: int,
        parent: Optional[int],
        trace_id: Optional[str] = None,
    ):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.index = index
        #: Index of the enclosing span in ``Tracer.spans`` (or None).
        self.parent = parent
        #: Trace id of the request this span served (or None outside one).
        self.trace_id = trace_id

    @property
    def seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        return f"SpanRecord({self.name!r}, {self.seconds:.6f}s, depth={self.depth})"


@dataclass
class PhaseTiming:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    seconds: float = 0.0


class _NullSpan:
    """Reusable no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: records nothing, costs (almost) nothing.

    ``enabled`` is the one attribute instrumented code consults; every
    other method is a no-op so accidental calls stay harmless.
    """

    enabled = False

    __slots__ = ()

    def span(self, name: str):
        return _NULL_SPAN

    def emit(self, event: TraceEvent) -> None:
        return None

    @property
    def spans(self) -> List[SpanRecord]:
        return []

    @property
    def events(self) -> List[TraceEvent]:
        return []

    @property
    def event_counts(self) -> Dict[str, int]:
        return {}

    def phase_timings(self) -> Dict[str, PhaseTiming]:
        return {}

    def events_of(self, kind) -> List[TraceEvent]:
        return []


class Tracer:
    """Recording tracer: timed spans plus a bounded event stream.

    Parameters
    ----------
    record_events:
        When False only span timings and per-kind event *counts* are
        kept -- the cheap mode for pure phase profiling.
    max_events:
        Hard cap on retained events; the surplus is counted in
        ``dropped_events`` rather than stored.
    """

    enabled = True

    def __init__(self, record_events: bool = True, max_events: int = 1_000_000):
        self.record_events = record_events
        self.max_events = max_events
        self.spans: List[SpanRecord] = []
        self.events: List[TraceEvent] = []
        self.event_counts: Dict[str, int] = {}
        self.dropped_events = 0
        self._stack: List[SpanRecord] = []

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[SpanRecord]:
        """Time a named region; spans nest and remember their parent."""
        record = SpanRecord(
            name,
            time.perf_counter(),
            depth=len(self._stack),
            index=len(self.spans),
            parent=self._stack[-1].index if self._stack else None,
            trace_id=tracecontext.current_trace_id(),
        )
        self.spans.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.end = time.perf_counter()
            self._stack.pop()

    def phase_timings(self) -> Dict[str, PhaseTiming]:
        """Total time per span name (closed spans only), insertion order."""
        out: Dict[str, PhaseTiming] = {}
        for record in self.spans:
            if record.end is None:
                continue
            timing = out.setdefault(record.name, PhaseTiming(record.name))
            timing.count += 1
            timing.seconds += record.seconds
        return out

    # -- events --------------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if not self.record_events:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def events_of(self, kind) -> List[TraceEvent]:
        """Events matching a kind string or a TraceEvent subclass."""
        if isinstance(kind, type):
            return [e for e in self.events if isinstance(e, kind)]
        return [e for e in self.events if e.kind == kind]


# -- the active tracer ---------------------------------------------------------

NULL_TRACER = NullTracer()

_ACTIVE: contextvars.ContextVar = contextvars.ContextVar("repro-tracer")


def active():
    """The tracer currently receiving spans and events."""
    return _ACTIVE.get(NULL_TRACER)


@contextmanager
def use(tracer) -> Iterator:
    """Route spans/events to ``tracer`` for the duration of the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
