"""RangeSet (lattice value) tests."""

import pytest

from repro.core.bounds import Bound
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP, merge_weighted


class TestLatticeElements:
    def test_top_bottom_flags(self):
        assert TOP.is_top and not TOP.is_set
        assert BOTTOM.is_bottom and not BOTTOM.is_set
        assert RangeSet.constant(5).is_set

    def test_singletons(self):
        assert RangeSet.top() is TOP
        assert RangeSet.bottom() is BOTTOM


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            RangeSet.from_ranges([StridedRange.single(0.4, 1)])

    def test_renormalise(self):
        rs = RangeSet.from_ranges(
            [StridedRange.single(2.0, 1), StridedRange.single(2.0, 2)],
            renormalise=True,
        )
        assert all(abs(r.probability - 0.5) < 1e-12 for r in rs.ranges)

    def test_zero_probability_ranges_dropped(self):
        rs = RangeSet.from_ranges(
            [StridedRange.single(1.0, 1), StridedRange.single(0.0, 2)]
        )
        assert len(rs.ranges) == 1

    def test_empty_is_bottom(self):
        assert RangeSet.from_ranges([]) is BOTTOM

    def test_duplicate_extents_folded(self):
        rs = RangeSet.from_ranges(
            [StridedRange.single(0.3, 7), StridedRange.single(0.7, 7)]
        )
        assert len(rs.ranges) == 1
        assert rs.ranges[0].probability == pytest.approx(1.0)

    def test_boolean(self):
        rs = RangeSet.boolean(0.3)
        by_value = {r.lo.offset: r.probability for r in rs.ranges}
        assert by_value == {1: pytest.approx(0.3), 0: pytest.approx(0.7)}

    def test_boolean_clamps(self):
        assert RangeSet.boolean(1.5).constant_value() == 1
        assert RangeSet.boolean(-0.5).constant_value() == 0


class TestCompaction:
    def test_compacts_to_cap(self):
        ranges = [StridedRange.single(0.2, v * 10) for v in range(5)]
        rs = RangeSet.from_ranges(ranges, max_ranges=4)
        assert len(rs.ranges) <= 4
        assert sum(r.probability for r in rs.ranges) == pytest.approx(1.0)

    def test_nearby_ranges_merged_first(self):
        ranges = [
            StridedRange.single(0.25, 0),
            StridedRange.single(0.25, 1),
            StridedRange.single(0.25, 1000),
            StridedRange.single(0.25, 2000),
        ]
        rs = RangeSet.from_ranges(ranges, max_ranges=3)
        # The 0/1 pair should merge, not 1/1000.
        extents = sorted((float(r.lo.offset), float(r.hi.offset)) for r in rs.ranges)
        assert (0.0, 1.0) in extents

    def test_incompatible_symbols_give_bottom(self):
        ranges = [
            StridedRange.symbol(0.5, "x"),
            StridedRange.symbol(0.5, "y"),
        ]
        assert RangeSet.from_ranges(ranges, max_ranges=1) is BOTTOM

    def test_cap_one_produces_hull(self):
        rs = RangeSet.from_ranges(
            [StridedRange.span(0.5, 0, 4, 2), StridedRange.span(0.5, 10, 14, 2)],
            max_ranges=1,
        )
        assert len(rs.ranges) == 1
        hull = rs.ranges[0]
        assert hull.lo.offset == 0 and hull.hi.offset == 14
        assert hull.stride == 2  # both aligned even progressions


class TestQueries:
    def test_constant_value(self):
        assert RangeSet.constant(7).constant_value() == 7
        assert RangeSet.span(0, 5).constant_value() is None
        assert TOP.constant_value() is None

    def test_copy_symbol(self):
        assert RangeSet.symbol("y.0").copy_symbol() == "y.0"
        assert RangeSet.symbol("y.0", 2).copy_symbol() is None  # y+2 is not a copy
        assert RangeSet.constant(1).copy_symbol() is None

    def test_hull(self):
        rs = RangeSet.from_ranges(
            [StridedRange.span(0.5, 0, 4, 1), StridedRange.span(0.5, 10, 12, 1)]
        )
        hull = rs.hull()
        assert hull.lo.offset == 0 and hull.hi.offset == 12

    def test_hull_of_incomparable_is_none(self):
        rs = RangeSet.from_ranges(
            [StridedRange.symbol(0.5, "x"), StridedRange.single(0.5, 3)],
            max_ranges=4,
        )
        assert rs.hull() is None

    def test_is_numeric(self):
        assert RangeSet.span(0, 5).is_numeric()
        assert not RangeSet.symbol("x").is_numeric()

    def test_symbols(self):
        assert RangeSet.symbol("n.0", 3).symbols() == {"n.0"}


class TestApproxEqual:
    def test_tolerates_small_probability_drift(self):
        a = RangeSet.boolean(0.5)
        b = RangeSet.boolean(0.5 + 1e-7)
        assert a.approx_equal(b, tolerance=1e-6)
        assert not a.approx_equal(b, tolerance=1e-9)

    def test_kind_mismatch(self):
        assert not TOP.approx_equal(BOTTOM)
        assert not TOP.approx_equal(RangeSet.constant(1))


class TestMergeWeighted:
    def test_paper_phi_merge(self):
        # y2 = phi(y1 weighted 0.2, y0 weighted 0.8) -> {0.2[1], 0.8[0:7]}
        merged = merge_weighted(
            [(0.2, RangeSet.constant(1)), (0.8, RangeSet.span(0, 7))]
        )
        by_extent = {
            (float(r.lo.offset), float(r.hi.offset)): r.probability
            for r in merged.ranges
        }
        assert by_extent[(1.0, 1.0)] == pytest.approx(0.2)
        assert by_extent[(0.0, 7.0)] == pytest.approx(0.8)

    def test_weights_renormalised(self):
        merged = merge_weighted(
            [(10.0, RangeSet.constant(1)), (30.0, RangeSet.constant(2))]
        )
        by_value = {r.lo.offset: r.probability for r in merged.ranges}
        assert by_value[1] == pytest.approx(0.25)
        assert by_value[2] == pytest.approx(0.75)

    def test_top_contributions_ignored(self):
        merged = merge_weighted([(1.0, TOP), (1.0, RangeSet.constant(3))])
        assert merged.constant_value() == 3

    def test_all_top_is_top(self):
        assert merge_weighted([(1.0, TOP)]) is TOP
        assert merge_weighted([]) is TOP

    def test_bottom_contribution_poisons(self):
        merged = merge_weighted([(1.0, BOTTOM), (5.0, RangeSet.constant(3))])
        assert merged is BOTTOM

    def test_zero_weight_bottom_ignored(self):
        merged = merge_weighted([(0.0, BOTTOM), (1.0, RangeSet.constant(3))])
        assert merged.constant_value() == 3


class TestProbabilityEpsilonBoundary:
    """from_ranges filters with a strict ``> PROB_EPSILON`` comparison."""

    def test_mass_exactly_at_epsilon_is_dropped(self):
        from repro.core.rangeset import PROB_EPSILON

        rs = RangeSet.from_ranges(
            [StridedRange.single(PROB_EPSILON, 1)], renormalise=True
        )
        assert rs.is_bottom

    def test_mass_just_above_epsilon_is_kept(self):
        from repro.core.rangeset import PROB_EPSILON

        rs = RangeSet.from_ranges(
            [StridedRange.single(2 * PROB_EPSILON, 1)], renormalise=True
        )
        assert rs.constant_value() == 1
        assert rs.ranges[0].probability == pytest.approx(1.0)

    def test_epsilon_member_dropped_from_mixture(self):
        from repro.core.rangeset import PROB_EPSILON

        rs = RangeSet.from_ranges(
            [
                StridedRange.single(1.0, 5),
                StridedRange.single(PROB_EPSILON, 6),
            ]
        )
        assert [r.lo.offset for r in rs.ranges] == [5]
        # The surviving total is accumulated in the same single pass
        # that filters, so the kept mass is exactly the original 1.0.
        assert rs.ranges[0].probability == 1.0
