"""IR printer tests."""

from repro.ir import format_function, format_module
from repro.lang import compile_source

from tests.helpers import prepare_single


class TestFormatFunction:
    def test_contains_signature_and_blocks(self):
        function, _ = prepare_single("func main(a, b) { return a + b; }")
        text = format_function(function)
        assert "func main(a, b) {" in text
        assert "entry0:" in text
        assert text.rstrip().endswith("}")

    def test_shows_arrays(self):
        function, _ = prepare_single(
            "func main(n) { array buf[32]; buf[0] = n; return buf[0]; }"
        )
        text = format_function(function)
        assert "array buf[32]" in text

    def test_predecessor_annotations(self):
        function, _ = prepare_single(
            "func main(n) { if (n > 0) { n = 1; } return n; }"
        )
        text = format_function(function, show_preds=True)
        assert "; preds:" in text

    def test_instructions_rendered(self):
        function, _ = prepare_single(
            "func main(n) { var t = 0; while (t < 3) { t = t + 1; } return t; }"
        )
        text = format_function(function)
        assert "phi" in text
        assert "cmp.lt" in text
        assert "branch" in text
        assert "pi" in text

    def test_every_instruction_appears(self):
        function, _ = prepare_single("func main(n) { return n * 2 + 1; }")
        text = format_function(function)
        for instr in function.instructions():
            assert repr(instr) in text


class TestFormatModule:
    def test_all_functions_included(self):
        module = compile_source(
            "func a() { return 1; } func main(n) { return a(); }"
        )
        text = format_module(module)
        assert "func a()" in text
        assert "func main(n)" in text
