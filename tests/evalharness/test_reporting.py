"""Figure-rendering tests."""

import pytest

from repro.evalharness.reporting import format_cdf_table, format_scatter, ranking


class TestCdfTable:
    def test_contains_all_predictors_and_rows(self):
        series = {
            "alpha": [10.0] * 20,
            "beta": [90.0] * 20,
        }
        text = format_cdf_table(series, title="demo")
        assert "demo" in text
        assert "alpha" in text and "beta" in text
        assert text.count("<") == 20
        assert "AUC" in text

    def test_values_formatted_as_percentages(self):
        series = {"only": [12.3456] * 20}
        text = format_cdf_table(series)
        assert "12.3%" in text

    def test_custom_thresholds(self):
        series = {"p": [1.0, 2.0, 3.0]}
        text = format_cdf_table(series, thresholds=[1, 5, 10])
        assert "<  1" in text
        assert "< 10" in text


class TestRanking:
    def test_best_first(self):
        series = {
            "weak": [10.0, 10.0],
            "strong": [90.0, 95.0],
            "middle": [50.0, 50.0],
        }
        names = [name for name, _ in ranking(series)]
        assert names == ["strong", "middle", "weak"]

    def test_scores_are_auc(self):
        series = {"p": [0.0, 100.0]}
        (entry,) = ranking(series)
        assert entry[1] == pytest.approx(50.0)


class TestScatter:
    def test_points_and_fit(self):
        points = [(10, 100), (20, 210), (30, 290)]
        text = format_scatter(points, "x", "y", title="scaling")
        assert "scaling" in text
        for x, y in points:
            assert str(x) in text and str(y) in text
        assert "linear fit" in text
        assert "rms residual" in text

    def test_single_point_no_fit(self):
        text = format_scatter([(5, 10)], "x", "y")
        assert "linear fit" not in text
