"""StridedRange tests."""

import pytest

from repro.core.bounds import Bound, NEG_INF, POS_INF
from repro.core.ranges import RangeError, StridedRange


class TestConstruction:
    def test_single_value_gets_stride_zero(self):
        r = StridedRange.span(1.0, 5, 5, 3)
        assert r.stride == 0
        assert r.is_single()

    def test_multi_value_stride_zero_becomes_one(self):
        r = StridedRange.span(1.0, 0, 10, 0)
        assert r.stride == 1

    def test_hi_aligned_down_to_progression(self):
        r = StridedRange.span(1.0, 0, 10, 3)
        assert r.hi == Bound.number(9)  # {0, 3, 6, 9}

    def test_inverted_range_rejected(self):
        with pytest.raises(RangeError):
            StridedRange.span(1.0, 10, 0, 1)

    def test_negative_probability_rejected(self):
        with pytest.raises(RangeError):
            StridedRange.span(-0.1, 0, 1, 1)

    def test_negative_stride_rejected(self):
        with pytest.raises(RangeError):
            StridedRange(1.0, Bound.number(0), Bound.number(10), -1)

    def test_symbolic_range_aligned(self):
        r = StridedRange(1.0, Bound.symbolic("x", 0), Bound.symbolic("x", 7), 2)
        assert r.hi == Bound.symbolic("x", 6)


class TestCounting:
    def test_count_simple(self):
        assert StridedRange.span(1.0, 0, 10, 1).count() == 11

    def test_count_strided(self):
        assert StridedRange.span(1.0, 3, 21, 3).count() == 7

    def test_count_single(self):
        assert StridedRange.single(1.0, 8).count() == 1

    def test_count_symbolic_same_symbol(self):
        r = StridedRange(1.0, Bound.symbolic("x", 0), Bound.symbolic("x", 4), 1)
        assert r.count() == 5

    def test_count_unknowable_mixed(self):
        r = StridedRange(1.0, Bound.number(0), Bound.symbolic("x", 4), 1)
        assert r.count() is None

    def test_count_infinite(self):
        r = StridedRange(1.0, Bound.number(0), Bound.number(POS_INF), 1)
        assert r.count() is None

    def test_width(self):
        assert StridedRange.span(1.0, 2, 9, 1).width() == 7


class TestWeighting:
    def test_scaled(self):
        r = StridedRange.span(0.5, 0, 9, 1).scaled(0.5)
        assert r.probability == 0.25
        assert r.same_extent(StridedRange.span(1.0, 0, 9, 1))

    def test_with_probability(self):
        assert StridedRange.span(0.3, 0, 9, 1).with_probability(1.0).probability == 1.0


class TestEquality:
    def test_same_extent_ignores_probability(self):
        a = StridedRange.span(0.2, 0, 8, 2)
        b = StridedRange.span(0.9, 0, 8, 2)
        assert a.same_extent(b)
        assert a != b

    def test_approx_equal_tolerates_probability_noise(self):
        a = StridedRange.span(0.5, 0, 8, 2)
        b = StridedRange.span(0.5 + 1e-12, 0, 8, 2)
        assert a.approx_equal(b)
        assert not a.approx_equal(StridedRange.span(0.6, 0, 8, 2))

    def test_str_notation_matches_paper(self):
        assert str(StridedRange.span(0.7, 32, 256, 1)) == "0.7[32:256:1]"
        assert str(StridedRange.single(0.3, 8)) == "0.3[8:8:0]"


class TestSymbols:
    def test_symbols_collected(self):
        r = StridedRange(1.0, Bound.number(0), Bound.symbolic("n.0", -1), 1)
        assert r.symbols() == {"n.0"}

    def test_numeric_has_no_symbols(self):
        assert StridedRange.span(1.0, 0, 5, 1).symbols() == set()

    def test_is_finite(self):
        assert StridedRange.span(1.0, 0, 5, 1).is_finite()
        assert not StridedRange(1.0, Bound.number(NEG_INF), Bound.number(5), 1).is_finite()
