"""Evaluation runner tests on a small custom workload."""

import pytest

from repro.evalharness.runner import (
    evaluate_suite,
    evaluate_workload,
    prepare_workload,
    profile_predictions,
    standard_predictors,
    vrp_predictions,
)
from repro.workloads import Workload

TINY = Workload(
    name="tiny-test",
    suite="int",
    description="test-only workload",
    source="""
    func main(n) {
      var hits = 0;
      for (i = 0; i < n; i = i + 1) {
        var v = input() % 10;
        if (v < 3) { hits = hits + 1; }
      }
      return hits;
    }
    """,
    train_args=[50],
    ref_args=[200],
    train_inputs=[(i * 7) % 10 for i in range(50)],
    ref_inputs=[(i * 3) % 10 for i in range(200)],
)


@pytest.fixture(scope="module")
def prepared():
    return prepare_workload(TINY)


class TestPreparation:
    def test_profiles_collected(self, prepared):
        assert prepared.train_profile.branch_counts
        assert prepared.truth_profile.branch_counts

    def test_profiles_differ_between_inputs(self, prepared):
        train = prepared.train_profile.branches_of("tiny-test")
        truth = prepared.truth_profile.branches_of("tiny-test")
        assert set(train) == set(truth)


class TestPredictions:
    def test_profile_predictions_cover_all_branches(self, prepared):
        predictions = profile_predictions(prepared)
        for key in prepared.truth_profile.branch_counts:
            assert key in predictions

    def test_vrp_predictions_cover_all_branches(self, prepared):
        predictions = vrp_predictions(prepared)
        for key in prepared.truth_profile.branch_counts:
            assert key in predictions

    def test_vrp_nails_the_mod_branch(self, prepared):
        # v = input() % 10, branch v < 3: VRP predicts exactly 0.3.
        predictions = vrp_predictions(prepared)
        assert any(
            abs(p - 0.3) < 1e-6 for p in predictions.values()
        ), predictions

    def test_standard_predictors_complete(self):
        predictors = standard_predictors()
        assert set(predictors) == {
            "profile",
            "vrp",
            "vrp-numeric",
            "ball-larus",
            "rule-90-50",
            "random",
        }


class TestEvaluation:
    def test_evaluate_workload(self, prepared):
        evaluation = evaluate_workload(TINY, prepared=prepared)
        assert set(evaluation.records) == set(standard_predictors())
        for records in evaluation.records.values():
            assert records  # every predictor scored on real branches

    def test_cdf_shapes(self, prepared):
        evaluation = evaluate_workload(TINY, prepared=prepared)
        cdf = evaluation.cdf("vrp")
        assert len(cdf) == 20
        assert all(0.0 <= point <= 100.0 for point in cdf)

    def test_suite_aggregation(self, prepared):
        suite_eval = evaluate_suite([TINY], "test-suite")
        aggregate = suite_eval.aggregate_cdf("profile")
        assert len(aggregate) == 20
        assert suite_eval.predictors()


class TestPerfectPredictor:
    def test_perfect_is_exact_on_ref_behaviour(self, prepared):
        from repro.evalharness import branch_errors, error_cdf, perfect_predictions

        predictions = perfect_predictions(prepared)
        records = branch_errors(predictions, prepared.truth_profile)
        cdf = error_cdf(records)
        # The paper: "a horizontal line across the top" -- 100% within <1.
        assert cdf[0] == 100.0
