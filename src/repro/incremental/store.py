"""The content-addressed incremental summary store.

Maps a component fingerprint (see :mod:`repro.incremental.driver`) to
the per-function summaries -- final predictions, jump/return function
state, context-refined seeds -- of one weakly-connected callgraph
component.  Two tiers, exactly the server ResultCache's shape:

* **memory** -- a bounded LRU; fastest, per-process;
* **disk** -- one JSON file per key under ``<dir>/<key[:2]>/<key>.json``
  written atomically (temp file + ``os.replace``), byte-compatible with
  the serving tier's cache files so shards and the CLI can share a
  store directory without coordination.

The store is deliberately *not* the server's class: the server layer
imports this package for shard integration, so the dependency must
point upward only.  The disk format is kept in lockstep by
``tests/incremental/test_store.py``.

Besides the tier counters the store tracks **function_hits** /
**function_misses** -- how many functions were replayed vs. reanalyzed
across all lookups -- which the serve tier surfaces in ``/metricsz``
and the Prometheus families.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Optional, Tuple


class IncrementalStore:
    """Thread-safe two-tier (memory over disk) summary store.

    ``memory_entries`` bounds the LRU tier (one entry per component);
    ``disk_dir`` of ``None`` keeps the store memory-only, which is the
    right shape for ``repro watch`` (one process, many rechecks).
    """

    def __init__(
        self,
        memory_entries: int = 256,
        disk_dir: Optional[str] = None,
    ):
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.memory_entries = memory_entries
        self.disk_dir = disk_dir
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.RLock()
        self._stats = {
            "memory": {"hits": 0, "misses": 0, "evictions": 0},
            "disk": {"hits": 0, "misses": 0, "errors": 0},
            "stores": 0,
            "function_hits": 0,
            "function_misses": 0,
        }
        if disk_dir is not None:
            os.makedirs(disk_dir, exist_ok=True)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """Return ``(payload, tier)``; ``(None, None)`` on a full miss."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self._stats["memory"]["hits"] += 1
                return payload, "memory"
            self._stats["memory"]["misses"] += 1
            if self.disk_dir is None:
                return None, None
            payload = self._read_disk(key)
            if payload is None:
                self._stats["disk"]["misses"] += 1
                return None, None
            self._stats["disk"]["hits"] += 1
            self._remember(key, payload)
            return payload, "disk"

    def put(self, key: str, payload: dict) -> None:
        """Store one component's summaries in both tiers."""
        with self._lock:
            self._stats["stores"] += 1
            self._remember(key, dict(payload))
            if self.disk_dir is not None:
                self._write_disk(key, payload)

    def note_functions(self, hits: int = 0, misses: int = 0) -> None:
        """Account per-function replay/reanalysis (driver callback)."""
        with self._lock:
            self._stats["function_hits"] += hits
            self._stats["function_misses"] += misses

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is left alone)."""
        with self._lock:
            self._memory.clear()

    def stats(self) -> dict:
        """A serialisable copy of the counters."""
        with self._lock:
            out = {
                "memory": dict(self._stats["memory"]),
                "disk": dict(self._stats["disk"]),
                "stores": self._stats["stores"],
                "function_hits": self._stats["function_hits"],
                "function_misses": self._stats["function_misses"],
            }
            out["memory"]["entries"] = len(self._memory)
            out["disk"]["enabled"] = self.disk_dir is not None
            return out

    # -- internals -----------------------------------------------------------

    def _remember(self, key: str, payload: dict) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self._stats["memory"]["evictions"] += 1

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir is not None
        return os.path.join(self.disk_dir, key[:2], f"{key}.json")

    def _read_disk(self, key: str) -> Optional[dict]:
        path = self._disk_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A corrupt or unreadable entry is a miss; drop it so the
            # next store rewrites it cleanly.
            self._stats["disk"]["errors"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if not isinstance(payload, dict):
            self._stats["disk"]["errors"] += 1
            return None
        return payload

    def _write_disk(self, key: str, payload: dict) -> None:
        path = self._disk_path(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                prefix=f".{key[:8]}-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # Disk trouble degrades the store to memory-only for this
            # entry; correctness never depends on the disk tier.
            self._stats["disk"]["errors"] += 1
