"""Cross-function provenance on summary-dependent findings.

A proof inside a callee can rest on the merged ranges flowing in from
its call sites (§3.7 jump functions); a proof in a caller can rest on a
callee's return function.  Either way the finding must cite the call
sites it depends on -- in the evidence payload, the text rendering, and
SARIF ``relatedLocations``.
"""

from __future__ import annotations

import json

from repro.diagnostics.engine import check_source
from repro.diagnostics.render import render_json, render_text
from repro.diagnostics.sarif import sarif_report, validate_sarif

# Both call sites bound gate's parameter, so the dead branch inside
# gate is proven *by the call sites* -- a jump-function dependency.
PARAM_DEPENDENT = """
func gate(v) {
  if (v < 100) { return 1; }
  return 0;
}

func main(n) {
  var a = gate(n % 8);
  var b = gate(n % 4);
  return a + b;
}
"""

# The dead branch in main is proven by five's return function.
RETURN_DEPENDENT = """
func five(v) {
  return v + 5;
}

func main(n) {
  var r = five(0);
  if (r < 100) { return 1; }
  return 0;
}
"""

# No calls at all: the same shape of proof, purely intraprocedural.
INTRAPROCEDURAL = """
func main(n) {
  var v = n % 8;
  if (v < 100) { return 1; }
  return 0;
}
"""


def _finding(report, rule, function):
    return next(
        f
        for f in report.findings
        if f.rule == rule and f.function == function
    )


class TestParamProvenance:
    def test_evidence_chain_cites_both_call_sites(self):
        report = check_source(PARAM_DEPENDENT, program="prov")
        finding = _finding(report, "dead-branch", "gate")
        chain = finding.evidence["call_provenance"]
        assert any(source["kind"] == "param" for source in chain)
        param_source = next(s for s in chain if s["kind"] == "param")
        assert param_source["param"] == "v"
        assert param_source["function"] == "gate"
        sites = param_source["sites"]
        assert len(sites) == 2
        assert all(site["function"] == "main" for site in sites)

    def test_related_locations_point_at_the_caller(self):
        report = check_source(PARAM_DEPENDENT, program="prov")
        finding = _finding(report, "dead-branch", "gate")
        assert finding.related
        for site in finding.related:
            assert site["function"] == "main"
            assert "parameter 'v'" in site["message"]

    def test_text_rendering_carries_via_lines(self):
        report = check_source(PARAM_DEPENDENT, program="prov")
        text = render_text(report)
        assert "via main/" in text
        assert "seeded by this call site" in text

    def test_json_rendering_carries_the_chain(self):
        report = check_source(PARAM_DEPENDENT, program="prov")
        document = json.loads(render_json(report))
        finding = next(
            f
            for f in document["findings"]
            if f["rule"] == "dead-branch" and f["function"] == "gate"
        )
        assert finding["evidence"]["call_provenance"]
        assert finding["related"]


class TestReturnProvenance:
    def test_caller_side_proof_cites_the_callee(self):
        report = check_source(RETURN_DEPENDENT, program="prov")
        finding = _finding(report, "dead-branch", "main")
        chain = finding.evidence["call_provenance"]
        call_source = next(s for s in chain if s["kind"] == "call")
        assert call_source["callee"] == "five"
        assert finding.related
        assert any(
            "call result from five" in site["message"]
            for site in finding.related
        )


class TestSarifRelatedLocations:
    def test_related_locations_are_emitted_and_valid(self):
        report = check_source(PARAM_DEPENDENT, program="prov")
        log = sarif_report(report)
        assert validate_sarif(log) == []
        results = log["runs"][0]["results"]
        dead = next(
            r for r in results if "dead code" in r["message"]["text"]
        )
        locations = dead["relatedLocations"]
        assert locations
        for location in locations:
            message = location["message"]["text"]
            assert "call site" in message


class TestIntraproceduralControl:
    def test_no_chain_without_summary_dependence(self):
        report = check_source(INTRAPROCEDURAL, program="prov")
        finding = _finding(report, "dead-branch", "main")
        assert "call_provenance" not in finding.evidence
        assert finding.related == []
        assert "via " not in render_text(report)
