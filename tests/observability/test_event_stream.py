"""Event-stream completeness on the paper's Figure 4 worked example.

The stream must be a faithful journal of the propagation run: replaying
the lattice transitions alone reproduces the engine's final range sets,
and the worklist pop events agree with the work counters.
"""

import pytest

from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis
from repro.lang import compile_source
from repro.observability.events import (
    BranchResolution,
    DerivationAttempt,
    LatticeTransition,
    PhiMerge,
    PiRefinement,
    WorklistPop,
    WorklistPush,
)
from repro.observability.tracer import Tracer, use

PAPER_FIGURE_2 = """
func main(n) {
  var y = 0;
  for (x = 0; x < 10; x = x + 1) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { n = n + 1; }
  }
  return n;
}
"""


@pytest.fixture(scope="module")
def traced_run():
    module = compile_source(PAPER_FIGURE_2)
    function = module.function("main")
    info = prepare_for_analysis(function)
    tracer = Tracer()
    with use(tracer):
        prediction = analyse_function(function, info)
    return tracer, prediction, info


def test_all_event_kinds_fire(traced_run):
    tracer, _, _ = traced_run
    for kind in (
        "worklist.push",
        "worklist.pop",
        "lattice.transition",
        "phi.merge",
        "pi.refine",
        "derive.attempt",
        "branch.resolve",
    ):
        assert tracer.event_counts.get(kind, 0) > 0, kind


def test_every_lattice_transition_is_recorded(traced_run):
    """Names can only change via ``_update``; the stream must show it."""
    tracer, prediction, info = traced_run
    transitioned = {e.name for e in tracer.events_of(LatticeTransition)}
    param_seeds = set(info.param_names.values())
    for name in prediction.values:
        if name in param_seeds:
            continue  # parameters are seeded before propagation starts
        assert name in transitioned, f"no transition recorded for {name}"


def test_transitions_chain_old_to_new(traced_run):
    tracer, _, _ = traced_run
    last_seen = {}
    for event in tracer.events_of(LatticeTransition):
        previous = last_seen.get(event.name)
        if previous is not None:
            assert event.old == previous, event.name
        last_seen[event.name] = event.new


def test_replaying_transitions_reproduces_final_range_sets(traced_run):
    tracer, prediction, info = traced_run
    replayed = {}
    for event in tracer.events_of(LatticeTransition):
        replayed[event.name] = event.new
    param_seeds = set(info.param_names.values())
    for name, rangeset in prediction.values.items():
        if name in param_seeds:
            continue
        assert replayed[name] == str(rangeset), name
    # The paper's headline ranges survive the replay.
    assert replayed["x.1"] == "{ 1[0:10:1] }"
    assert replayed["x.3"] == "{ 1[0:9:1] }"


def test_worklist_pops_match_work_counters(traced_run):
    tracer, prediction, _ = traced_run
    pops = tracer.events_of(WorklistPop)
    flow = sum(1 for e in pops if e.list_name == "flow")
    ssa = sum(1 for e in pops if e.list_name == "ssa")
    assert flow == prediction.counters.flow_edges_processed
    assert ssa == prediction.counters.ssa_edges_processed


def test_pushes_and_pops_share_vocabulary(traced_run):
    tracer, _, _ = traced_run
    pushed = {(e.list_name, e.item) for e in tracer.events_of(WorklistPush)}
    for event in tracer.events_of(WorklistPop):
        if event.list_name == "flow" and event.item == "<entry>->entry0":
            continue  # the seed edge is enqueued before draining starts
        assert (event.list_name, event.item) in pushed


def test_derivation_attempts_explain_themselves(traced_run):
    tracer, _, _ = traced_run
    attempts = tracer.events_of(DerivationAttempt)
    derived = [e for e in attempts if e.status == "derived"]
    assert derived, "the Figure 4 loop phi must derive"
    assert any(e.name == "x.1" for e in derived)
    for event in derived:
        assert "induction" in event.detail
        assert event.result is not None


def test_phi_merges_report_freezes_distinctly(traced_run):
    tracer, _, _ = traced_run
    merges = tracer.events_of(PhiMerge)
    assert merges
    assert all(isinstance(e.frozen, bool) for e in merges)


def test_pi_refinements_name_source_and_bound(traced_run):
    tracer, _, _ = traced_run
    for event in tracer.events_of(PiRefinement):
        assert event.dest != event.src
        assert event.op
        assert event.before != "" and event.after != ""


def test_branch_resolutions_match_final_probabilities(traced_run):
    tracer, prediction, _ = traced_run
    final = {}
    for event in tracer.events_of(BranchResolution):
        final[event.label] = event
    assert set(final) == set(prediction.branch_probability)
    for label, probability in prediction.branch_probability.items():
        event = final[label]
        assert event.probability == pytest.approx(probability)
        assert event.source == "ranges"
        assert len(event.operands) == 2


def test_disabled_tracer_records_nothing_for_the_same_run():
    module = compile_source(PAPER_FIGURE_2)
    function = module.function("main")
    info = prepare_for_analysis(function)
    tracer = Tracer()
    prediction = analyse_function(function, info)  # no use(): NullTracer active
    assert tracer.events == [] and tracer.spans == []
    assert prediction.branch_probability["for1"] == pytest.approx(10 / 11)
