"""Serving telemetry: request counts, latency histograms, cache tiers.

Everything here is observational -- the numbers feed ``/metricsz`` (as
the metrics schema v5 ``server`` key) and never influence request
handling.  The histogram uses fixed cumulative-friendly bucket bounds
in milliseconds so two snapshots can be subtracted and merged without
rebinning.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

#: Upper bounds (ms) of the latency histogram buckets; the last bucket
#: is unbounded ("+inf"), Prometheus-style.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)

#: Clamp for the computed ``Retry-After`` header: never tell a client to
#: come back in zero seconds (it would hammer a saturated daemon) and
#: never park it for more than a minute (queues drain in seconds here).
RETRY_AFTER_FLOOR_S = 1
RETRY_AFTER_CEILING_S = 60


def compute_retry_after(
    queue_depth: int,
    drain_per_second: float,
    floor: int = RETRY_AFTER_FLOOR_S,
    ceiling: int = RETRY_AFTER_CEILING_S,
) -> int:
    """Seconds a 503'd client should wait before retrying.

    The estimate is the time the current backlog needs to drain at the
    observed service rate: ``depth / rate``, rounded up and clamped to
    ``[floor, ceiling]``.  With no rate observed yet (a cold daemon
    rejecting its very first burst) the floor is the honest answer --
    there is nothing to extrapolate from -- and the ceiling keeps a
    nearly-stuck queue from quoting an absurd wait.
    """
    if floor < 0 or ceiling < floor:
        raise ValueError("need 0 <= floor <= ceiling")
    if queue_depth <= 0 or drain_per_second <= 0.0:
        return floor
    seconds = math.ceil(queue_depth / drain_per_second)
    return max(floor, min(ceiling, seconds))


class _EndpointStats:
    __slots__ = ("count", "errors", "buckets", "overflow", "sum_ms", "max_ms")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.buckets = [0] * len(LATENCY_BUCKETS_MS)
        self.overflow = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def record(self, status: int, elapsed_ms: float) -> None:
        self.count += 1
        if status >= 400:
            self.errors += 1
        self.sum_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)
        for index, bound in enumerate(LATENCY_BUCKETS_MS):
            if elapsed_ms <= bound:
                self.buckets[index] += 1
                return
        self.overflow += 1

    def as_dict(self) -> dict:
        histogram = {
            f"le_{bound}ms": value
            for bound, value in zip(LATENCY_BUCKETS_MS, self.buckets)
        }
        histogram["le_inf"] = self.overflow
        return {
            "count": self.count,
            "errors": self.errors,
            "sum_ms": round(self.sum_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "mean_ms": round(self.sum_ms / self.count, 3) if self.count else 0.0,
            "histogram": histogram,
        }


class ServerStats:
    """Thread-safe accumulator for the daemon's request telemetry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointStats] = {}
        self._responses: Dict[str, int] = {}
        self._cached: Dict[str, int] = {"memory": 0, "disk": 0, "fresh": 0}
        self._degraded = 0
        self._rejected: Dict[str, int] = {}

    def record_request(
        self,
        endpoint: str,
        status: int,
        elapsed_ms: float,
        cached: Optional[str] = None,
        degraded: bool = False,
    ) -> None:
        """One finished request (any status, including errors)."""
        with self._lock:
            stats = self._endpoints.setdefault(endpoint, _EndpointStats())
            stats.record(status, elapsed_ms)
            key = str(status)
            self._responses[key] = self._responses.get(key, 0) + 1
            if status < 400:
                tier = cached if cached in ("memory", "disk") else "fresh"
                self._cached[tier] += 1
            if degraded:
                self._degraded += 1

    def record_rejected(self, reason: str) -> None:
        """A request refused before analysis (queue_full, too_large...)."""
        with self._lock:
            self._rejected[reason] = self._rejected.get(reason, 0) + 1

    @property
    def degraded(self) -> int:
        with self._lock:
            return self._degraded

    def drain_rate(self, workers: int) -> float:
        """Analysis requests finished per second, extrapolated.

        The estimate behind the computed ``Retry-After`` header: mean
        observed latency over the *analysis* endpoints (``/v1/...``
        only -- ``/healthz`` answers in microseconds and would wildly
        inflate the rate) scaled by the number of concurrent workers.
        Returns 0.0 before the first analysis completes.
        """
        with self._lock:
            count = 0
            sum_ms = 0.0
            for endpoint, stats in self._endpoints.items():
                if endpoint.startswith("/v1/"):
                    count += stats.count
                    sum_ms += stats.sum_ms
        if count == 0 or sum_ms <= 0.0:
            return 0.0
        return max(1, workers) * 1000.0 * count / sum_ms

    def retry_after(self, queue_depth: int, workers: int) -> int:
        """The ``Retry-After`` seconds for a backpressure 503."""
        return compute_retry_after(queue_depth, self.drain_rate(workers))

    def snapshot(
        self,
        cache_stats: Optional[dict] = None,
        queue_depth: Optional[int] = None,
        queue_high_water: Optional[int] = None,
        tracer_summary: Optional[dict] = None,
        shards: Optional[List[dict]] = None,
        incremental: Optional[dict] = None,
    ) -> dict:
        """The metrics schema v5 ``server`` document fragment.

        ``tracer_summary`` must be gathered by the caller *under its
        own tracer lock* (see :meth:`ReproServer.tracer_summary`):
        handing the live tracer here raced against concurrent
        ``emit()`` calls mutating ``event_counts`` mid-iteration.
        """
        with self._lock:
            out: Dict[str, object] = {
                "endpoints": {
                    name: stats.as_dict()
                    for name, stats in sorted(self._endpoints.items())
                },
                "responses": dict(sorted(self._responses.items())),
                "results": dict(self._cached),
                "degraded": self._degraded,
                "rejected": dict(sorted(self._rejected.items())),
            }
        if cache_stats is not None:
            out["cache"] = cache_stats
        if queue_depth is not None:
            out["queue"] = {
                "depth": queue_depth,
                "high_water": queue_high_water or 0,
            }
        if tracer_summary is not None:
            out["tracer"] = tracer_summary
        if shards is not None:
            # Per-shard documents from the sharded tier: queue depth /
            # high water, the shard's cache stats, liveness.  The
            # single-process path never passes this, so its snapshots
            # (and the unlabeled Prometheus series rendered from them)
            # are byte-for-byte what they were before sharding existed.
            out["shards"] = [dict(shard) for shard in shards]
        if incremental is not None:
            # The incremental summary store's counters (function hits /
            # misses, tier traffic); absent unless the daemon runs with
            # the store, so pre-incremental snapshots are unchanged.
            out["incremental"] = dict(incremental)
        return out
