"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse


def parse_main_body(body: str):
    program = parse(f"func main(n) {{ {body} }}")
    return program.functions[0].body.statements


def parse_expr(expr_text: str):
    statements = parse_main_body(f"x = {expr_text};")
    assign = statements[0]
    assert isinstance(assign, ast.Assign)
    return assign.value


class TestTopLevel:
    def test_single_function(self):
        program = parse("func main(n) { return n; }")
        assert [f.name for f in program.functions] == ["main"]
        assert program.functions[0].params == ["n"]

    def test_multiple_functions(self):
        program = parse("func a() { return 1; } func b(x, y) { return x; }")
        assert [f.name for f in program.functions] == ["a", "b"]
        assert program.functions[1].params == ["x", "y"]

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse("")

    def test_garbage_after_function_rejected(self):
        with pytest.raises(ParseError):
            parse("func main() { return 0; } garbage")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_main_body("var x = 5;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.name == "x"
        assert isinstance(stmt.value, ast.IntLit)

    def test_var_decl_defaults_to_zero(self):
        (stmt,) = parse_main_body("var x;")
        assert isinstance(stmt.value, ast.IntLit)
        assert stmt.value.value == 0

    def test_array_decl(self):
        (stmt,) = parse_main_body("array buf[64];")
        assert isinstance(stmt, ast.ArrayDecl)
        assert stmt.name == "buf"
        assert stmt.size == 64

    def test_array_decl_accepts_named_constant(self):
        (stmt,) = parse_main_body("array buf[SIZE];")
        assert stmt.size == "SIZE"  # resolved (or rejected) at lowering

    def test_array_decl_rejects_expression_size(self):
        with pytest.raises(ParseError):
            parse_main_body("array buf[2 + 2];")

    def test_array_store(self):
        (stmt,) = parse_main_body("buf[i + 1] = 5;")
        assert isinstance(stmt, ast.ArrayAssign)
        assert isinstance(stmt.index, ast.BinaryExpr)

    def test_array_read_statement(self):
        (stmt,) = parse_main_body("x = buf[2];")
        assert isinstance(stmt.value, ast.IndexExpr)

    def test_if_without_else(self):
        (stmt,) = parse_main_body("if (x) { y = 1; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_block is None

    def test_if_else(self):
        (stmt,) = parse_main_body("if (x) { y = 1; } else { y = 2; }")
        assert stmt.else_block is not None

    def test_else_if_chain(self):
        (stmt,) = parse_main_body(
            "if (x) { y = 1; } else if (z) { y = 2; } else { y = 3; }"
        )
        nested = stmt.else_block.statements[0]
        assert isinstance(nested, ast.If)
        assert nested.else_block is not None

    def test_while(self):
        (stmt,) = parse_main_body("while (x < 10) { x = x + 1; }")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        (stmt,) = parse_main_body("do { x = x + 1; } while (x < 5);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        (stmt,) = parse_main_body("for (i = 0; i < 10; i = i + 1) { x = i; }")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None
        assert stmt.condition is not None
        assert stmt.update is not None

    def test_for_empty_sections(self):
        (stmt,) = parse_main_body("for (;;) { break; }")
        assert stmt.init is None and stmt.condition is None and stmt.update is None

    def test_break_continue(self):
        statements = parse_main_body("while (1) { break; continue; }")
        body = statements[0].body.statements
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_return_void(self):
        (stmt,) = parse_main_body("return;")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is None

    def test_expression_statement(self):
        program = parse("func f() { return 0; } func main(n) { f(); }")
        stmt = program.functions[1].body.statements[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.CallExpr)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body("x = 1")


class TestExpressionPrecedence:
    def test_mul_binds_tighter_than_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_comparison_below_additive(self):
        expr = parse_expr("a + 1 < b - 2")
        assert expr.op == "<"

    def test_logical_or_lowest(self):
        expr = parse_expr("a && b || c")
        assert isinstance(expr, ast.LogicalExpr)
        assert expr.op == "||"
        assert expr.lhs.op == "&&"

    def test_equality_below_relational(self):
        expr = parse_expr("a < b == c < d")
        assert expr.op == "=="

    def test_shift_between_additive_and_relational(self):
        expr = parse_expr("a + 1 << 2 < b")
        assert expr.op == "<"
        assert expr.lhs.op == "<<"

    def test_bitwise_precedence_chain(self):
        expr = parse_expr("a | b ^ c & d")
        assert expr.op == "|"
        assert expr.rhs.op == "^"
        assert expr.rhs.rhs.op == "&"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"
        assert expr.rhs.name == "c"

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == "-"

    def test_negative_literal_folds(self):
        expr = parse_expr("-5")
        assert isinstance(expr, ast.IntLit)
        assert expr.value == -5

    def test_not_operator(self):
        expr = parse_expr("!x")
        assert isinstance(expr, ast.UnaryExpr)
        assert expr.op == "!"

    def test_call_with_args(self):
        program = parse(
            "func g(a, b) { return a; } func main(n) { x = g(1, n + 2); }"
        )
        call = program.functions[1].body.statements[0].value
        assert isinstance(call, ast.CallExpr)
        assert len(call.args) == 2

    def test_input_expression(self):
        expr = parse_expr("input()")
        assert isinstance(expr, ast.InputExpr)

    def test_missing_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("+")
