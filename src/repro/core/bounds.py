"""Range bounds: numeric or symbolic ``variable + constant``.

The paper (§3.4) allows each number in a range definition to be
``SSA-variable operator constant``: purely numeric bounds have no symbol,
purely symbolic bounds have offset 0.  Bounds referring to *different*
symbols are incomparable ("operations and comparisons are only meaningful
between variables which share a single common ancestor").

Numeric bounds may be infinite (``NEG_INF`` / ``POS_INF``) to express
half-open ranges produced by one-sided assertions like ``x > 5``.
"""

from __future__ import annotations

import math
from typing import Optional, Union

Number = Union[int, float]

POS_INF = math.inf
NEG_INF = -math.inf


class Bound:
    """An immutable bound ``symbol + offset`` (symbol may be None)."""

    __slots__ = ("symbol", "offset")

    def __init__(self, offset: Number, symbol: Optional[str] = None):
        if symbol is not None and math.isinf(offset):
            raise ValueError("symbolic bounds must have a finite offset")
        self.symbol = symbol
        self.offset = offset

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def number(value: Number) -> "Bound":
        return Bound(value)

    @staticmethod
    def symbolic(symbol: str, offset: Number = 0) -> "Bound":
        return Bound(offset, symbol)

    # -- predicates -----------------------------------------------------------

    def is_numeric(self) -> bool:
        return self.symbol is None

    def is_finite(self) -> bool:
        return not math.isinf(self.offset)

    def is_pos_inf(self) -> bool:
        return self.symbol is None and self.offset == POS_INF

    def is_neg_inf(self) -> bool:
        return self.symbol is None and self.offset == NEG_INF

    # -- arithmetic -------------------------------------------------------------

    def add_const(self, constant: Number) -> "Bound":
        if math.isinf(self.offset):
            return self
        return Bound(self.offset + constant, self.symbol)

    def add(self, other: "Bound") -> Optional["Bound"]:
        """Bound addition; None when the result is not representable.

        ``sym + num`` works; ``sym + sym`` does not (the representation has
        no two-variable form).
        """
        if self.symbol is not None and other.symbol is not None:
            return None
        symbol = self.symbol or other.symbol
        offset = self.offset + other.offset
        if math.isnan(offset):
            return None
        if symbol is not None and math.isinf(offset):
            return None
        return Bound(offset, symbol)

    def sub(self, other: "Bound") -> Optional["Bound"]:
        """Bound subtraction; ``sym - sym`` of the *same* symbol is numeric."""
        if self.symbol is not None and other.symbol is not None:
            if self.symbol != other.symbol:
                return None
            return Bound(self.offset - other.offset)
        if other.symbol is not None:
            # num - sym would need a negated symbol: not representable.
            return None
        offset = self.offset - other.offset
        if math.isnan(offset):
            return None
        if self.symbol is not None and math.isinf(offset):
            return None
        return Bound(offset, self.symbol)

    def negate(self) -> Optional["Bound"]:
        if self.symbol is not None:
            return None
        return Bound(-self.offset)

    def scale(self, factor: Number) -> Optional["Bound"]:
        if self.symbol is not None:
            return Bound(self.offset * factor, self.symbol) if factor == 1 else None
        return Bound(self.offset * factor)

    # -- comparison ---------------------------------------------------------------

    def comparable_with(self, other: "Bound") -> bool:
        """Bounds compare when numeric or when sharing the same symbol."""
        if self.symbol is None and other.symbol is None:
            return True
        return self.symbol == other.symbol

    def compare(self, other: "Bound") -> Optional[int]:
        """-1/0/+1 ordering, or None when incomparable."""
        if not self.comparable_with(other):
            return None
        if self.offset < other.offset:
            return -1
        if self.offset > other.offset:
            return 1
        return 0

    def less_equal(self, other: "Bound") -> Optional[bool]:
        order = self.compare(other)
        return None if order is None else order <= 0

    def distance(self, other: "Bound") -> Optional[Number]:
        """``other - self`` as a number, or None when incomparable.

        Two like-signed infinities have no defined distance (inf - inf);
        that also reports as None rather than NaN.
        """
        if not self.comparable_with(other):
            return None
        difference = other.offset - self.offset
        if math.isnan(difference):
            return None
        return difference

    # -- identity -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Bound)
            and self.symbol == other.symbol
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((self.symbol, self.offset))

    def __repr__(self) -> str:
        return f"Bound({self.offset!r}, {self.symbol!r})"

    def __str__(self) -> str:
        if self.symbol is None:
            if self.offset == POS_INF:
                return "+inf"
            if self.offset == NEG_INF:
                return "-inf"
            return str(self.offset)
        if self.offset == 0:
            return self.symbol
        sign = "+" if self.offset >= 0 else "-"
        return f"{self.symbol}{sign}{abs(self.offset)}"


def bound_min(a: Bound, b: Bound) -> Optional[Bound]:
    order = a.compare(b)
    if order is None:
        return None
    return a if order <= 0 else b


def bound_max(a: Bound, b: Bound) -> Optional[Bound]:
    order = a.compare(b)
    if order is None:
        return None
    return a if order >= 0 else b
