"""Classical analyses: SCCP, copy propagation, loops, frequencies.

These are the algorithms the paper positions VRP against (constant and
copy propagation, which it subsumes) plus the supporting analyses its
applications need (natural loops, Wu–Larus frequency propagation).
"""

from repro.analysis.copyprop import copy_chains, propagate_copies, remove_dead_copies
from repro.analysis.frequency import (
    FrequencyResult,
    edge_probabilities,
    function_frequencies,
    propagate_frequencies,
)
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.sccp import LatticeValue, SCCPResult, run_sccp

__all__ = [
    "FrequencyResult",
    "LatticeValue",
    "Loop",
    "LoopInfo",
    "SCCPResult",
    "copy_chains",
    "edge_probabilities",
    "function_frequencies",
    "propagate_copies",
    "propagate_frequencies",
    "remove_dead_copies",
    "run_sccp",
]
