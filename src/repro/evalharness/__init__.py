"""Evaluation harness: reproduces the paper's measurements.

* :mod:`repro.evalharness.accuracy` -- error records and error CDFs;
* :mod:`repro.evalharness.runner` -- compile/profile/predict/score
  pipelines over workloads and suites (Figures 7-8);
* :mod:`repro.evalharness.counting` -- work-count measurements
  (Figures 5-6, the linearity claims);
* :mod:`repro.evalharness.reporting` -- terminal rendering of the
  figures as tables.
"""

from repro.evalharness.accuracy import (
    BranchError,
    DEFAULT_THRESHOLDS,
    area_under_cdf,
    average_cdfs,
    branch_errors,
    error_cdf,
    mean_error,
)
from repro.evalharness.counting import (
    linearity_ratio,
    measure_scaling,
    measure_source,
    measure_workloads,
    synthetic_program,
)
from repro.evalharness.reporting import (
    format_cdf_table,
    format_scatter,
    format_suite_figure,
    ranking,
)
from repro.evalharness.runner import (
    PreparedWorkload,
    SuiteEvaluation,
    WorkloadEvaluation,
    evaluate_suite,
    evaluate_workload,
    perfect_predictions,
    prepare_workload,
    profile_predictions,
    run_suite,
    standard_predictors,
    suite_metrics,
    vrp_predictions,
    workload_metrics,
)

__all__ = [
    "BranchError",
    "DEFAULT_THRESHOLDS",
    "PreparedWorkload",
    "SuiteEvaluation",
    "WorkloadEvaluation",
    "area_under_cdf",
    "average_cdfs",
    "branch_errors",
    "error_cdf",
    "evaluate_suite",
    "evaluate_workload",
    "format_cdf_table",
    "format_scatter",
    "format_suite_figure",
    "linearity_ratio",
    "mean_error",
    "measure_scaling",
    "measure_source",
    "measure_workloads",
    "perfect_predictions",
    "prepare_workload",
    "profile_predictions",
    "ranking",
    "run_suite",
    "standard_predictors",
    "suite_metrics",
    "synthetic_program",
    "vrp_predictions",
    "workload_metrics",
]
