"""Event taxonomy for the propagation engine's trace stream.

Every event is a small frozen dataclass with a ``kind`` string (the
stable, dotted taxonomy name used in JSONL output and event counting)
and an :meth:`~TraceEvent.as_dict` serialisation.  Range sets and
bounds are stored as their string forms -- events are diagnostics, not
live lattice values, and strings keep the stream JSON-serialisable and
immune to later mutation.

Taxonomy:

=====================  ====================================================
kind                   meaning
=====================  ====================================================
``worklist.push``      an item entered the flow or SSA worklist
``worklist.pop``       an item was taken off a worklist for processing
``lattice.transition`` an SSA name's range set changed (old -> new)
``phi.merge``          a phi evaluation produced a merged range set
``pi.refine``          a pi assertion refined its source range
``derive.attempt``     loop derivation was tried (template or failure)
``heuristic.chain``    the Ball-Larus heuristics fired on a branch
``branch.resolve``     a branch probability was (re)computed
``diagnostic.finding`` a static-diagnostics rule fired (``repro check``)
``vrp.interprocedural.round_cap`` the interprocedural fixed point hit its
                       round cap while still changing (recursive SCC)
``pass.begin``         the pass manager started running a pass
``pass.end``           a pass finished (effect, timing, cache traffic)
``server.request.begin`` the serving daemon accepted a request
``server.request.end``   a request finished (status, latency, cache tier)
=====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """Base class: a ``kind`` tag plus dataclass fields."""

    kind: ClassVar[str] = "event"

    def as_dict(self) -> dict:
        out = {"kind": self.kind}
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v for v in value]
            out[field.name] = value
        return out


@dataclass(frozen=True)
class WorklistPush(TraceEvent):
    """An item entered one of the two worklists."""

    kind: ClassVar[str] = "worklist.push"

    function: str
    list_name: str  # "flow" | "ssa"
    item: str


@dataclass(frozen=True)
class WorklistPop(TraceEvent):
    """An item left a worklist to be processed."""

    kind: ClassVar[str] = "worklist.pop"

    function: str
    list_name: str
    item: str


@dataclass(frozen=True)
class LatticeTransition(TraceEvent):
    """An SSA name's range set moved in the lattice (old -> new)."""

    kind: ClassVar[str] = "lattice.transition"

    function: str
    name: str
    old: str
    new: str


@dataclass(frozen=True)
class PhiMerge(TraceEvent):
    """Outcome of a phi merge (before the lattice update is applied)."""

    kind: ClassVar[str] = "phi.merge"

    function: str
    name: str
    label: str
    result: str
    widened: bool
    frozen: bool


@dataclass(frozen=True)
class PiRefinement(TraceEvent):
    """A pi assertion refined its source's range set."""

    kind: ClassVar[str] = "pi.refine"

    function: str
    dest: str
    src: str
    op: str
    bound: str
    before: str
    after: str


@dataclass(frozen=True)
class DerivationAttempt(TraceEvent):
    """One loop-derivation attempt: the matched template or the failure."""

    kind: ClassVar[str] = "derive.attempt"

    function: str
    name: str
    status: str  # "derived" | "failed" | "not_ready"
    detail: str  # template description on success, reason otherwise
    result: Optional[str]


@dataclass(frozen=True)
class HeuristicChain(TraceEvent):
    """Which Ball-Larus heuristics fired on a branch, and the fusion."""

    kind: ClassVar[str] = "heuristic.chain"

    function: str
    label: str
    mode: str  # "dempster-shafer" | "priority"
    chain: Tuple[Tuple[str, float], ...]
    combined: float


@dataclass(frozen=True)
class BranchResolution(TraceEvent):
    """A branch probability was computed, with its provenance."""

    kind: ClassVar[str] = "branch.resolve"

    function: str
    label: str
    source: str  # "ranges" | "heuristic"
    probability: float
    cond: Optional[str]
    cond_range: Optional[str]
    cmp_op: Optional[str]
    operands: Tuple[Tuple[str, str], ...]  # (operand name/repr, range str)


@dataclass(frozen=True)
class DiagnosticFinding(TraceEvent):
    """A diagnostics rule fired on the analysed program."""

    kind: ClassVar[str] = "diagnostic.finding"

    function: str
    rule: str
    severity: str  # "error" | "warning" | "info"
    block: str
    line: Optional[int]
    message: str


@dataclass(frozen=True)
class RoundCap(TraceEvent):
    """The interprocedural round cap silenced a still-changing fixed point.

    Emitted at most once per module analysis, when round ``max_rounds``
    still observed a parameter or return range change -- i.e. a
    recursive SCC had not converged and its last-round ranges were
    frozen as-is.  ``functions`` names the members of the recursive
    components (the only functions whose ranges can still be moving).
    """

    kind: ClassVar[str] = "vrp.interprocedural.round_cap"

    module: str
    rounds: int
    functions: Tuple[str, ...]


@dataclass(frozen=True)
class PassBegin(TraceEvent):
    """The pass manager is about to run a pass."""

    kind: ClassVar[str] = "pass.begin"

    pass_name: str
    mutates: bool


@dataclass(frozen=True)
class PassEnd(TraceEvent):
    """A pass finished: what it changed and what it cost."""

    kind: ClassVar[str] = "pass.end"

    pass_name: str
    changed: int
    seconds: float
    cache_hits: int
    cache_misses: int
    invalidated: int


@dataclass(frozen=True)
class ServerRequestBegin(TraceEvent):
    """The serving daemon accepted a request for processing."""

    kind: ClassVar[str] = "server.request.begin"

    endpoint: str
    command: Optional[str]
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class ServerRequestEnd(TraceEvent):
    """A served request finished (however it went)."""

    kind: ClassVar[str] = "server.request.end"

    endpoint: str
    command: Optional[str]
    status: int  # HTTP status code of the response
    elapsed_ms: float
    cached: Optional[str]  # None | "memory" | "disk"
    degraded: bool
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class WatchRecheck(TraceEvent):
    """``repro watch`` re-rendered one file after a content change.

    ``reanalyzed``/``replayed`` count functions: how many the edit
    actually invalidated (the edited function plus its
    summary-dependents) versus how many the incremental store replayed
    byte-identically.
    """

    kind: ClassVar[str] = "watch.recheck"

    path: str
    reanalyzed: int
    replayed: int
    elapsed_ms: float
    initial: bool = False


EVENT_KINDS: Tuple[str, ...] = tuple(
    cls.kind
    for cls in (
        WorklistPush,
        WorklistPop,
        LatticeTransition,
        PhiMerge,
        PiRefinement,
        DerivationAttempt,
        HeuristicChain,
        BranchResolution,
        DiagnosticFinding,
        RoundCap,
        PassBegin,
        PassEnd,
        ServerRequestBegin,
        ServerRequestEnd,
        WatchRecheck,
    )
)
