"""Test-suite-wide configuration.

IR verification (``VRPConfig.verify_ir``) defaults to *on* for every
test: lowering and each optimisation pass re-verify the function they
touched, so structural regressions fail loudly at their source instead
of corrupting downstream analysis.  Production (and the benchmarks,
which must keep their work counts byte-identical to the seed) keep the
library default of off.
"""

from __future__ import annotations

from repro.core.config import set_default_verify_ir

set_default_verify_ir(True)
