"""Common infrastructure for static branch predictors.

A predictor maps every conditional branch of a function to P(true edge).
Predictors share a :class:`FunctionContext` bundling the structural
analyses the Ball–Larus heuristics consult (loops, postdominators,
def-use information).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.loops import LoopInfo
from repro.ir.cfg import CFG
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Cmp, Instruction, Jump, Pi
from repro.ir.postdominance import PostDominatorTree
from repro.ir.values import Temp, Value


class FunctionContext:
    """Cached structural analyses over one function.

    Prebuilt analyses (from a :class:`repro.passes.AnalysisCache`) can
    be injected; anything omitted is built through the cache module's
    single construction site, so the trees are constructed in exactly
    one place repo-wide either way.
    """

    def __init__(
        self,
        function: Function,
        cfg: Optional[CFG] = None,
        loops: Optional[LoopInfo] = None,
        postdom: Optional[PostDominatorTree] = None,
    ):
        from repro.passes.cache import loop_info, postdominator_tree

        self.function = function
        self.cfg = cfg if cfg is not None else CFG(function)
        self.loops = loops if loops is not None else loop_info(self.cfg)
        self.postdom = (
            postdom if postdom is not None else postdominator_tree(self.cfg)
        )
        self._effective: Dict[str, str] = {}

    def branches(self) -> Iterator[Tuple[str, Branch]]:
        """(label, branch) for every block ending in a conditional branch."""
        for label in self.cfg.reachable():
            term = self.function.block(label).terminator
            if isinstance(term, Branch):
                yield label, term

    def condition_of(self, label: str) -> Optional[Cmp]:
        """The Cmp feeding the block's branch, if defined in the block."""
        block = self.function.block(label)
        term = block.terminator
        if not isinstance(term, Branch) or not isinstance(term.cond, Temp):
            return None
        for instr in reversed(block.instructions):
            result = instr.result
            if result is not None and result == term.cond:
                return instr if isinstance(instr, Cmp) else None
        return None

    def effective_successor(self, label: str) -> str:
        """Look through pure forwarding blocks (assertions + jump).

        Critical-edge splitting introduces semantically empty blocks; the
        Ball–Larus successor-content heuristics should see through them.
        """
        cached = self._effective.get(label)
        if cached is not None:
            return cached
        current = label
        for _ in range(8):
            block = self.function.block(current)
            if not _is_forwarding(block):
                break
            current = block.terminator.target  # type: ignore[union-attr]
        self._effective[label] = current
        return current

    def effective_instructions(self, label: str) -> List[Instruction]:
        """Instructions of the block a successor effectively lands in."""
        return list(self.function.block(self.effective_successor(label)).instructions)


def _is_forwarding(block: BasicBlock) -> bool:
    if not isinstance(block.terminator, Jump):
        return False
    return all(
        isinstance(instr, (Pi, Jump)) for instr in block.instructions
    )


class Predictor:
    """Base class: produce P(true) for every conditional branch."""

    name = "predictor"

    def predict_function(
        self, function: Function, context: Optional[FunctionContext] = None
    ) -> Dict[str, float]:
        """Map each branch block label to P(taking the true edge)."""
        if context is None:
            context = FunctionContext(function)
        return {
            label: self.predict_branch(context, label, branch)
            for label, branch in context.branches()
        }

    def predict_branch(
        self, context: FunctionContext, label: str, branch: Branch
    ) -> float:
        raise NotImplementedError

    def as_fallback(self, analyses=None):
        """Adapt to the propagation engine's ``(function, label) -> p`` hook.

        ``analyses`` (a :class:`repro.passes.AnalysisCache`) supplies
        the :class:`FunctionContext` from its cache when given; the
        context is built privately otherwise.
        """
        cache: Dict[int, Dict[str, float]] = {}

        def fallback(function: Function, label: str) -> float:
            key = id(function)
            if key not in cache:
                context = (
                    analyses.context(function) if analyses is not None else None
                )
                cache[key] = self.predict_function(function, context=context)
            return cache[key].get(label, 0.5)

        return fallback
