"""Bound (symbolic/numeric endpoint) tests."""

import pytest

from repro.core.bounds import Bound, NEG_INF, POS_INF, bound_max, bound_min


class TestConstruction:
    def test_numeric(self):
        b = Bound.number(5)
        assert b.is_numeric()
        assert b.offset == 5

    def test_symbolic(self):
        b = Bound.symbolic("x.1", 2)
        assert not b.is_numeric()
        assert b.symbol == "x.1"
        assert b.offset == 2

    def test_infinite_symbolic_rejected(self):
        with pytest.raises(ValueError):
            Bound(POS_INF, "x")

    def test_infinity_predicates(self):
        assert Bound.number(POS_INF).is_pos_inf()
        assert Bound.number(NEG_INF).is_neg_inf()
        assert not Bound.number(0).is_pos_inf()


class TestArithmetic:
    def test_add_const(self):
        assert Bound.number(5).add_const(3) == Bound.number(8)
        assert Bound.symbolic("x", 1).add_const(-2) == Bound.symbolic("x", -1)

    def test_add_const_to_infinity_is_noop(self):
        assert Bound.number(POS_INF).add_const(5).is_pos_inf()

    def test_add_numeric(self):
        assert Bound.number(2).add(Bound.number(3)) == Bound.number(5)

    def test_add_symbolic_plus_numeric(self):
        assert Bound.symbolic("x", 1).add(Bound.number(4)) == Bound.symbolic("x", 5)

    def test_add_two_symbols_unrepresentable(self):
        assert Bound.symbolic("x").add(Bound.symbolic("y")) is None
        assert Bound.symbolic("x").add(Bound.symbolic("x")) is None  # 2x

    def test_sub_same_symbol_is_numeric(self):
        result = Bound.symbolic("x", 5).sub(Bound.symbolic("x", 2))
        assert result == Bound.number(3)

    def test_sub_different_symbols_unrepresentable(self):
        assert Bound.symbolic("x").sub(Bound.symbolic("y")) is None

    def test_numeric_minus_symbol_unrepresentable(self):
        assert Bound.number(10).sub(Bound.symbolic("x")) is None

    def test_symbol_minus_numeric(self):
        assert Bound.symbolic("x", 3).sub(Bound.number(1)) == Bound.symbolic("x", 2)

    def test_negate(self):
        assert Bound.number(4).negate() == Bound.number(-4)
        assert Bound.symbolic("x").negate() is None

    def test_scale(self):
        assert Bound.number(3).scale(4) == Bound.number(12)
        assert Bound.symbolic("x", 2).scale(1) == Bound.symbolic("x", 2)
        assert Bound.symbolic("x", 2).scale(2) is None


class TestComparison:
    def test_numeric_ordering(self):
        assert Bound.number(1).compare(Bound.number(2)) == -1
        assert Bound.number(2).compare(Bound.number(2)) == 0
        assert Bound.number(3).compare(Bound.number(2)) == 1

    def test_same_symbol_ordering_by_offset(self):
        assert Bound.symbolic("x", 1).compare(Bound.symbolic("x", 2)) == -1

    def test_cross_symbol_incomparable(self):
        assert Bound.symbolic("x").compare(Bound.symbolic("y")) is None
        assert Bound.symbolic("x").compare(Bound.number(5)) is None

    def test_infinities_compare(self):
        assert Bound.number(NEG_INF).compare(Bound.number(0)) == -1
        assert Bound.number(POS_INF).compare(Bound.number(1e18)) == 1

    def test_less_equal(self):
        assert Bound.number(1).less_equal(Bound.number(1)) is True
        assert Bound.symbolic("x").less_equal(Bound.number(1)) is None

    def test_distance(self):
        assert Bound.number(3).distance(Bound.number(10)) == 7
        assert Bound.symbolic("x", 1).distance(Bound.symbolic("x", 4)) == 3
        assert Bound.symbolic("x").distance(Bound.number(0)) is None


class TestMinMax:
    def test_bound_min(self):
        assert bound_min(Bound.number(1), Bound.number(5)) == Bound.number(1)
        assert bound_min(Bound.symbolic("x"), Bound.number(5)) is None

    def test_bound_max(self):
        assert bound_max(Bound.symbolic("x", 1), Bound.symbolic("x", 3)) == Bound.symbolic("x", 3)


class TestDisplay:
    def test_str_forms(self):
        assert str(Bound.number(5)) == "5"
        assert str(Bound.number(POS_INF)) == "+inf"
        assert str(Bound.symbolic("n.0")) == "n.0"
        assert str(Bound.symbolic("n.0", -1)) == "n.0-1"
        assert str(Bound.symbolic("n.0", 2)) == "n.0+2"

    def test_hash_consistency(self):
        assert len({Bound.number(1), Bound.number(1), Bound.symbolic("x", 1)}) == 2
