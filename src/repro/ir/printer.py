"""Human-readable printing of IR functions and modules."""

from __future__ import annotations

from typing import List

from repro.ir.cfg import CFG
from repro.ir.function import Function, Module


def format_function(function: Function, show_preds: bool = False) -> str:
    """Render a function as text, one instruction per line."""
    lines: List[str] = []
    params = ", ".join(function.params)
    lines.append(f"func {function.name}({params}) {{")
    for name, size in sorted(function.arrays.items()):
        size_text = "?" if size is None else str(size)
        lines.append(f"  array {name}[{size_text}]")
    preds = None
    if show_preds:
        preds = CFG(function).predecessors
    for label, block in function.blocks.items():
        header = f"{label}:"
        if preds is not None and preds[label]:
            header += f"    ; preds: {', '.join(preds[label])}"
        lines.append(header)
        for instr in block.instructions:
            lines.append(f"    {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module, show_preds: bool = False) -> str:
    return "\n\n".join(
        format_function(function, show_preds=show_preds)
        for function in module.functions.values()
    )
