"""Prediction-accuracy metrics: the paper's error-CDF analysis.

The paper scores predictors by "how far each branch's predicted
probability deviated from its actual behavior", in percentage points,
and plots the percentage of branches predicted to within a given error
margin -- unweighted (each branch equal) and weighted by execution
count.  This module computes those records and curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.profiling.profile_data import BranchProfile

# The paper plots error margins 0..40 percentage points in steps of 2.
DEFAULT_THRESHOLDS: Tuple[int, ...] = tuple(range(1, 41, 2))


@dataclass
class BranchError:
    """One branch's prediction error against observed behaviour."""

    function: str
    label: str
    predicted: float
    actual: float
    weight: int  # ref-run execution count

    @property
    def error_points(self) -> float:
        """Absolute error in percentage points."""
        return abs(self.predicted - self.actual) * 100.0


def branch_errors(
    predictions: Dict[Tuple[str, str], float],
    truth: BranchProfile,
    default_prediction: float = 0.5,
) -> List[BranchError]:
    """Error records for every branch the ground-truth run executed.

    Branches never executed by the ref input have no observable
    behaviour and are excluded (matching profile-evaluation practice);
    executed branches missing from the prediction map get
    ``default_prediction``.
    """
    records: List[BranchError] = []
    for (function, label), counts in sorted(truth.branch_counts.items()):
        total = counts[0] + counts[1]
        if total == 0:
            continue
        actual = counts[0] / total
        predicted = predictions.get((function, label), default_prediction)
        records.append(
            BranchError(
                function=function,
                label=label,
                predicted=predicted,
                actual=actual,
                weight=total,
            )
        )
    return records


def error_cdf(
    records: Sequence[BranchError],
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    weighted: bool = False,
) -> List[float]:
    """Percentage of (weighted) branches predicted within each margin.

    ``cdf[i]`` = percentage of branches with error < thresholds[i]
    (strictly less, matching the paper's "< K" axis labels).
    """
    if not records:
        return [0.0 for _ in thresholds]
    total = sum(r.weight if weighted else 1 for r in records)
    out: List[float] = []
    for threshold in thresholds:
        covered = sum(
            (r.weight if weighted else 1)
            for r in records
            if r.error_points < threshold
        )
        out.append(100.0 * covered / total)
    return out


def mean_error(records: Sequence[BranchError], weighted: bool = False) -> float:
    """Average absolute error in percentage points."""
    if not records:
        return 0.0
    total = sum(r.weight if weighted else 1 for r in records)
    return (
        sum(r.error_points * (r.weight if weighted else 1) for r in records) / total
    )


def average_cdfs(cdfs: Sequence[Sequence[float]]) -> List[float]:
    """Average several benchmarks' CDFs point-wise.

    The paper weights "each benchmark equally within its suite"; this is
    that aggregation.
    """
    if not cdfs:
        return []
    length = len(cdfs[0])
    if any(len(c) != length for c in cdfs):
        raise ValueError("CDFs have mismatched lengths")
    return [sum(c[i] for c in cdfs) / len(cdfs) for i in range(length)]


def area_under_cdf(cdf: Sequence[float]) -> float:
    """Summary statistic: mean CDF height (higher = better predictor)."""
    if not cdf:
        return 0.0
    return sum(cdf) / len(cdf)
