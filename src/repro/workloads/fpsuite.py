"""The "SPECfp92-like" suite: loop-dominated numeric kernels.

Ten programs mirroring the numeric workloads of the paper, written in
fixed-point integer arithmetic (the toy language has no floats; the
*branching structure* -- which is all that matters for branch
prediction -- is the same).  Like the SPEC fp codes (matrix300's size
is literally the constant 300), loop bounds are compile-time constants;
train and ref runs differ in the *data* they process, not the loop
structure.  The paper found VRP "significantly more accurate for
numeric code" because most branches depend on loop control variables
whose ranges derive exactly; these kernels reproduce that regime, with
a sprinkling of data-dependent guard branches where profiling keeps an
edge.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, lcg_stream, register

MATMUL_SOURCE = """
func main(n) {
  array a[256];
  array b[256];
  array c[256];
  for (i = 0; i < 256; i = i + 1) {
    a[i] = input() % 100;
    b[i] = input() % 100;
    c[i] = 0;
  }
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      var acc = 0;
      for (k = 0; k < 16; k = k + 1) {
        acc = acc + a[i * 16 + k] * b[k * 16 + j];
      }
      c[i * 16 + j] = acc;
    }
  }
  var checksum = 0;
  for (i = 0; i < 256; i = i + 1) {
    checksum = checksum + c[i];
  }
  return checksum % 100000;
}
"""

register(
    Workload(
        name="matmul",
        suite="fp",
        description="16x16 dense matrix multiply (matrix300-like triple loop)",
        source=MATMUL_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=lcg_stream(17, 512),
        ref_inputs=lcg_stream(171, 512),
    )
)


STENCIL_SOURCE = """
func main(n) {
  array grid[256];
  array next[256];
  for (i = 0; i < 256; i = i + 1) {
    grid[i] = input() % 1000;
  }
  for (t = 0; t < 20; t = t + 1) {
    for (i = 1; i < 255; i = i + 1) {
      next[i] = (grid[i - 1] + 2 * grid[i] + grid[i + 1]) / 4;
    }
    next[0] = grid[0];
    next[255] = grid[255];
    for (i = 0; i < 256; i = i + 1) {
      grid[i] = next[i];
    }
  }
  var checksum = 0;
  for (i = 0; i < 256; i = i + 1) {
    checksum = checksum + grid[i];
  }
  return checksum;
}
"""

register(
    Workload(
        name="stencil",
        suite="fp",
        description="1-D diffusion stencil, 20 sweeps over 256 cells (tomcatv-like)",
        source=STENCIL_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=lcg_stream(31, 256),
        ref_inputs=lcg_stream(313, 256),
    )
)


GAUSS_SOURCE = """
func main(n) {
  array m[256];
  var singular = 0;
  for (i = 0; i < 256; i = i + 1) {
    m[i] = input() % 199 + 1;
  }
  for (p = 0; p < 16; p = p + 1) {
    var pivot = m[p * 16 + p];
    if (pivot == 0) {
      singular = singular + 1;
    } else {
      for (r = p + 1; r < 16; r = r + 1) {
        var factor = (m[r * 16 + p] * 1000) / pivot;
        for (c = p; c < 16; c = c + 1) {
          m[r * 16 + c] = m[r * 16 + c] - (factor * m[p * 16 + c]) / 1000;
        }
      }
    }
  }
  var checksum = 0;
  for (i = 0; i < 16; i = i + 1) {
    checksum = checksum + m[i * 16 + i];
  }
  return checksum % 100000 + singular * 1000000;
}
"""

register(
    Workload(
        name="gauss",
        suite="fp",
        description="16x16 fixed-point Gaussian elimination with pivot guard (fpppp-like)",
        source=GAUSS_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=lcg_stream(43, 256),
        ref_inputs=lcg_stream(431, 256),
    )
)


INTERP_SOURCE = """
func main(n) {
  array table[64];
  for (i = 0; i < 64; i = i + 1) {
    table[i] = i * i;
  }
  var total = 0;
  var clamped = 0;
  for (q = 0; q < n; q = q + 1) {
    var x = input() % 70;
    if (x >= 63) {
      x = 63;
      clamped = clamped + 1;
    }
    var base = table[x];
    var frac = input() % 1000;
    var nexti = x + 1;
    if (nexti > 63) { nexti = 63; }
    var delta = table[nexti] - base;
    total = total + base * 1000 + delta * frac;
  }
  return total % 1000000 + clamped * 1000000;
}
"""

register(
    Workload(
        name="interp",
        suite="fp",
        description="Table interpolation with clamp guards (ear-like lookup kernel)",
        source=INTERP_SOURCE,
        train_args=[300],
        ref_args=[3000],
        train_inputs=lcg_stream(53, 600),
        ref_inputs=lcg_stream(797, 6000),
    )
)


MANDEL_SOURCE = """
func main(n) {
  var inside = 0;
  var scale = 1000;
  var xshift = input() % 200;
  var yshift = input() % 200;
  for (py = 0; py < 24; py = py + 1) {
    for (px = 0; px < 24; px = px + 1) {
      var cx = (px * 3 * scale) / 24 - 2 * scale + xshift;
      var cy = (py * 2 * scale) / 24 - scale + yshift;
      var zx = 0;
      var zy = 0;
      var iter = 0;
      while (iter < 32) {
        var zx2 = (zx * zx) / scale;
        var zy2 = (zy * zy) / scale;
        if (zx2 + zy2 > 4 * scale) { break; }
        var tmp = zx2 - zy2 + cx;
        zy = (2 * zx * zy) / scale + cy;
        zx = tmp;
        iter = iter + 1;
      }
      if (iter == 32) { inside = inside + 1; }
    }
  }
  return inside;
}
"""

register(
    Workload(
        name="mandel",
        suite="fp",
        description="24x24 fixed-point Mandelbrot with input-shifted window (swm256-like)",
        source=MANDEL_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=[37, 91],
        ref_inputs=[143, 12],
    )
)


HISTOGRAM_SOURCE = """
func main(n) {
  array bins[32];
  for (i = 0; i < 32; i = i + 1) { bins[i] = 0; }
  for (i = 0; i < n; i = i + 1) {
    var v = input() % 4096;
    var bin = v / 128;
    bins[bin] = bins[bin] + 1;
  }
  var max_count = 0;
  var max_bin = 0;
  for (i = 0; i < 32; i = i + 1) {
    if (bins[i] > max_count) {
      max_count = bins[i];
      max_bin = i;
    }
  }
  return max_bin * 100000 + max_count;
}
"""

register(
    Workload(
        name="histogram",
        suite="fp",
        description="Binning plus argmax scan (nasa7-like reduction)",
        source=HISTOGRAM_SOURCE,
        train_args=[400],
        ref_args=[5000],
        train_inputs=lcg_stream(61, 400),
        ref_inputs=lcg_stream(611, 5000),
    )
)


TRIANGLE_SOURCE = """
func main(n) {
  array a[4096];
  var total = 0;
  var offset = input() % 97;
  for (i = 0; i < 48; i = i + 1) {
    for (j = 0; j <= i; j = j + 1) {
      a[i * 48 + j] = (i * 48 + j + offset) % 97;
      total = total + a[i * 48 + j] % 7;
    }
  }
  var evens = 0;
  for (i = 0; i < 48; i = i + 1) {
    for (j = 0; j <= i; j = j + 1) {
      if (a[i * 48 + j] % 2 == 0) { evens = evens + 1; }
    }
  }
  return total * 1000 + evens % 1000;
}
"""

register(
    Workload(
        name="triangle",
        suite="fp",
        description="Triangular nested loops (symbolic inner bound j <= i)",
        source=TRIANGLE_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=[23],
        ref_inputs=[61],
    )
)


MINMAX_SOURCE = """
func main(n) {
  var minimum = 1000000000;
  var maximum = 0 - 1000000000;
  var updates = 0;
  for (i = 0; i < n; i = i + 1) {
    var v = input() % 100000 - 50000;
    if (v < minimum) {
      minimum = v;
      updates = updates + 1;
    }
    if (v > maximum) {
      maximum = v;
      updates = updates + 1;
    }
  }
  return (maximum - minimum) % 100000 + updates * 100000;
}
"""

register(
    Workload(
        name="minmax",
        suite="fp",
        description="Running min/max scan (rare-update guard branches)",
        source=MINMAX_SOURCE,
        train_args=[400],
        ref_args=[5000],
        train_inputs=lcg_stream(71, 400, modulus=1 << 20),
        ref_inputs=lcg_stream(711, 5000, modulus=1 << 20),
    )
)


FIR_SOURCE = """
func main(n) {
  array signal[1024];
  array coeff[16];
  array out[1024];
  for (i = 0; i < 16; i = i + 1) {
    coeff[i] = (i * 7) % 13 - 6;
  }
  for (i = 0; i < 1024; i = i + 1) {
    signal[i] = input() % 2000 - 1000;
  }
  var saturated = 0;
  for (i = 16; i < 1024; i = i + 1) {
    var acc = 0;
    for (t = 0; t < 16; t = t + 1) {
      acc = acc + signal[i - t] * coeff[t];
    }
    if (acc > 100000) {
      acc = 100000;
      saturated = saturated + 1;
    }
    if (acc < 0 - 100000) {
      acc = 0 - 100000;
      saturated = saturated + 1;
    }
    out[i] = acc;
  }
  var checksum = 0;
  for (i = 0; i < 1024; i = i + 1) {
    checksum = checksum + out[i];
  }
  return checksum % 1000000 + saturated;
}
"""

register(
    Workload(
        name="fir",
        suite="fp",
        description="16-tap FIR filter over 1024 samples with saturation guards",
        source=FIR_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=lcg_stream(83, 1024),
        ref_inputs=lcg_stream(831, 1024),
    )
)


POWER_SOURCE = """
func modpow(base, exponent, modulus) {
  var result = 1;
  base = base % modulus;
  while (exponent > 0) {
    if (exponent % 2 == 1) {
      result = (result * base) % modulus;
    }
    base = (base * base) % modulus;
    exponent = exponent / 2;
  }
  return result;
}

func main(n) {
  var total = 0;
  for (i = 0; i < n; i = i + 1) {
    var base = input() % 1000 + 2;
    var exponent = input() % 64 + 1;
    total = (total + modpow(base, exponent, 10007)) % 1000000;
  }
  return total;
}
"""

register(
    Workload(
        name="power",
        suite="fp",
        description="Modular exponentiation (square-and-multiply loop nest)",
        source=POWER_SOURCE,
        train_args=[150],
        ref_args=[1500],
        train_inputs=lcg_stream(89, 300),
        ref_inputs=lcg_stream(891, 3000),
    )
)


SMOOTH_SOURCE = """
func smooth(width, passes) {
  array buf[256];
  for (i = 0; i < width; i = i + 1) {
    buf[i] = input() % 500;
  }
  for (p = 0; p < passes; p = p + 1) {
    for (i = 1; i < width - 1; i = i + 1) {
      buf[i] = (buf[i - 1] + buf[i] + buf[i + 1]) / 3;
    }
  }
  var checksum = 0;
  for (i = 0; i < width; i = i + 1) {
    checksum = checksum + buf[i];
  }
  return checksum;
}

func main(n) {
  var total = 0;
  total = total + smooth(64, 4);
  total = total + smooth(128, 2);
  total = total + smooth(240, 1);
  return total % 1000000;
}
"""

register(
    Workload(
        name="smooth",
        suite="fp",
        description="Parameterised smoothing kernel called at three widths "
        "(interprocedural symbolic loop bounds)",
        source=SMOOTH_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=lcg_stream(101, 64 + 128 + 240),
        ref_inputs=lcg_stream(107, 64 + 128 + 240),
    )
)


POLY_SOURCE = """
func horner(degree, x, scale) {
  var acc = 0;
  for (k = 0; k <= degree; k = k + 1) {
    acc = (acc * x) / scale + (k * 17) % 23 - 11;
  }
  return acc;
}

func main(n) {
  var total = 0;
  for (i = 0; i < n; i = i + 1) {
    var x = input() % 200 - 100;
    total = total + horner(3, x, 100);
    total = total + horner(7, x, 100);
    if (total > 100000000) { total = total % 100000000; }
  }
  return total % 1000000;
}
"""

register(
    Workload(
        name="poly",
        suite="fp",
        description="Horner polynomial evaluation at two degrees "
        "(parameter-range loop bounds)",
        source=POLY_SOURCE,
        train_args=[200],
        ref_args=[2000],
        train_inputs=lcg_stream(109, 200),
        ref_inputs=lcg_stream(113, 2000),
    )
)


CONV_SOURCE = """
func main(n) {
  array image[400];
  array kernel[9];
  array output[400];
  for (i = 0; i < 400; i = i + 1) {
    image[i] = input() % 256;
  }
  for (k = 0; k < 9; k = k + 1) {
    kernel[k] = (k * 5) % 7 - 3;
  }
  for (y = 1; y < 19; y = y + 1) {
    for (x = 1; x < 19; x = x + 1) {
      var acc = 0;
      for (ky = 0; ky < 3; ky = ky + 1) {
        for (kx = 0; kx < 3; kx = kx + 1) {
          acc = acc + image[(y + ky - 1) * 20 + (x + kx - 1)] * kernel[ky * 3 + kx];
        }
      }
      output[y * 20 + x] = acc;
    }
  }
  var checksum = 0;
  for (i = 0; i < 400; i = i + 1) {
    checksum = checksum + output[i];
  }
  return checksum % 1000000;
}
"""

register(
    Workload(
        name="conv2d",
        suite="fp",
        description="3x3 convolution over a 20x20 image (four-deep constant loops)",
        source=CONV_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=lcg_stream(233, 400),
        ref_inputs=lcg_stream(239, 400),
    )
)


EULER_SOURCE = """
func main(n) {
  var position = 0;
  var velocity = input() % 200 - 100;
  var clipped = 0;
  for (step = 0; step < 4000; step = step + 1) {
    var force = 0 - position / 4 - velocity / 8;
    velocity = velocity + force / 16;
    position = position + velocity / 16;
    if (position > 10000) {
      position = 10000;
      clipped = clipped + 1;
    }
    if (position < 0 - 10000) {
      position = 0 - 10000;
      clipped = clipped + 1;
    }
  }
  return position % 100000 + clipped * 100000;
}
"""

register(
    Workload(
        name="euler",
        suite="fp",
        description="Fixed-point damped-oscillator integrator with clipping guards",
        source=EULER_SOURCE,
        train_args=[0],
        ref_args=[0],
        train_inputs=[37],
        ref_inputs=[171],
    )
)
