"""Natural loop detection tests."""

from repro.analysis.loops import LoopInfo
from repro.ir.cfg import CFG

from tests.helpers import prepare_single


def loops_of(source):
    function, _ = prepare_single(source)
    cfg = CFG(function)
    return function, cfg, LoopInfo(cfg)


class TestDetection:
    def test_single_loop(self):
        _, cfg, info = loops_of(
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        assert len(info.loops) == 1
        (loop,) = info.loops.values()
        assert loop.latches
        assert loop.header in loop.blocks

    def test_no_loops_in_straight_line(self):
        _, _, info = loops_of("func main(n) { return n + 1; }")
        assert info.loops == {}

    def test_nested_loops(self):
        _, _, info = loops_of(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 5; j = j + 1) { t = t + 1; }
              }
              return t;
            }
            """
        )
        assert len(info.loops) == 2
        sizes = sorted(len(loop.blocks) for loop in info.loops.values())
        assert sizes[0] < sizes[1]  # inner nested within outer

    def test_nesting_depth(self):
        _, _, info = loops_of(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 5; j = j + 1) { t = t + 1; }
              }
              return t;
            }
            """
        )
        inner = min(info.loops.values(), key=lambda l: len(l.blocks))
        assert info.depth(inner.header) == 2

    def test_innermost(self):
        _, _, info = loops_of(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 5; i = i + 1) {
                for (j = 0; j < 5; j = j + 1) { t = t + 1; }
              }
              return t;
            }
            """
        )
        inner = min(info.loops.values(), key=lambda l: len(l.blocks))
        for label in inner.blocks:
            assert info.innermost(label) is inner

    def test_exit_edges(self):
        _, cfg, info = loops_of(
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        (loop,) = info.loops.values()
        exits = loop.exit_edges(cfg)
        assert exits
        for src, dst in exits:
            assert src in loop.blocks
            assert dst not in loop.blocks

    def test_is_header(self):
        _, _, info = loops_of(
            "func main(n) { var t = 0; while (t < 10) { t = t + 1; } return t; }"
        )
        (header,) = info.loops
        assert info.is_header(header)
        assert not info.is_header("entry0")

    def test_sibling_loops_distinct(self):
        _, _, info = loops_of(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < 5; i = i + 1) { t = t + 1; }
              for (j = 0; j < 5; j = j + 1) { t = t + 2; }
              return t;
            }
            """
        )
        assert len(info.loops) == 2
        loops = list(info.loops.values())
        assert not (loops[0].blocks & loops[1].blocks)
