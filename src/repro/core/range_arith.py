"""Arithmetic over range sets (paper §3.5).

Binary operations cross every range of the left set with every range of
the right set -- up to R² pairwise *sub-operations* per evaluation, each
tallied in the active :mod:`~repro.core.counters` (Figure 6 reproduces
the sub-operation counts).  A pair that cannot be represented (symbolic
product, division by a range containing zero, ...) makes the whole
result ⊥, exactly as the paper's "problematic ranges quickly become ⊥".

Arithmetic follows the toy language's semantics, which are Python's:
floor division, floor modulo (sign of divisor), arithmetic shifts.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.core import counters
from repro.core.bounds import Bound, NEG_INF, Number, POS_INF, bound_max, bound_min
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, DEFAULT_MAX_RANGES, RangeSet, TOP


# The "anything" range: stands in for a ⊥ operand so that bounding
# operations (mod, masking, ...) can still constrain the result.
FULL_RANGE = StridedRange(1.0, Bound.number(NEG_INF), Bound.number(POS_INF), 1)


def evaluate_binop(
    op: str, a: RangeSet, b: RangeSet, max_ranges: int = DEFAULT_MAX_RANGES
) -> RangeSet:
    """Evaluate ``a <op> b`` over range sets.

    A ⊥ operand is modelled as the full range ``[-inf:+inf]``: most
    operations then stay unbounded and collapse back to ⊥, but the ones
    that bound their result regardless of one input -- ``x % 70`` is in
    ``[0:69]`` whatever ``x`` holds -- recover a usable range, exactly
    the fact a compiler knows statically.
    """
    if a.is_top or b.is_top:
        return TOP
    if a.is_bottom and b.is_bottom:
        return BOTTOM
    a_ranges = a.ranges if a.is_set else (FULL_RANGE,)
    b_ranges = b.ranges if b.is_set else (FULL_RANGE,)
    handler = _BINOP_HANDLERS.get(op)
    if handler is None:
        raise ValueError(f"unknown binary op {op!r}")
    out: List[StridedRange] = []
    for left in a_ranges:
        for right in b_ranges:
            counters.active().sub_operations += 1
            pair = handler(left, right)
            if pair is None:
                return BOTTOM
            out.append(pair)
    result = RangeSet.from_ranges(out, max_ranges=max_ranges, renormalise=True)
    if (a.is_bottom or b.is_bottom) and _is_unbounded(result):
        return BOTTOM  # no information was recovered
    return result


def _is_unbounded(result: RangeSet) -> bool:
    if not result.is_set:
        return True
    hull = result.hull()
    if hull is None:
        return False
    return hull.lo.is_neg_inf() and hull.hi.is_pos_inf()


def evaluate_unop(
    op: str, a: RangeSet, max_ranges: int = DEFAULT_MAX_RANGES
) -> RangeSet:
    """Evaluate a unary op over a range set."""
    if a.is_bottom:
        return BOTTOM
    if a.is_top:
        return TOP
    out: List[StridedRange] = []
    for r in a.ranges:
        counters.active().sub_operations += 1
        if op == "neg":
            single = _negate(r)
        elif op == "not":
            single = None  # 'not' is lowered to cmp.eq 0; no direct handler
        else:
            raise ValueError(f"unknown unary op {op!r}")
        if single is None:
            return BOTTOM
        out.append(single)
    return RangeSet.from_ranges(out, max_ranges=max_ranges, renormalise=True)


# ---------------------------------------------------------------------------
# pairwise handlers -- each returns None when unrepresentable
# ---------------------------------------------------------------------------


def _combined_stride(a: StridedRange, b: StridedRange) -> int:
    """Stride of a sum/difference: singles preserve the other's stride,
    otherwise the gcd (matching the paper's worked example)."""
    if a.is_single():
        return b.stride
    if b.is_single():
        return a.stride
    return math.gcd(a.stride, b.stride)


def _add(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    lo = a.lo.add(b.lo)
    hi = a.hi.add(b.hi)
    if lo is None or hi is None:
        return None
    return StridedRange(a.probability * b.probability, lo, hi, _combined_stride(a, b))


def _sub(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    lo = a.lo.sub(b.hi)
    hi = a.hi.sub(b.lo)
    if lo is None or hi is None:
        return None
    order = lo.compare(hi)
    if order is None or order > 0:
        return None
    return StridedRange(a.probability * b.probability, lo, hi, _combined_stride(a, b))


def _negate(a: StridedRange) -> Optional[StridedRange]:
    lo = a.hi.negate()
    hi = a.lo.negate()
    if lo is None or hi is None:
        return None
    return StridedRange(a.probability, lo, hi, a.stride)


def _numeric_endpoints(r: StridedRange) -> Optional[tuple]:
    if not r.is_numeric():
        return None
    return (r.lo.offset, r.hi.offset)


def _mul(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    probability = a.probability * b.probability
    # Single constant times a range scales bounds and stride.
    for single, other in ((a, b), (b, a)):
        if single.is_single() and single.lo.is_numeric() and single.lo.is_finite():
            factor = single.lo.offset
            return _scale_range(other, factor, probability)
    ends_a = _numeric_endpoints(a)
    ends_b = _numeric_endpoints(b)
    if ends_a is None or ends_b is None:
        return None
    products = [_mul_num(x, y) for x in ends_a for y in ends_b]
    return StridedRange(
        probability, Bound.number(min(products)), Bound.number(max(products)), 1
    )


def _mul_num(x: Number, y: Number) -> Number:
    if (x == 0 and math.isinf(y)) or (y == 0 and math.isinf(x)):
        return 0
    return x * y


def _scale_range(r: StridedRange, factor: Number, probability: float) -> Optional[StridedRange]:
    if factor == 0:
        return StridedRange.single(probability, 0)
    lo = r.lo.scale(factor)
    hi = r.hi.scale(factor)
    if lo is None or hi is None:
        return None
    if factor < 0:
        lo, hi = hi, lo
    stride = int(abs(factor)) * r.stride if factor == int(factor) else 1
    return StridedRange(probability, lo, hi, stride)


def _floordiv_num(x: Number, y: Number) -> Number:
    if math.isinf(x):
        return x if y > 0 else -x
    if math.isinf(y):
        return 0 if x >= 0 else -1  # floor semantics toward the divisor sign
    return x // y


def _div(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    probability = a.probability * b.probability
    ends_b = _numeric_endpoints(b)
    if ends_b is None:
        # x / same-symbol single? Only division by literal 1 keeps symbols.
        if b.is_single() and b.lo == Bound.number(1):
            return a.with_probability(probability)
        return None
    b_lo, b_hi = ends_b
    if b_lo <= 0 <= b_hi:
        return None  # divisor may be zero: unpredictable (runtime trap)
    if a.lo.symbol is not None or a.hi.symbol is not None:
        if b.is_single() and b_lo == 1:
            return a.with_probability(probability)
        return None
    ends_a = _numeric_endpoints(a)
    assert ends_a is not None
    quotients = [_floordiv_num(x, y) for x in ends_a for y in ends_b]
    stride = 1
    if b.is_single() and a.stride and b_lo > 0 and a.stride % int(b_lo) == 0:
        stride = a.stride // int(b_lo)
    return StridedRange(
        probability, Bound.number(min(quotients)), Bound.number(max(quotients)), stride
    )


def _mod(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    probability = a.probability * b.probability
    if not (b.is_single() and b.lo.is_numeric() and b.lo.is_finite()):
        return None
    modulus = b.lo.offset
    if modulus == 0:
        return None
    if modulus < 0:
        return None  # rare; keep the algebra simple and give up
    modulus = int(modulus)
    ends_a = _numeric_endpoints(a)
    if ends_a is not None and 0 <= ends_a[0] and ends_a[1] < modulus:
        return a.with_probability(probability)  # already reduced
    # Python floor modulo lands in [0, modulus); the residues of an
    # arithmetic progression all agree with lo modulo gcd(stride, modulus),
    # so the result is the phase-correct window of that sub-progression.
    stride = math.gcd(a.stride, modulus)
    if stride == 0:
        stride = 1
    phase = 0
    if (
        ends_a is not None
        and not math.isinf(ends_a[0])
        and ends_a[0] == int(ends_a[0])
    ):
        phase = int(ends_a[0]) % stride
    hi = phase + (modulus - 1 - phase) // stride * stride
    return StridedRange(probability, Bound.number(phase), Bound.number(hi), stride)


def _shl(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    shift = _small_constant(b)
    if shift is None or shift < 0:
        return None
    return _scale_range(a, 2 ** shift, a.probability * b.probability)


def _shr(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    shift = _small_constant(b)
    if shift is None or shift < 0:
        return None
    divisor = StridedRange.single(b.probability, 2 ** shift)
    return _div(a, divisor)


def _small_constant(r: StridedRange) -> Optional[int]:
    if r.is_single() and r.lo.is_numeric() and r.lo.is_finite():
        value = r.lo.offset
        if value == int(value) and abs(value) < 64:
            return int(value)
    return None


def _bit_and(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    probability = a.probability * b.probability
    const_a = _single_value(a)
    const_b = _single_value(b)
    if const_a is not None and const_b is not None:
        return StridedRange.single(probability, const_a & const_b)
    # x & mask with a non-negative mask lands in [0:mask] whatever x is
    # (Python/two's-complement semantics); a known-non-negative x
    # tightens the top end further.
    for mask_range, other in ((b, a), (a, b)):
        mask = _single_value(mask_range)
        if mask is not None and mask >= 0:
            hi = mask
            if _non_negative(other):
                ends = _numeric_endpoints(other)
                if ends is not None and not math.isinf(ends[1]):
                    hi = min(mask, int(ends[1]))
            return StridedRange(probability, Bound.number(0), Bound.number(hi), 1)
    return None


def _bit_or(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    probability = a.probability * b.probability
    const_a = _single_value(a)
    const_b = _single_value(b)
    if const_a is not None and const_b is not None:
        return StridedRange.single(probability, const_a | const_b)
    return _bit_span(a, b, probability)


def _bit_xor(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
    probability = a.probability * b.probability
    const_a = _single_value(a)
    const_b = _single_value(b)
    if const_a is not None and const_b is not None:
        return StridedRange.single(probability, const_a ^ const_b)
    return _bit_span(a, b, probability)


def _bit_span(a: StridedRange, b: StridedRange, probability: float) -> Optional[StridedRange]:
    """or/xor of non-negative ranges stay below the next power of two."""
    if not (_non_negative(a) and _non_negative(b)):
        return None
    ends_a = _numeric_endpoints(a)
    ends_b = _numeric_endpoints(b)
    if ends_a is None or ends_b is None:
        return None
    hi = max(ends_a[1], ends_b[1])
    if math.isinf(hi):
        return None
    bits = max(1, int(hi).bit_length())
    return StridedRange(probability, Bound.number(0), Bound.number(2 ** bits - 1), 1)


def _minmax(pick: Callable) -> Callable:
    def handler(a: StridedRange, b: StridedRange) -> Optional[StridedRange]:
        lo = pick(a.lo, b.lo)
        hi = pick(a.hi, b.hi)
        if lo is None or hi is None:
            return None
        # Results come from either progression, so the stride must also
        # divide their phase difference to stay sound.
        stride = math.gcd(a.stride, b.stride)
        offset_gap = a.lo.distance(b.lo)
        if offset_gap is not None and not math.isinf(offset_gap):
            stride = math.gcd(stride, int(abs(offset_gap)))
        else:
            stride = 1
        return StridedRange(a.probability * b.probability, lo, hi, stride or 1)

    return handler


def _single_value(r: StridedRange) -> Optional[int]:
    if r.is_single() and r.lo.is_numeric() and r.lo.is_finite():
        value = r.lo.offset
        if value == int(value):
            return int(value)
    return None


def _non_negative(r: StridedRange) -> bool:
    return r.lo.is_numeric() and r.lo.offset >= 0


_BINOP_HANDLERS = {
    "add": _add,
    "sub": _sub,
    "mul": _mul,
    "div": _div,
    "mod": _mod,
    "shl": _shl,
    "shr": _shr,
    "and": _bit_and,
    "or": _bit_or,
    "xor": _bit_xor,
    "min": _minmax(bound_min),
    "max": _minmax(bound_max),
}
