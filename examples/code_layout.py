"""Profile-guided code layout from *static* predictions (paper §6).

Uses VRP's predicted edge frequencies to drive Pettis-Hansen block
chaining, then measures the real fall-through improvement with the
interpreter -- the "I-cache appears 2-3x larger" optimisation the paper
motivates, without ever running a profile.

Run:  python examples/code_layout.py
"""

from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis
from repro.lang import compile_source
from repro.opt import chain_layout, fallthrough_fraction
from repro.profiling import run_module

PROGRAM = """
func main(n) {
  var hot = 0;
  var cold = 0;
  for (i = 0; i < 2000; i = i + 1) {
    var v = input() % 100;
    if (v < 95) {
      hot = hot + v;
    } else {
      cold = cold + v * v;    // rare path: should be laid out of line
    }
    if (hot > 1000000) {
      hot = hot / 2;          // overflow guard: essentially never taken
    }
  }
  return hot + cold;
}
"""


def main() -> None:
    module = compile_source(PROGRAM)
    function = module.function("main")
    info = prepare_for_analysis(function)
    prediction = analyse_function(function, info)

    original_order = list(function.blocks)
    optimised_order = chain_layout(function, prediction.edge_frequency)

    print("=== Block order ===")
    print(f"  original : {' '.join(original_order)}")
    print(f"  optimised: {' '.join(optimised_order)}")

    run = run_module(
        module, args=[0], input_values=[(i * 37) % 100 for i in range(2000)]
    )
    dynamic_edges = {
        (src, dst): count
        for (func, src, dst), count in run.edge_counts.items()
        if func == "main"
    }
    before = fallthrough_fraction(original_order, dynamic_edges)
    after = fallthrough_fraction(optimised_order, dynamic_edges)
    print()
    print("=== Dynamic fall-through fraction (higher = fewer taken jumps) ===")
    print(f"  source order   : {before:6.1%}")
    print(f"  VRP-driven     : {after:6.1%}")
    transfers = sum(dynamic_edges.values())
    saved = int((after - before) * transfers)
    print(f"  taken-branch executions avoided: {saved} of {transfers}")


if __name__ == "__main__":
    main()
