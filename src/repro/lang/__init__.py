"""Toy imperative language: lexer, parser, and lowering to the IR.

The language exists so the reproduction has real programs to analyse --
the role SPEC92 C/Fortran sources play in the paper.  ``compile_source``
is the one-stop entry point::

    from repro.lang import compile_source
    module = compile_source("func main(n) { return n + 1; }")
"""

from repro.lang.ast_nodes import (
    ArrayAssign,
    ArrayDecl,
    Assign,
    BinaryExpr,
    Block,
    Break,
    CallExpr,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    IndexExpr,
    InputExpr,
    IntLit,
    LogicalExpr,
    Node,
    Program,
    Return,
    Stmt,
    UnaryExpr,
    Var,
    While,
)
from repro.lang.lexer import LexError, Lexer, tokenize
from repro.lang.lowering import LoweringError, compile_source, lower_program
from repro.lang.parser import ParseError, Parser, parse
from repro.lang.tokens import KEYWORDS, Token, TokenKind

__all__ = [
    "ArrayAssign",
    "ArrayDecl",
    "Assign",
    "BinaryExpr",
    "Block",
    "Break",
    "CallExpr",
    "Continue",
    "DoWhile",
    "Expr",
    "ExprStmt",
    "For",
    "FuncDef",
    "If",
    "IndexExpr",
    "InputExpr",
    "IntLit",
    "KEYWORDS",
    "LexError",
    "Lexer",
    "LogicalExpr",
    "LoweringError",
    "Node",
    "ParseError",
    "Parser",
    "Program",
    "Return",
    "Stmt",
    "Token",
    "TokenKind",
    "UnaryExpr",
    "Var",
    "While",
    "compile_source",
    "lower_program",
    "parse",
    "tokenize",
]
