"""Call graph construction and traversal orders.

Interprocedural value range propagation processes callees before callers
where possible (so return ranges are available) and iterates over
recursive components.  The call graph provides that order via Tarjan
SCC condensation.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.function import Function, Module
from repro.ir.instructions import Call


class CallSite:
    """One call instruction, with its location."""

    __slots__ = ("caller", "block_label", "instruction")

    def __init__(self, caller: str, block_label: str, instruction: Call):
        self.caller = caller
        self.block_label = block_label
        self.instruction = instruction

    @property
    def callee(self) -> str:
        return self.instruction.callee

    def __repr__(self) -> str:
        return f"CallSite({self.caller} -> {self.callee} at {self.block_label})"


class CallGraph:
    """Functions, their call sites, and SCC-based orders."""

    def __init__(self, module: Module):
        self.module = module
        self.call_sites: List[CallSite] = []
        self.callees: Dict[str, Set[str]] = {name: set() for name in module.functions}
        self.callers: Dict[str, Set[str]] = {name: set() for name in module.functions}
        for name, function in module.functions.items():
            for label, block in function.blocks.items():
                for instr in block.instructions:
                    if isinstance(instr, Call):
                        site = CallSite(name, label, instr)
                        self.call_sites.append(site)
                        if instr.callee in self.callees:
                            self.callees[name].add(instr.callee)
                            self.callers[instr.callee].add(name)

    def sites_of_callee(self, callee: str) -> List[CallSite]:
        return [site for site in self.call_sites if site.callee == callee]

    def sites_in_caller(self, caller: str) -> List[CallSite]:
        return [site for site in self.call_sites if site.caller == caller]

    def is_recursive(self, name: str) -> bool:
        for scc in self.sccs():
            if name in scc:
                return len(scc) > 1 or name in self.callees[name]
        return False

    def sccs(self) -> List[List[str]]:
        """Strongly connected components in reverse topological order
        (callees before callers)."""
        index_counter = [0]
        indices: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            work: List[Tuple[str, int]] = [(node, 0)]
            while work:
                current, child_index = work.pop()
                if child_index == 0:
                    indices[current] = index_counter[0]
                    lowlink[current] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                children = sorted(self.callees[current])
                recursed = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in indices:
                        work.append((current, position + 1))
                        work.append((child, 0))
                        recursed = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], indices[child])
                if recursed:
                    continue
                if lowlink[current] == indices[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])

        for name in sorted(self.module.functions):
            if name not in indices:
                strongconnect(name)
        return components

    def bottom_up_order(self) -> List[str]:
        """Function names, callees before callers."""
        return [name for component in self.sccs() for name in component]
