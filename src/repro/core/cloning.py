"""Procedure cloning for divergent calling contexts (paper §3.7).

"A critical procedure which is not inlined but which is called in two
(or more) significantly different contexts" is duplicated so each copy
can be analysed (and optimised) under its own calling context.  Here
"significantly different" means the call sites' argument range sets
disagree; each group of agreeing call sites gets one clone.

Cloning rewrites the module in place (new functions named
``callee$clone<N>``, call instructions redirected) and returns a report
that can project clone predictions back onto the original branches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.callgraph import CallGraph, CallSite
from repro.core.config import VRPConfig
from repro.core.interprocedural import ModulePrediction
from repro.core.rangeset import BOTTOM, RangeSet
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.values import Temp


def clone_function(function: Function, new_name: str) -> Function:
    """Deep-copy a function under a new name (labels and temps preserved)."""
    clone = Function(new_name, list(function.params))
    clone.arrays = dict(function.arrays)
    clone._label_counter = function._label_counter
    clone._temp_counter = function._temp_counter
    for label, block in function.blocks.items():
        new_block = BasicBlock(label)
        clone.blocks[label] = new_block
        for instr in block.instructions:
            new_block.append(_clone_instruction(instr))
    clone.entry_label = function.entry_label
    return clone


def _clone_instruction(instr: Instruction) -> Instruction:
    if isinstance(instr, BinOp):
        return BinOp(instr.dest, instr.op, instr.lhs, instr.rhs)
    if isinstance(instr, UnOp):
        return UnOp(instr.dest, instr.op, instr.operand)
    if isinstance(instr, Cmp):
        return Cmp(instr.dest, instr.op, instr.lhs, instr.rhs)
    if isinstance(instr, Copy):
        return Copy(instr.dest, instr.src)
    if isinstance(instr, Phi):
        return Phi(instr.dest, list(instr.incomings))
    if isinstance(instr, Pi):
        return Pi(instr.dest, instr.src, instr.op, instr.bound, parent=instr.parent)
    if isinstance(instr, Load):
        return Load(instr.dest, instr.array, instr.index)
    if isinstance(instr, Store):
        return Store(instr.array, instr.index, instr.value)
    if isinstance(instr, Call):
        return Call(instr.dest, instr.callee, list(instr.args))
    if isinstance(instr, Input):
        return Input(instr.dest)
    if isinstance(instr, Jump):
        return Jump(instr.target)
    if isinstance(instr, Branch):
        return Branch(instr.cond, instr.true_target, instr.false_target)
    if isinstance(instr, Return):
        return Return(instr.value)
    raise TypeError(f"cannot clone {instr!r}")


class CloneReport:
    """What was cloned, and how to map predictions back."""

    def __init__(self) -> None:
        #: original function -> list of clone names (including the original)
        self.variants: Dict[str, List[str]] = {}
        #: clone name -> original name
        self.original_of: Dict[str, str] = {}

    def project_probabilities(
        self, prediction: ModulePrediction
    ) -> Dict[Tuple[str, str], float]:
        """Branch probabilities keyed by *original* (function, label).

        Clone predictions are merged weighted by how often each clone's
        branch executes, which is what the shared runtime branch would
        observe.
        """
        weighted: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        for name, function_prediction in prediction.functions.items():
            original = self.original_of.get(name, name)
            for label, probability in function_prediction.branch_probability.items():
                weight = max(function_prediction.block_frequency.get(label, 0.0), 1e-9)
                weighted.setdefault((original, label), []).append(
                    (weight, probability)
                )
        out: Dict[Tuple[str, str], float] = {}
        for key, contributions in weighted.items():
            total = sum(weight for weight, _ in contributions)
            out[key] = sum(weight * p for weight, p in contributions) / total
        return out


def clone_for_contexts(
    module: Module,
    prediction: ModulePrediction,
    config: Optional[VRPConfig] = None,
    max_clones_per_function: int = 4,
    entry: str = "main",
) -> CloneReport:
    """Clone functions whose call sites carry disagreeing argument ranges.

    Uses an existing :class:`ModulePrediction` (for call-site argument
    ranges); the caller re-prepares SSA infos for new clones and re-runs
    the analysis afterwards.  The entry function is never cloned.
    """
    config = config or VRPConfig()
    callgraph = CallGraph(module)
    report = CloneReport()
    for callee in sorted(module.functions):
        if callee == entry:
            continue
        sites = callgraph.sites_of_callee(callee)
        if len(sites) < 2:
            continue
        groups = _group_sites_by_context(sites, prediction, config)
        if len(groups) < 2:
            continue
        groups = groups[:max_clones_per_function]
        names = [callee]
        # First group keeps the original; later groups get clones.
        for group_index, group in enumerate(groups[1:], start=1):
            clone_name = f"{callee}$clone{group_index}"
            module.add_function(clone_function(module.function(callee), clone_name))
            report.original_of[clone_name] = callee
            names.append(clone_name)
            for site in group:
                site.instruction.callee = clone_name
        report.variants[callee] = names
    return report


def analyse_with_cloning(
    module: Module,
    ssa_infos: Dict,
    config: Optional[VRPConfig] = None,
    entry: str = "main",
    max_clones_per_function: int = 4,
):
    """One-call workflow: analyse, clone divergent callees, re-analyse.

    Returns ``(refined ModulePrediction, CloneReport, projected)`` where
    ``projected`` maps *original* (function, branch) pairs to the
    clone-frequency-weighted probabilities — comparable against the
    un-cloned program's runtime behaviour.  The module is mutated (new
    ``callee$cloneN`` functions); ``ssa_infos`` gains entries for them.
    """
    from repro.core.predictor import VRPPredictor
    from repro.ir.ssa import SSAInfo

    predictor = VRPPredictor(config=config)
    first = predictor.predict_module(module, ssa_infos, entry=entry)
    report = clone_for_contexts(
        module,
        first,
        config=config,
        max_clones_per_function=max_clones_per_function,
        entry=entry,
    )
    if not report.variants:
        return first, report, {
            key: value for key, value in first.all_branches().items()
        }
    for name, function in module.functions.items():
        if name not in ssa_infos:
            info = SSAInfo()
            for param in function.params:
                info.param_names[param] = f"{param}.0"
            ssa_infos[name] = info
    refined = predictor.predict_module(module, ssa_infos, entry=entry)
    return refined, report, report.project_probabilities(refined)


def _group_sites_by_context(
    sites: List[CallSite],
    prediction: ModulePrediction,
    config: VRPConfig,
) -> List[List[CallSite]]:
    """Partition call sites into groups with matching argument ranges."""
    signatures: List[Tuple[Tuple[RangeSet, ...], List[CallSite]]] = []
    for site in sites:
        caller_prediction = prediction.functions.get(site.caller)
        if caller_prediction is None:
            signature: Tuple[RangeSet, ...] = ()
        else:
            signature = tuple(
                caller_prediction.values.get(arg.name, BOTTOM)
                if isinstance(arg, Temp)
                else RangeSet.constant(arg.value)
                for arg in site.instruction.args
            )
        for existing_signature, group in signatures:
            if len(existing_signature) == len(signature) and all(
                a.approx_equal(b, config.tolerance)
                for a, b in zip(existing_signature, signature)
            ):
                group.append(site)
                break
        else:
            signatures.append((signature, [site]))
    return [group for _, group in signatures]
