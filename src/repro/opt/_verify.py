"""Post-pass IR verification (``VRPConfig.verify_ir``).

Every IR-mutating optimisation calls :func:`verify_after` before
returning.  With verification off (the production default) the call is
a single boolean test; with it on (the test suite turns it on
process-wide via ``set_default_verify_ir``) corruption is reported at
the pass that introduced it, with each problem prefixed by the pass
name.

When the pass manager (:mod:`repro.passes.pipeline`) drives a pass it
wraps the run in :func:`deferred`: the free functions' internal
``verify_after`` calls then *record* the mutated function instead of
verifying, and the manager flushes the recordings once per pass --
so a pass that rewrites a function several times (or several wrapped
helpers in sequence) costs one verification, not one per rewrite.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional

from repro.core.config import default_verify_ir
from repro.ir.function import Function
from repro.ir.verifier import VerificationError, verify_function

# Deferral state: None when inactive; a {id(function): function} map
# while a pass manager owns verification.  A ContextVar keeps parallel
# evaluation workers and nested pipelines independent.
_DEFERRED: ContextVar[Optional[Dict[int, Function]]] = ContextVar(
    "repro-verify-deferred", default=None
)


def verify_after(
    function: Function, pass_name: str, enabled: Optional[bool] = None
) -> None:
    """Re-verify ``function`` (SSA form) after ``pass_name`` mutated it."""
    pending = _DEFERRED.get()
    if pending is not None:
        # Recorded unconditionally (cheap): the flusher applies the
        # manager's verify_ir setting, which may differ from the
        # process default this call would otherwise consult.
        pending[id(function)] = function
        return
    if not (default_verify_ir() if enabled is None else enabled):
        return
    _verify_now(function, pass_name)


@contextmanager
def deferred() -> Iterator[Dict[int, Function]]:
    """Collect ``verify_after`` calls instead of verifying immediately.

    Yields the recording map; the caller is responsible for passing it
    to :func:`flush_deferred` (typically once per mutating pass).
    """
    token = _DEFERRED.set({})
    try:
        yield _DEFERRED.get()
    finally:
        _DEFERRED.reset(token)


def flush_deferred(
    pending: Dict[int, Function], pass_name: str, enabled: Optional[bool] = None
) -> int:
    """Verify each recorded function once; returns functions verified.

    Must be called outside the :func:`deferred` block or with the
    recordings it yielded -- verification itself never re-enters the
    deferral (it calls the verifier directly).
    """
    if not (default_verify_ir() if enabled is None else enabled):
        pending.clear()
        return 0
    functions = list(pending.values())
    pending.clear()
    for function in functions:
        _verify_now(function, pass_name)
    return len(functions)


def _verify_now(function: Function, pass_name: str) -> None:
    param_names = {f"{param}.0" for param in function.params}
    try:
        verify_function(function, ssa=True, param_names=param_names)
    except VerificationError as exc:
        raise VerificationError(
            function.name,
            [f"after {pass_name}: {problem}" for problem in exc.problems],
        ) from exc
