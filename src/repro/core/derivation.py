"""Loop-carried variable derivation (paper §3.6).

A phi at a loop header whose SSA chain loops back to itself is a
*loop-carried* variable.  Instead of iterating the loop during
propagation, its derivation -- the operations between the phi and the
back-edge value -- is matched against the induction template::

    new_value = old_value +/- {set of possible increments}
    assert(new_value between specific bounds)

and combined with the initial value to give a closed-form range.
Backward tracing follows copies, assertions (recording the constraint
and how much increment is applied *after* it) and inner phis (each
incoming becomes an alternative path).  Mixed-sign increments, cycles
through foreign phis, or non-affine steps fail the match; the engine
then falls back to brute-force propagation with widening.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.bounds import Bound, NEG_INF, POS_INF, bound_max, bound_min
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP
from repro.ir.instructions import BinOp, Copy, Instruction, Phi, Pi
from repro.ir.ssa import SSAEdges
from repro.ir.values import Constant, Temp, Value

MAX_PATHS = 32
MAX_PATH_LENGTH = 256


@dataclass
class DerivationOutcome:
    """Result of a derivation attempt.

    ``detail`` carries the matched template description on success and
    the failure reason otherwise -- the propagation engine forwards it
    to the trace event stream so ``repro trace`` can say *why* a loop
    phi fell back to brute-force iteration.
    """

    status: str  # "derived" | "failed" | "not_ready"
    rangeset: Optional[RangeSet] = None
    detail: str = ""

    @property
    def derived(self) -> bool:
        return self.status == "derived"


@dataclass
class _Path:
    """One way from the header phi around the loop to a back-edge value."""

    total_increment: int = 0
    # (relop, bound, increment applied after the assertion)
    constraints: List[Tuple[str, Bound, int]] = field(default_factory=list)


class _TraceFailure(Exception):
    """Internal: the derivation does not match the induction template."""

    def __init__(self, reason: str = "template mismatch"):
        self.reason = reason
        super().__init__(reason)


def derive_loop_phi(
    phi: Phi,
    back_edge_preds: Set[str],
    edges: SSAEdges,
    value_of: Callable[[str], RangeSet],
    constant_of: Callable[[Value], Optional[int]],
    symbolic: bool = True,
    max_ranges: int = 4,
) -> DerivationOutcome:
    """Attempt to derive the range of a loop-header phi.

    ``value_of`` maps SSA names to their current range sets (for the
    initial value), ``constant_of`` resolves operands that are known
    single constants (so ``i = i + step`` with a constant-valued ``step``
    variable still matches the template).
    """
    target = phi.dest.name
    entry_sets: List[RangeSet] = []
    back_values: List[Value] = []
    for pred_label, value in phi.incomings:
        if pred_label in back_edge_preds:
            back_values.append(value)
        else:
            if isinstance(value, Temp):
                entry_sets.append(value_of(value.name))
            else:
                constant = constant_of(value)
                if constant is None:
                    return DerivationOutcome(
                        "failed", detail="entry value not a known constant"
                    )
                entry_sets.append(RangeSet.constant(constant))
    if not back_values:
        return DerivationOutcome("failed", detail="no back-edge values")
    if any(s.is_top for s in entry_sets) or not entry_sets:
        return DerivationOutcome("not_ready", detail="entry value still unknown (top)")
    if any(s.is_bottom for s in entry_sets):
        return DerivationOutcome("failed", detail="entry value is bottom")

    init = RangeSet.from_ranges(
        [
            r.scaled(1.0 / len(entry_sets))
            for s in entry_sets
            for r in s.ranges
        ],
        max_ranges=max_ranges,
        renormalise=True,
    )
    if not init.is_set:
        return DerivationOutcome("failed", detail="entry merge not a range set")

    paths: List[_Path] = []
    try:
        for value in back_values:
            paths.extend(_trace(value, target, edges, constant_of))
    except _TraceFailure as failure:
        return DerivationOutcome("failed", detail=failure.reason)
    if not paths:
        return DerivationOutcome("failed", detail="no induction paths to the phi")

    rangeset, detail = _closed_form(init, paths, symbolic, max_ranges)
    if rangeset is None:
        return DerivationOutcome("failed", detail=detail)
    return DerivationOutcome("derived", rangeset, detail=detail)


# ---------------------------------------------------------------------------
# backward tracing
# ---------------------------------------------------------------------------


def _trace(
    value: Value,
    target: str,
    edges: SSAEdges,
    constant_of: Callable[[Value], Optional[int]],
) -> List[_Path]:
    """All template paths from ``value`` back to the phi named ``target``."""
    finished: List[_Path] = []
    # Work items: (value, pending_increment, constraints,
    #              visited {name: pending when first seen}, depth).
    stack: List[Tuple[Value, int, Tuple, Tuple, int]] = [(value, 0, (), (), 0)]
    while stack:
        current, pending, constraints, visited, depth = stack.pop()
        if depth > MAX_PATH_LENGTH or len(finished) > MAX_PATHS:
            raise _TraceFailure("path explosion in the loop body")
        if not isinstance(current, Temp):
            raise _TraceFailure("constant fed back: not inductive")
        name = current.name
        if name == target:
            path = _Path(total_increment=pending, constraints=list(constraints))
            finished.append(path)
            continue
        seen = dict(visited)
        if name in seen:
            if seen[name] == pending:
                # A zero-increment cycle (e.g. an inner loop that only
                # re-asserts the variable): this path adds nothing the
                # first visit did not cover; drop it.
                continue
            raise _TraceFailure("the variable moves inside a foreign loop")
        definition = edges.defining_instruction(name)
        if definition is None:
            raise _TraceFailure("parameter or unknown definition: not inductive")
        visited = tuple(sorted((*seen.items(), (name, pending))))
        if isinstance(definition, Copy):
            stack.append((definition.src, pending, constraints, visited, depth + 1))
        elif isinstance(definition, Pi):
            bound = _bound_of(definition.bound, constant_of)
            if bound is not None:
                constraints = constraints + ((definition.op, bound, pending),)
            stack.append((definition.src, pending, constraints, visited, depth + 1))
        elif isinstance(definition, BinOp) and definition.op in ("add", "sub"):
            step, operand = _affine_step(definition, constant_of)
            if operand is None:
                raise _TraceFailure(f"non-affine step ({definition.op})")
            stack.append(
                (operand, pending + step, constraints, visited, depth + 1)
            )
        elif isinstance(definition, Phi):
            for _, incoming in definition.incomings:
                stack.append((incoming, pending, constraints, visited, depth + 1))
        else:
            raise _TraceFailure(
                f"unsupported {type(definition).__name__} in the induction chain"
            )
    return finished


def _affine_step(
    instr: BinOp, constant_of: Callable[[Value], Optional[int]]
) -> Tuple[int, Optional[Value]]:
    """Match ``x + c`` / ``c + x`` / ``x - c``; returns (step, x)."""
    lhs_const = constant_of(instr.lhs)
    rhs_const = constant_of(instr.rhs)
    if instr.op == "add":
        if rhs_const is not None and lhs_const is None:
            return rhs_const, instr.lhs
        if lhs_const is not None and rhs_const is None:
            return lhs_const, instr.rhs
    elif instr.op == "sub":
        if rhs_const is not None and lhs_const is None:
            return -rhs_const, instr.lhs
    return 0, None


def _bound_of(
    value: Value, constant_of: Callable[[Value], Optional[int]]
) -> Optional[Bound]:
    constant = constant_of(value)
    if constant is not None:
        return Bound.number(constant)
    if isinstance(value, Temp):
        return Bound.symbolic(value.name)
    return None


# ---------------------------------------------------------------------------
# closed form
# ---------------------------------------------------------------------------


def _closed_form(
    init: RangeSet,
    paths: List[_Path],
    symbolic: bool,
    max_ranges: int,
) -> Tuple[Optional[RangeSet], str]:
    """The derived range set plus a template/failure description."""
    increments = [p.total_increment for p in paths]
    if all(i == 0 for i in increments):
        return init, "pure copy-back: the phi never moves"
    if any(i > 0 for i in increments) and any(i < 0 for i in increments):
        return None, "mixed-sign increments (non-monotone)"
    increasing = any(i > 0 for i in increments)

    stride = 0
    for i in increments:
        stride = math.gcd(stride, abs(i))
    for r in init.ranges:
        stride = math.gcd(stride, r.stride)
    if stride == 0:
        stride = 1

    template = (
        f"{'increasing' if increasing else 'decreasing'} induction, "
        f"steps {sorted(set(increments))}, stride {stride}"
    )

    init_hull = init.hull()
    if init_hull is None:
        return None, "initial value has no hull"

    if increasing:
        lo = init_hull.lo
        hi = _moving_limit(paths, init_hull.hi, increasing=True, symbolic=symbolic)
        if hi is None:
            return None, "no usable limit in the moving direction"
    else:
        hi = init_hull.hi
        lo = _moving_limit(paths, init_hull.lo, increasing=False, symbolic=symbolic)
        if lo is None:
            return None, "no usable limit in the moving direction"
    order = lo.compare(hi)
    if order is not None and order > 0:
        # The loop bound is below the initial value: body never re-entered.
        return init, template + " (body never re-entered)"
    if not increasing:
        # The progression is anchored at the *initial* (high) end; snap
        # the lower limit up onto its phase (StridedRange normalisation
        # anchors at lo, which is only right for increasing loops).
        width = lo.distance(hi)
        if width is not None and not math.isinf(width) and stride > 1:
            lo = hi.add_const(-int(width // stride) * stride)
    return (
        RangeSet.from_ranges([StridedRange(1.0, lo, hi, stride)], max_ranges=max_ranges),
        template,
    )


def _moving_limit(
    paths: List[_Path],
    init_extreme: Bound,
    increasing: bool,
    symbolic: bool,
) -> Optional[Bound]:
    """The extreme the phi can reach in the moving direction.

    For an increasing loop each path contributes
    ``min(asserted upper limits) + increment applied after the assertion``;
    the overall limit is the max over paths (and at least the initial
    extreme).  Unbounded paths produce an infinite limit -- still a
    usable half-open range.
    """
    overall: Optional[Bound] = None
    for path in paths:
        if increasing and path.total_increment <= 0:
            continue  # this path does not push the extreme outward
        if not increasing and path.total_increment >= 0:
            continue
        limit = _path_limit(path, increasing, symbolic, init_extreme)
        if limit is None:
            limit = Bound.number(POS_INF if increasing else NEG_INF)
        if overall is None:
            overall = limit
        else:
            picked = (
                bound_max(overall, limit) if increasing else bound_min(overall, limit)
            )
            if picked is None:
                # Incomparable limits across paths (different symbols): give
                # up the precision race and go unbounded.
                overall = Bound.number(POS_INF if increasing else NEG_INF)
            else:
                overall = picked
    if overall is None:
        return None
    combined = bound_max(init_extreme, overall) if increasing else bound_min(
        init_extreme, overall
    )
    if combined is None:
        # Symbolic loop limit vs numeric init: assume the loop bound governs.
        return overall
    return combined


def _path_limit(
    path: _Path,
    increasing: bool,
    symbolic: bool,
    init_extreme: Optional[Bound] = None,
) -> Optional[Bound]:
    """Tightest asserted limit along one path, adjusted for increments
    applied after the assertion.

    Numeric limits are preferred over symbolic ones when they cannot be
    compared: the numeric bound is the classic termination test, while
    incomparable symbolic assertions (e.g. an inner loop's exit
    condition) rarely bound the induction usefully.

    Equality-flavoured assertions (``==``/``!=``) only count as limits
    when their bound lies *beyond* the initial value in the moving
    direction -- an ``i == -1`` inside a loop counting up from 0 is a
    dead-path fact, not a termination bound.
    """
    best_numeric: Optional[Bound] = None
    best_symbolic: Optional[Bound] = None
    for op, bound, inc_after in path.constraints:
        if not symbolic and bound.symbol is not None:
            continue
        if op in ("eq", "ne") and init_extreme is not None:
            order = bound.compare(init_extreme)
            if order is not None and (
                (increasing and order <= 0) or (not increasing and order >= 0)
            ):
                continue  # the bound is behind the start: cannot cap growth
        limit = _constraint_limit(op, bound, increasing)
        if limit is None:
            continue
        limit = limit.add_const(inc_after)
        if limit.symbol is None:
            best_numeric = _tighter(best_numeric, limit, increasing)
        else:
            best_symbolic = _tighter(best_symbolic, limit, increasing)
    return best_numeric if best_numeric is not None else best_symbolic


def _tighter(best: Optional[Bound], candidate: Bound, increasing: bool) -> Bound:
    if best is None:
        return candidate
    picked = bound_min(best, candidate) if increasing else bound_max(best, candidate)
    return picked if picked is not None else best


def _constraint_limit(op: str, bound: Bound, increasing: bool) -> Optional[Bound]:
    if increasing:
        if op == "lt":
            return bound.add_const(-1)
        if op == "le" or op == "eq":
            return bound
        if op == "ne":
            # Approaching an inequality from below stops just short of it.
            return bound.add_const(-1)
        return None
    if op == "gt":
        return bound.add_const(1)
    if op == "ge" or op == "eq":
        return bound
    if op == "ne":
        return bound.add_const(1)
    return None
