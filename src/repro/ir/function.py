"""Basic blocks, functions and modules.

A :class:`Function` owns an ordered mapping of labelled
:class:`BasicBlock` objects.  Edges are implied by block terminators;
:mod:`repro.ir.cfg` provides predecessor/successor queries and traversal
orders over them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.instructions import (
    Branch,
    Instruction,
    Jump,
    Phi,
    Pi,
    Return,
)
from repro.ir.values import Temp


class BasicBlock:
    """A labelled straight-line sequence of instructions plus a terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[Instruction] = []

    # -- construction ---------------------------------------------------

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated() and not instr.is_terminator():
            raise ValueError(f"block {self.label} already terminated")
        instr.block = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.block = self
        self.instructions.insert(index, instr)
        return instr

    def prepend_phi(self, phi: Phi) -> Phi:
        """Insert a phi at the top of the block (after existing phis)."""
        index = len(self.phis())
        self.insert(index, phi)
        return phi

    def remove(self, instr: Instruction) -> None:
        self.instructions.remove(instr)
        instr.block = None

    # -- structure queries ----------------------------------------------

    def is_terminated(self) -> bool:
        return bool(self.instructions) and self.instructions[-1].is_terminator()

    @property
    def terminator(self) -> Instruction:
        if not self.is_terminated():
            raise ValueError(f"block {self.label} has no terminator")
        return self.instructions[-1]

    def phis(self) -> List[Phi]:
        out: List[Phi] = []
        for instr in self.instructions:
            if isinstance(instr, Phi):
                out.append(instr)
            else:
                break
        return out

    def pis(self) -> List[Pi]:
        return [instr for instr in self.instructions if isinstance(instr, Pi)]

    def body(self) -> List[Instruction]:
        """Non-phi instructions, including the terminator."""
        return [instr for instr in self.instructions if not isinstance(instr, Phi)]

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, (Jump, Branch, Return)):
            return term.successors()
        raise TypeError(f"unknown terminator {term!r}")

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instrs)"


class Function:
    """A function: parameters, local arrays, and a CFG of basic blocks."""

    def __init__(self, name: str, params: Optional[List[str]] = None):
        self.name = name
        self.params: List[str] = list(params or [])
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry_label: Optional[str] = None
        # Local array declarations: name -> size (None when unsized).
        self.arrays: Dict[str, Optional[int]] = {}
        self._label_counter = 0
        self._temp_counter = 0

    # -- block management -------------------------------------------------

    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        return self.add_block(BasicBlock(label))

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        if self.entry_label is None:
            self.entry_label = block.label
        return block

    def remove_block(self, label: str) -> None:
        if label == self.entry_label:
            raise ValueError("cannot remove the entry block")
        del self.blocks[label]

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[self.entry_label]

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    # -- temp management ---------------------------------------------------

    def new_temp(self, hint: str = "t") -> Temp:
        name = f"{hint}${self._temp_counter}"
        self._temp_counter += 1
        return Temp(name)

    # -- iteration ---------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks.values():
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block.instructions) for block in self.blocks.values())

    def __repr__(self) -> str:
        return f"Function({self.name!r}, params={self.params}, blocks={len(self.blocks)})"


class Module:
    """A whole program: a set of functions, one of which is ``main``."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        return self.functions[name]

    @property
    def main(self) -> Function:
        return self.functions["main"]

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:
        return f"Module({self.name!r}, functions={sorted(self.functions)})"
