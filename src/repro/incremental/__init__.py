"""Incremental analysis: content-addressed per-function summary reuse.

The serve tier caches whole files and the pass manager caches per-CFG
analyses, but editing one function still re-pays the whole module's
interprocedural fixed point.  This package closes that gap:

* :mod:`repro.incremental.fingerprint` -- a canonical IR normalizer and
  SHA-256 fingerprint per function, stable under comments, whitespace
  and local renames, sensitive to any semantic edit;
* :mod:`repro.incremental.store` -- :class:`IncrementalStore`, a memory
  LRU over the server ResultCache's atomic sharded on-disk format,
  mapping component fingerprints to per-function summaries;
* :mod:`repro.incremental.depgraph` -- the summary dependency graph over
  the cached callgraph: an edit invalidates exactly the edited function
  plus its summary-dependents;
* :mod:`repro.incremental.driver` -- the incremental driver: replay
  clean components byte-identically, re-run the fixed point only over
  dirty ones;
* :mod:`repro.incremental.watch` -- the ``repro watch`` polling loop.

See docs/INCREMENTAL.md for the fingerprint contract and the
invalidation rules.
"""

from repro.incremental.depgraph import SummaryDepGraph
from repro.incremental.driver import IncrementalOutcome, analyse_module_incremental
from repro.incremental.fingerprint import (
    canonical_function_text,
    exact_fingerprint,
    function_fingerprint,
    fingerprint_salt,
)
from repro.incremental.store import IncrementalStore

__all__ = [
    "IncrementalOutcome",
    "IncrementalStore",
    "SummaryDepGraph",
    "analyse_module_incremental",
    "canonical_function_text",
    "exact_fingerprint",
    "fingerprint_salt",
    "function_fingerprint",
]
