"""SSA construction and SSA-edge (def-use) queries.

Phi placement uses the Cytron et al. iterated-dominance-frontier method,
restricted to "global" names (variables live across a block boundary --
semi-pruned SSA, which avoids phis for purely block-local temporaries).
Renaming is the standard dominator-tree walk with per-variable stacks.

After construction every :class:`~repro.ir.values.Temp` name has exactly
one definition; :func:`build_ssa_edges` materialises the one-to-many
def-use map (the paper's "SSA edges").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi, Pi
from repro.ir.values import Temp, UNDEF, Value

PARAM_DEF = "<param>"


class SSAInfo:
    """Results of SSA construction for one function."""

    def __init__(self) -> None:
        # Original variable name -> SSA name bound on function entry.
        self.param_names: Dict[str, str] = {}
        # SSA name -> original variable name.
        self.original_name: Dict[str, str] = {}
        # Number of phis inserted.
        self.phi_count = 0


def construct_ssa(function: Function) -> SSAInfo:
    """Rewrite ``function`` into SSA form in place.

    The function must have no unreachable blocks (run
    :func:`repro.ir.cfg.remove_unreachable_blocks` first) and critical
    edges should already be split if assertions were inserted.
    """
    # The dominator tree comes from the pass layer's single construction
    # site (imported lazily: repro.passes sits above repro.ir).
    from repro.passes.cache import dominator_tree

    cfg = CFG(function)
    dom = dominator_tree(cfg)
    info = SSAInfo()

    def_blocks, global_names = _collect_names(function)

    # -- phi insertion ----------------------------------------------------
    phi_vars: Dict[Tuple[str, Phi], str] = {}
    for var in sorted(global_names):
        blocks = def_blocks.get(var, set())
        if not blocks:
            continue
        for label in dom.iterated_frontier(blocks):
            block = function.block(label)
            if len(cfg.predecessors[label]) < 2:
                continue
            phi = Phi(Temp(var), [(pred, Temp(var)) for pred in cfg.predecessors[label]])
            block.prepend_phi(phi)
            phi_vars[(label, phi)] = var
            info.phi_count += 1

    # -- renaming ----------------------------------------------------------
    stacks: Dict[str, List[str]] = {}
    counters: Dict[str, int] = {}

    def fresh(var: str) -> str:
        index = counters.get(var, 0)
        counters[var] = index + 1
        name = f"{var}.{index}"
        stacks.setdefault(var, []).append(name)
        info.original_name[name] = var
        return name

    def top(var: str) -> Optional[str]:
        stack = stacks.get(var)
        return stack[-1] if stack else None

    # Parameters are defined "on entry".
    for param in function.params:
        info.param_names[param] = fresh(param)

    def rename_uses(instr: Instruction) -> None:
        for operand in list(instr.operands()):
            if isinstance(operand, Temp):
                current = top(operand.name)
                instr.replace_operand(operand, Temp(current) if current else UNDEF)

    def rename_block(label: str, pushed: List[str]) -> None:
        block = function.block(label)
        for instr in block.instructions:
            if isinstance(instr, Phi):
                pass  # incoming values renamed from predecessors
            elif isinstance(instr, Pi):
                rename_uses(instr)
                # Record which SSA variable this assertion derives from.
                if isinstance(instr.src, Temp):
                    instr.parent = instr.src.name
            else:
                rename_uses(instr)
            result = instr.result
            if result is not None:
                new_name = fresh(result.name)
                pushed.append(result.name)
                _set_result(instr, Temp(new_name))
        for succ in cfg.successors[label]:
            succ_block = function.block(succ)
            for phi in succ_block.phis():
                var = phi_vars.get((succ, phi))
                if var is None:
                    continue
                current = top(var)
                phi.set_value_for(label, Temp(current) if current else UNDEF)

    entry = function.entry_label
    assert entry is not None
    _walk_iterative(entry, dom, rename_block, stacks)
    return info


def _walk_iterative(entry, dom, rename_block, stacks) -> None:
    """Dominator-tree walk without Python recursion (deep CFGs are fine)."""
    stack: List[Tuple[str, Optional[List[str]]]] = [(entry, None)]
    while stack:
        label, pushed = stack.pop()
        if pushed is not None:
            # Post-visit: pop the names this block defined.
            for var in reversed(pushed):
                stacks[var].pop()
            continue
        pushed_here: List[str] = []
        rename_block(label, pushed_here)
        stack.append((label, pushed_here))
        for child in reversed(dom.children[label]):
            stack.append((child, None))


def _collect_names(function: Function) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """Definition blocks per variable, plus the set of "global" names.

    A name is global when some block uses it before any local definition
    (i.e. its value can flow across a block boundary).  Parameters are
    always global.
    """
    def_blocks: Dict[str, Set[str]] = {}
    global_names: Set[str] = set(function.params)
    for param in function.params:
        entry = function.entry_label
        assert entry is not None
        def_blocks.setdefault(param, set()).add(entry)
    for label, block in function.blocks.items():
        defined_here: Set[str] = set()
        for instr in block.instructions:
            if isinstance(instr, Phi):
                continue
            for operand in instr.operands():
                if isinstance(operand, Temp) and operand.name not in defined_here:
                    global_names.add(operand.name)
            result = instr.result
            if result is not None:
                defined_here.add(result.name)
                def_blocks.setdefault(result.name, set()).add(label)
    return def_blocks, global_names


def _set_result(instr: Instruction, new_dest: Temp) -> None:
    if not hasattr(instr, "dest"):
        raise TypeError(f"instruction {instr!r} has no destination")
    instr.dest = new_dest


class SSAEdges:
    """Def-use information over an SSA-form function.

    ``def_of[name]`` is the defining instruction (or the string
    ``PARAM_DEF`` for parameters); ``uses_of[name]`` lists every
    instruction reading ``name`` -- these are the paper's SSA edges.
    """

    def __init__(self, function: Function, param_names: Optional[Set[str]] = None):
        self.function = function
        self.def_of: Dict[str, object] = {}
        self.uses_of: Dict[str, List[Instruction]] = {}
        params = param_names if param_names is not None else set()
        for name in params:
            self.def_of[name] = PARAM_DEF
            self.uses_of.setdefault(name, [])
        for block in function.blocks.values():
            for instr in block.instructions:
                result = instr.result
                if result is not None:
                    if result.name in self.def_of:
                        raise ValueError(
                            f"not in SSA form: {result.name} defined twice "
                            f"(second at {instr!r})"
                        )
                    self.def_of[result.name] = instr
                    self.uses_of.setdefault(result.name, [])
        for block in function.blocks.values():
            for instr in block.instructions:
                for operand in instr.operands():
                    if isinstance(operand, Temp):
                        self.uses_of.setdefault(operand.name, []).append(instr)

    def defining_instruction(self, name: str) -> Optional[Instruction]:
        """The instruction defining ``name``, or None for parameters/unknown."""
        definition = self.def_of.get(name)
        return definition if isinstance(definition, Instruction) else None


def build_ssa_edges(function: Function, info: Optional[SSAInfo] = None) -> SSAEdges:
    params = set(info.param_names.values()) if info is not None else set()
    return SSAEdges(function, params)
