"""Observability and diagnostics overhead guard.

Three guarantees protect the Figure 5/6 measurements from the tracing
and diagnostics layers:

1. **Bit-for-bit work counts.**  With tracing disabled (the default),
   the engine must do exactly the work it did before instrumentation --
   every count in ``seed_work_counts.json`` (captured on the
   pre-instrumentation tree) must match exactly.
2. **<5% wall time.**  A disabled hook is a single ``is not None``
   attribute test.  We bound total overhead analytically: (number of
   hook executions) x (measured cost of one check) must stay below 5%
   of the measured suite wall time.  The hook count is taken from a
   traced run's event counts -- every emitted event corresponds to one
   guarded site execution -- padded 3x for guard sites that check but
   do not emit.  The analytic bound avoids the flakiness of A/B
   wall-clock comparison under CI noise.
3. **Checker neutrality.**  The diagnostics engine and the lattice
   sanitizer are pure consumers: with ``sanitize`` off (the default)
   the engine's work counts stay byte-identical to the seed even with
   :mod:`repro.diagnostics` imported, and running the checker afterward
   changes nothing about the propagation that already happened.
4. **Telemetry neutrality (v6).**  The trace-context, structured
   logging, Prometheus, and chrome-trace layers are pure consumers
   too: importing all of them changes no work counts, and the only
   cost they add to an untraced engine run -- one ContextVar read per
   span open -- fits inside the same 5% analytic budget.
"""

import json
import pathlib
import time
import timeit

from benchmarks.conftest import emit
from repro.evalharness.counting import measure_scaling, measure_workloads
from repro.lang import compile_source
from repro.ir import prepare_module
from repro.core import VRPPredictor
from repro.observability import Tracer, use
from repro.workloads import all_workloads

SEED_COUNTS = pathlib.Path(__file__).parent / "seed_work_counts.json"

SCALING_UNITS = [2, 4, 8, 16, 32, 64]

# Guard sites that test the tracer but emit nothing (e.g. `_update` on
# an unchanged value) are invisible to event counts; pad generously.
HOOK_PADDING = 3.0

OVERHEAD_BUDGET = 0.05


def test_work_counts_byte_identical_to_seed(results_dir):
    """Disabled tracing must not change a single unit of engine work."""
    seed = json.loads(SEED_COUNTS.read_text())
    current = {
        "workloads": [list(row) for row in measure_workloads()],
        "scaling": [list(row) for row in measure_scaling(SCALING_UNITS)],
    }
    assert current["workloads"] == seed["workloads"]
    assert current["scaling"] == seed["scaling"]


def test_work_counts_unchanged_with_checker_off(results_dir):
    """Diagnostics off (``sanitize=False``) must be invisible to the engine.

    The import of :mod:`repro.diagnostics` and the explicit
    ``sanitize=False`` config both route through the new hook sites;
    neither may change a single unit of work relative to the seed.
    """
    import repro.diagnostics  # noqa: F401 -- the import itself is the test

    from repro.core.config import VRPConfig

    config = VRPConfig(sanitize=False)
    seed = json.loads(SEED_COUNTS.read_text())
    current = {
        "workloads": [list(row) for row in measure_workloads(config)],
        "scaling": [list(row) for row in measure_scaling(SCALING_UNITS, config)],
    }
    assert current["workloads"] == seed["workloads"]
    assert current["scaling"] == seed["scaling"]


def test_work_counts_unchanged_with_telemetry_imported(results_dir):
    """Importing every v6 telemetry module must be invisible to the engine.

    None of these modules are imported by the analysis engine; this
    pins that down by loading all of them and re-measuring.  Off-path
    means byte-identical, not merely "close".
    """
    import repro.observability.chrometrace  # noqa: F401
    import repro.observability.context  # noqa: F401
    import repro.observability.logging  # noqa: F401
    import repro.observability.profiler  # noqa: F401
    import repro.observability.prometheus  # noqa: F401

    seed = json.loads(SEED_COUNTS.read_text())
    current = {
        "workloads": [list(row) for row in measure_workloads()],
        "scaling": [list(row) for row in measure_scaling(SCALING_UNITS)],
    }
    assert current["workloads"] == seed["workloads"]
    assert current["scaling"] == seed["scaling"]


def test_trace_context_read_cost_under_budget(results_dir):
    """The v6 trace-context read is the only new per-span engine cost.

    An untraced span open does one ``ContextVar.get`` (returning None)
    to decide whether to attach a trace id.  That read happens at most
    once per span -- orders of magnitude rarer than event hooks -- but
    bound it the same analytic way: span count x measured per-read
    cost must stay inside the 5% budget.
    """
    from repro.observability import context as tracecontext

    started = time.perf_counter()
    measure_workloads()
    wall_seconds = time.perf_counter() - started

    trials = 1_000_000
    per_read = (
        timeit.timeit(
            "current_trace_id()",
            globals={"current_trace_id": tracecontext.current_trace_id},
            number=trials,
        )
        / trials
    )

    # Span opens are bounded by hook executions (every span also emits
    # begin/end bookkeeping), so the padded hook count over-counts them.
    padded_spans = int(_count_hook_executions() * HOOK_PADDING)
    overhead_fraction = (padded_spans * per_read) / wall_seconds

    emit(
        results_dir,
        "obs_context_overhead.txt",
        "\n".join(
            [
                "Trace-context read-cost guard",
                "",
                f"suite wall time:         {wall_seconds * 1e3:10.2f} ms",
                f"padded span opens:       {padded_spans:10d}",
                f"cost per context read:   {per_read * 1e9:10.2f} ns",
                f"analytic overhead:       {overhead_fraction:.3%} of wall time",
                f"budget:                  {OVERHEAD_BUDGET:.0%}",
            ]
        ),
    )
    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"trace-context read overhead {overhead_fraction:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )


def _count_hook_executions() -> int:
    """Total events over a fully traced suite run (= hook executions)."""
    total = 0
    for workload in all_workloads():
        module = compile_source(workload.source, module_name=workload.name)
        ssa_infos = prepare_module(module)
        tracer = Tracer(record_events=False)  # counts only: cheap and exact
        with use(tracer):
            VRPPredictor().predict_module(module, ssa_infos)
        total += sum(tracer.event_counts.values())
    return total


def test_disabled_tracing_overhead_under_budget(results_dir):
    # Wall time of the untraced suite run (the protected measurement).
    started = time.perf_counter()
    measure_workloads()
    wall_seconds = time.perf_counter() - started

    # Cost of one disabled hook: an attribute load plus an identity test.
    class Holder:
        __slots__ = ("_trace",)

        def __init__(self):
            self._trace = None

    holder = Holder()
    trials = 1_000_000
    per_check = (
        timeit.timeit("holder._trace is not None", globals={"holder": holder}, number=trials)
        / trials
    )

    hooks = _count_hook_executions()
    padded_hooks = int(hooks * HOOK_PADDING)
    overhead_seconds = padded_hooks * per_check
    overhead_fraction = overhead_seconds / wall_seconds

    lines = [
        "Observability overhead guard",
        "",
        f"suite wall time (untraced):   {wall_seconds * 1e3:10.2f} ms",
        f"hook executions (traced run): {hooks:10d}",
        f"padded hook count (x{HOOK_PADDING:.0f}):      {padded_hooks:10d}",
        f"cost per disabled check:      {per_check * 1e9:10.2f} ns",
        f"analytic overhead:            {overhead_seconds * 1e3:10.2f} ms"
        f"  ({overhead_fraction:.3%} of wall time)",
        f"budget:                       {OVERHEAD_BUDGET:.0%}",
    ]
    emit(results_dir, "obs_overhead.txt", "\n".join(lines))

    report = {
        "benchmark": "obs_overhead",
        "wall_seconds": wall_seconds,
        "hook_executions": hooks,
        "padded_hook_executions": padded_hooks,
        "seconds_per_check": per_check,
        "overhead_seconds": overhead_seconds,
        "overhead_fraction": overhead_fraction,
        "budget": OVERHEAD_BUDGET,
    }
    (results_dir / "BENCH_obs_overhead.json").write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n"
    )

    assert overhead_fraction < OVERHEAD_BUDGET, (
        f"instrumentation overhead {overhead_fraction:.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )
