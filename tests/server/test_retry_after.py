"""The computed ``Retry-After`` estimate (replaces the hardcoded 1s)."""

import threading

import pytest

from repro.server import ReproServer, ServeClient
from repro.server.stats import (
    RETRY_AFTER_CEILING_S,
    RETRY_AFTER_FLOOR_S,
    ServerStats,
    compute_retry_after,
)


class TestComputeRetryAfter:
    def test_backlog_over_rate_rounded_up(self):
        # 10 queued, draining 3/s -> ceil(10/3) = 4 seconds.
        assert compute_retry_after(10, 3.0) == 4

    def test_exact_division(self):
        assert compute_retry_after(12, 4.0) == 3

    def test_floor_applies_to_fast_drains(self):
        # 2 queued at 50/s drains in 40ms; quoting 0 would invite an
        # immediate hammer-retry, so the floor holds.
        assert compute_retry_after(2, 50.0) == RETRY_AFTER_FLOOR_S

    def test_ceiling_applies_to_slow_drains(self):
        assert compute_retry_after(10_000, 1.0) == RETRY_AFTER_CEILING_S

    def test_empty_queue_is_floor(self):
        assert compute_retry_after(0, 5.0) == RETRY_AFTER_FLOOR_S

    def test_no_observed_rate_is_floor(self):
        # A cold daemon rejecting its first burst has no rate to
        # extrapolate from; the floor is the honest answer.
        assert compute_retry_after(8, 0.0) == RETRY_AFTER_FLOOR_S

    def test_custom_clamps(self):
        assert compute_retry_after(100, 1.0, floor=2, ceiling=10) == 10
        assert compute_retry_after(1, 100.0, floor=2, ceiling=10) == 2

    def test_invalid_clamps_raise(self):
        with pytest.raises(ValueError):
            compute_retry_after(1, 1.0, floor=-1)
        with pytest.raises(ValueError):
            compute_retry_after(1, 1.0, floor=5, ceiling=2)


class TestDrainRate:
    def test_zero_before_first_analysis(self):
        stats = ServerStats()
        assert stats.drain_rate(workers=4) == 0.0

    def test_healthz_does_not_inflate_the_rate(self):
        # /healthz answers in microseconds; counting it would claim an
        # absurd drain rate for *analysis* requests.
        stats = ServerStats()
        for _ in range(100):
            stats.record_request("/healthz", 200, 0.01)
        assert stats.drain_rate(workers=4) == 0.0

    def test_rate_is_mean_latency_scaled_by_workers(self):
        stats = ServerStats()
        for _ in range(10):
            stats.record_request("/v1/predict", 200, 100.0)  # 100ms each
        # One worker finishes 10/s at 100ms; four workers 40/s.
        assert stats.drain_rate(workers=1) == pytest.approx(10.0)
        assert stats.drain_rate(workers=4) == pytest.approx(40.0)

    def test_retry_after_uses_the_observed_rate(self):
        stats = ServerStats()
        for _ in range(10):
            stats.record_request("/v1/predict", 200, 1000.0)  # 1/s/worker
        assert stats.retry_after(queue_depth=6, workers=2) == 3
        assert stats.retry_after(queue_depth=0, workers=2) == RETRY_AFTER_FLOOR_S


class TestRetryAfterOnTheWire:
    def test_cold_daemon_quotes_the_floor(self):
        # No /v1 completions yet -> no rate -> floor; this is the exact
        # behaviour the old hardcoded header happened to give, so
        # existing clients see no change on a cold daemon.
        server = ReproServer(port=0, workers=1, queue_size=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServeClient(port=server.port)
            client.wait_ready()
            assert (
                server.stats.retry_after(server.pool.depth(), server.pool.workers)
                == RETRY_AFTER_FLOOR_S
            )
        finally:
            server.drain(timeout=10)

    def test_warm_daemon_quotes_backlog_over_rate(self):
        server = ReproServer(port=0, workers=2, queue_size=64)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Seed the latency history directly: 500ms mean at 2
            # workers is 4 req/s; a 12-deep queue quotes ceil(12/4)=3.
            for _ in range(4):
                server.stats.record_request("/v1/predict", 200, 500.0)
            assert server.stats.retry_after(12, server.pool.workers) == 3
        finally:
            server.drain(timeout=10)
