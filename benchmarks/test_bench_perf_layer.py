"""Perf-layer benchmark: speed *and* behaviour-neutrality in one run.

Times whole-suite analysis with the interning/memoization layer on and
off, and asserts the layer's contract:

* predictions are identical with the layer on and off;
* Figure-5/6 work counts with the layer **on** stay byte-identical to
  the pre-layer seed snapshot (``benchmarks/seed_work_counts.json``) --
  memo hits replay their recorded sub-operation tally;
* the 27-workload suite analyses at least 1.5x faster with the layer on.

Emits ``BENCH_perf_layer.json`` with the wall times, aggregated cache
hit rates, and worklist-pressure counters for both configurations.
"""

import json
import pathlib
import time

from benchmarks.conftest import emit
from repro.core import VRPConfig, VRPPredictor, perf
from repro.evalharness import measure_scaling, measure_workloads, synthetic_program
from repro.ir import prepare_module
from repro.lang import compile_source
from repro.workloads import suite

SEED_PATH = pathlib.Path(__file__).parent / "seed_work_counts.json"

TIMING_ROUNDS = 5
SYNTHETIC_UNITS = [4, 8, 16, 32, 64]
REQUIRED_SPEEDUP = 1.5

WORKLIST_COUNTERS = (
    "flow_pushes",
    "ssa_pushes",
    "flow_dedup_hits",
    "ssa_dedup_hits",
)


def _prepare_suite():
    prepared = []
    for workload in suite("int") + suite("fp"):
        module = compile_source(workload.source, module_name=workload.name)
        prepared.append((workload.name, module, prepare_module(module)))
    return prepared


def _prepare_synthetic():
    prepared = []
    for units in SYNTHETIC_UNITS:
        module = compile_source(synthetic_program(units))
        prepared.append((f"units{units}", module, prepare_module(module)))
    return prepared


def _analyse(prepared, config, collect_caches=False):
    """One full pass; returns (predictions, worklist totals, cache stats)."""
    predictor = VRPPredictor(config=config)
    predictions = {}
    worklist = {name: 0 for name in WORKLIST_COUNTERS}
    caches: dict = {}
    for name, module, infos in prepared:
        prediction = predictor.predict_module(module, infos)
        predictions[name] = prediction.all_branches()
        counter_dict = prediction.counters.as_dict()
        for counter in WORKLIST_COUNTERS:
            worklist[counter] += counter_dict[counter]
        if collect_caches:
            # Stats reset per predict_module: aggregate across workloads.
            for cache_name, stats in perf.snapshot().items():
                bucket = caches.setdefault(
                    cache_name, {"hits": 0, "misses": 0, "evictions": 0}
                )
                for key in bucket:
                    bucket[key] += stats[key]
    for bucket in caches.values():
        probes = bucket["hits"] + bucket["misses"]
        bucket["hit_rate"] = round(bucket["hits"] / probes, 4) if probes else 0.0
    return predictions, worklist, caches


def _time_rounds(prepared, config, rounds=TIMING_ROUNDS):
    """Per-round wall times; round 1 starts from empty perf caches."""
    perf.reset()
    predictor = VRPPredictor(config=config)
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _, module, infos in prepared:
            predictor.predict_module(module, infos)
        times.append(time.perf_counter() - start)
    return times


def test_perf_layer_speedup_and_neutrality(results_dir):
    config_on = VRPConfig(perf=True)
    config_off = VRPConfig(perf=False)
    suite_programs = _prepare_suite()
    synthetic_programs = _prepare_synthetic()

    # -- neutrality: identical predictions, byte-identical work counts --
    predictions_on, worklist_on, caches = _analyse(
        suite_programs, config_on, collect_caches=True
    )
    predictions_off, worklist_off, _ = _analyse(suite_programs, config_off)
    assert predictions_on == predictions_off
    assert worklist_on == worklist_off

    seed = json.loads(SEED_PATH.read_text())
    measured = {
        "scaling": measure_scaling(config=config_on),
        "workloads": measure_workloads(config=config_on),
    }
    work_counts_match = json.loads(json.dumps(measured)) == seed
    assert work_counts_match, "perf layer changed Figure-5/6 work counts"

    # -- wall time -------------------------------------------------------
    suite_off_rounds = _time_rounds(suite_programs, config_off)
    suite_on_rounds = _time_rounds(suite_programs, config_on)
    suite_off = min(suite_off_rounds)
    suite_on = min(suite_on_rounds)
    suite_speedup = suite_off / suite_on
    synthetic_off = min(_time_rounds(synthetic_programs, config_off))
    synthetic_on = min(_time_rounds(synthetic_programs, config_on))
    synthetic_speedup = synthetic_off / synthetic_on

    _, synthetic_worklist, _ = _analyse(synthetic_programs, config_on)

    report = {
        "suite": {
            "workloads": len(suite_programs),
            "seconds_off": round(suite_off, 4),
            "seconds_on": round(suite_on, 4),
            "seconds_on_cold": round(suite_on_rounds[0], 4),
            "speedup": round(suite_speedup, 3),
            "worklist": worklist_on,
            "cache_stats": caches,
        },
        "synthetic": {
            "units": SYNTHETIC_UNITS,
            "seconds_off": round(synthetic_off, 4),
            "seconds_on": round(synthetic_on, 4),
            "speedup": round(synthetic_speedup, 3),
            "worklist": synthetic_worklist,
        },
        "neutrality": {
            "predictions_identical": True,
            "work_counts_match_seed": work_counts_match,
        },
    }
    (results_dir / "BENCH_perf_layer.json").write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n"
    )

    lines = ["Perf layer: interning + memoization", ""]
    lines.append(f"{'collection':<12s} {'off (s)':>9s} {'on (s)':>9s} {'speedup':>9s}")
    lines.append(
        f"{'suite':<12s} {suite_off:>9.3f} {suite_on:>9.3f} {suite_speedup:>8.2f}x"
    )
    lines.append(
        f"{'synthetic':<12s} {synthetic_off:>9.3f} {synthetic_on:>9.3f} "
        f"{synthetic_speedup:>8.2f}x"
    )
    lines.append("")
    lines.append(f"{'cache':<18s} {'hits':>9s} {'misses':>9s} {'hit rate':>9s}")
    for name in sorted(caches):
        bucket = caches[name]
        if bucket["hits"] + bucket["misses"] == 0:
            continue
        lines.append(
            f"{name:<18s} {bucket['hits']:>9d} {bucket['misses']:>9d} "
            f"{bucket['hit_rate']:>9.2f}"
        )
    emit(results_dir, "perf_layer.txt", "\n".join(lines))

    assert suite_speedup >= REQUIRED_SPEEDUP, (
        f"perf layer speedup {suite_speedup:.2f}x below the "
        f"{REQUIRED_SPEEDUP}x bar (off {suite_off:.3f}s, on {suite_on:.3f}s)"
    )
