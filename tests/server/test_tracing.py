"""End-to-end tracing through the daemon: headers, spans, Prometheus.

Covers the v6 observability surface at the HTTP boundary: trace-id
adoption and echo, per-request wire spans in traced responses,
``degraded_reason`` provenance, and the Prometheus flavour of
``/metricsz`` parsing cleanly against the strict parser.
"""

import http.client
import threading
import time

import pytest

from repro.observability import context as tracecontext
from repro.observability.chrometrace import events_from_wire_spans
from repro.observability.prometheus import parse_prometheus_text
from repro.server import ReproServer, ServeClient

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i > 90) { total = total + i; }
  }
  return total;
}
"""


def start_server(**kwargs):
    server = ReproServer(port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.port)
    client.wait_ready()
    return server, client


@pytest.fixture
def served():
    server, client = start_server(workers=2, queue_size=8)
    yield server, client
    server.drain(timeout=10)


def get_with_header(port, path, headers):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", path, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestTraceHeader:
    def test_valid_header_is_adopted_and_echoed(self, served):
        server, _ = served
        trace_id = "ab" * 16
        status, headers, _ = get_with_header(
            server.port, "/healthz", {tracecontext.TRACE_HEADER: trace_id}
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == trace_id

    def test_invalid_header_gets_a_fresh_id(self, served):
        server, _ = served
        status, headers, _ = get_with_header(
            server.port, "/healthz", {tracecontext.TRACE_HEADER: "not-hex"}
        )
        assert status == 200
        minted = headers["X-Repro-Trace-Id"]
        assert minted != "not-hex"
        assert tracecontext.valid_trace_id(minted)

    def test_client_attaches_ambient_trace_id(self, served):
        server, client = served
        context = tracecontext.mint()
        with tracecontext.use(context):
            response = client.analyze(
                "predict", PROGRAM, options={"trace": True}
            )
        assert response["trace_id"] == context.trace_id


class TestTracedResponses:
    def test_trace_option_returns_wire_spans(self, served):
        _, client = served
        response = client.analyze("predict", PROGRAM, options={"trace": True})
        assert response["status"] == "ok"
        spans = response["trace"]
        names = {span["name"] for span in spans}
        # The server-side root plus the engine's phase spans.
        assert "request" in names
        assert "predict" in names
        assert len(spans) >= 3
        # Wire spans re-base into valid chrome events on the client clock.
        events = events_from_wire_spans(spans, 1000.0)
        assert len(events) == len(spans)
        assert all(event["ts"] >= 1000.0 for event in events)

    def test_untraced_response_has_no_trace_key(self, served):
        _, client = served
        response = client.analyze("predict", PROGRAM)
        assert "trace" not in response

    def test_trace_is_excluded_from_the_cache_key(self, served):
        _, client = served
        first = client.analyze("predict", PROGRAM, options={"trace": True})
        second = client.analyze("predict", PROGRAM)
        assert first["key"] == second["key"]
        assert second["cached"] == "memory"

    def test_degraded_response_carries_the_reason(self):
        server, client = start_server(workers=2, queue_size=8, timeout_s=0.0)
        try:
            response = client.analyze("predict", PROGRAM)
            assert response["degraded"] is True
            assert "deadline" in response["degraded_reason"]
        finally:
            server.drain(timeout=10)


class TestPrometheusEndpoint:
    def test_scrape_parses_cleanly(self, served):
        _, client = served
        client.analyze("predict", PROGRAM)
        client.analyze("predict", PROGRAM)  # memory hit
        # Stats are recorded after the response body goes out, so a
        # scrape racing its own request may lag one update; retry.
        deadline = time.monotonic() + 5.0
        while True:
            families = parse_prometheus_text(client.metricsz_prometheus())
            tiers = {
                labels["tier"]: value
                for _, labels, value in families["repro_results_total"]["samples"]
            }
            if tiers["memory"] >= 1 or time.monotonic() > deadline:
                break
            time.sleep(0.02)
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_request_latency_seconds"]["type"] == "histogram"
        assert tiers["fresh"] >= 1
        assert tiers["memory"] >= 1

    def test_accept_header_negotiates_prometheus(self, served):
        server, _ = served
        status, headers, body = get_with_header(
            server.port, "/metricsz", {"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parse_prometheus_text(body.decode("utf-8"))

    def test_json_flavour_is_preserved(self, served):
        _, client = served
        document = client.metricsz()
        assert document["schema_version"] == 8
        assert "tracer" in document["server"]
