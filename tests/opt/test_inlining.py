"""Inlining transformation tests."""

import pytest

from repro.core import VRPPredictor
from repro.ir.instructions import Call
from repro.ir.verifier import verify_function
from repro.opt.inlining import InlineError, inline_call, inline_hot_calls
from repro.profiling import run_module

from tests.helpers import compile_and_prepare

CALLER_CALLEE = """
func square(v) {
  return v * v;
}

func clamp(v, limit) {
  if (v > limit) { return limit; }
  return v;
}

func main(n) {
  var total = 0;
  for (i = 0; i < 10; i = i + 1) {
    total = total + clamp(square(i), 50);
  }
  return total;
}
"""


def find_call(function, callee):
    for block in function.blocks.values():
        for instr in block.instructions:
            if isinstance(instr, Call) and instr.callee == callee:
                return instr
    return None


def expected_result():
    return sum(min(i * i, 50) for i in range(10))


class TestInlineCall:
    def test_single_return_callee(self):
        module, _ = compile_and_prepare(CALLER_CALLEE)
        main = module.function("main")
        call = find_call(main, "square")
        inline_call(main, call, module.function("square"), tag="t0")
        verify_function(main, ssa=True, param_names={"n.0"})
        assert find_call(main, "square") is None
        assert run_module(module, args=[0]).return_value == expected_result()

    def test_multi_return_callee_gets_phi(self):
        module, _ = compile_and_prepare(CALLER_CALLEE)
        main = module.function("main")
        call = find_call(main, "clamp")
        inline_call(main, call, module.function("clamp"), tag="t1")
        verify_function(main, ssa=True, param_names={"n.0"})
        assert run_module(module, args=[0]).return_value == expected_result()

    def test_both_inlined_execution_preserved(self):
        module, _ = compile_and_prepare(CALLER_CALLEE)
        main = module.function("main")
        inline_call(main, find_call(main, "square"), module.function("square"), "a")
        inline_call(main, find_call(main, "clamp"), module.function("clamp"), "b")
        verify_function(main, ssa=True, param_names={"n.0"})
        assert find_call(main, "square") is None
        assert find_call(main, "clamp") is None
        assert run_module(module, args=[0]).return_value == expected_result()

    def test_inlined_function_analysable(self):
        module, infos = compile_and_prepare(CALLER_CALLEE)
        main = module.function("main")
        inline_call(main, find_call(main, "square"), module.function("square"), "a")
        prediction = VRPPredictor().predict_module(module, infos)
        assert prediction.functions["main"].branch_probability

    def test_self_inline_rejected(self):
        source = """
        func main(n) { if (n > 0) { return main(n - 1); } return 0; }
        """
        module, _ = compile_and_prepare(source)
        main = module.function("main")
        call = find_call(main, "main")
        with pytest.raises(InlineError):
            inline_call(main, call, main, tag="x")

    def test_arrays_renamed(self):
        source = """
        func fill() {
          array buf[8];
          for (i = 0; i < 8; i = i + 1) { buf[i] = i; }
          return buf[7];
        }
        func main(n) {
          array buf[4];
          buf[0] = 100;
          return fill() + buf[0];
        }
        """
        module, _ = compile_and_prepare(source)
        main = module.function("main")
        inline_call(main, find_call(main, "fill"), module.function("fill"), "f")
        verify_function(main, ssa=True, param_names={"n.0"})
        assert any(name.startswith("f$") for name in main.arrays)
        assert run_module(module, args=[0]).return_value == 107

    def test_successor_phis_retargeted(self):
        # The call sits before a join whose phi referenced the call block.
        source = """
        func one() { return 1; }
        func main(n) {
          var x = 0;
          if (n > 0) {
            x = one();
          }
          return x;
        }
        """
        module, _ = compile_and_prepare(source)
        main = module.function("main")
        inline_call(main, find_call(main, "one"), module.function("one"), "o")
        verify_function(main, ssa=True, param_names={"n.0"})
        assert run_module(module, args=[5]).return_value == 1
        assert run_module(module, args=[-5]).return_value == 0


class TestInlinePolicy:
    def test_hot_small_calls_inlined(self):
        module, infos = compile_and_prepare(CALLER_CALLEE)
        prediction = VRPPredictor().predict_module(module, infos)
        decisions = inline_hot_calls(module, prediction)
        assert decisions  # in-loop calls are hot
        verify_function(module.function("main"), ssa=True, param_names={"n.0"})
        assert run_module(module, args=[0]).return_value == expected_result()

    def test_recursive_callee_skipped(self):
        source = """
        func fact(k) { if (k <= 1) { return 1; } return k * fact(k - 1); }
        func main(n) { return fact(6); }
        """
        module, infos = compile_and_prepare(source)
        prediction = VRPPredictor().predict_module(module, infos)
        decisions = inline_hot_calls(module, prediction)
        assert all(d.callee != "fact" for d in decisions)

    def test_size_threshold_respected(self):
        module, infos = compile_and_prepare(CALLER_CALLEE)
        prediction = VRPPredictor().predict_module(module, infos)
        decisions = inline_hot_calls(module, prediction, max_callee_size=1)
        assert decisions == []
