"""High-level branch prediction API.

:class:`VRPPredictor` is the library's front door: given a prepared
module it runs (inter- or intra-procedural) value range propagation with
a heuristic fallback and yields a probability for every conditional
branch -- the paper's deliverable.  It conforms to the common predictor
interface so the evaluation harness can score it side by side with the
heuristic and profile baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import perf
from repro.core.config import VRPConfig
from repro.core.interprocedural import ModulePrediction, analyse_module
from repro.core.propagation import FunctionPrediction, analyse_function
from repro.core.rangeset import RangeSet
from repro.heuristics import BallLarusPredictor, Predictor
from repro.ir.function import Function, Module
from repro.ir.ssa import SSAInfo


class VRPPredictor(Predictor):
    """Value-range-propagation branch predictor.

    Parameters
    ----------
    config:
        Engine knobs; defaults to the paper's settings (4 ranges,
        symbolic tracking, loop derivation).
    fallback:
        Heuristic predictor used for branches whose controlling range is
        ⊥; defaults to Ball–Larus with Dempster–Shafer combination,
        exactly as the paper prescribes.
    interprocedural:
        Propagate jump/return functions across calls (paper §3.7).
    incremental_store:
        A :class:`repro.incremental.IncrementalStore`.  When provided
        and ``config.incremental`` is set, interprocedural module
        predictions replay unchanged callgraph components from the
        store instead of re-running their fixed points; rendered
        results are byte-identical either way, and
        :attr:`last_incremental` describes what the latest run reused.
    """

    name = "vrp"

    def __init__(
        self,
        config: Optional[VRPConfig] = None,
        fallback: Optional[Predictor] = None,
        interprocedural: bool = True,
        incremental_store=None,
    ):
        self.config = config or VRPConfig()
        self.fallback = fallback if fallback is not None else BallLarusPredictor()
        self.interprocedural = interprocedural
        self.incremental_store = incremental_store
        #: :class:`repro.incremental.IncrementalOutcome` of the last
        #: predict_module call, or None when the cold path ran.
        self.last_incremental = None

    # -- module-level API ---------------------------------------------------------

    def predict_module(
        self,
        module: Module,
        ssa_infos: Dict[str, SSAInfo],
        entry: str = "main",
        entry_param_ranges: Optional[Dict[str, RangeSet]] = None,
        analysis_cache=None,
    ) -> ModulePrediction:
        """Analyse a whole prepared module.

        ``analysis_cache`` (a :class:`repro.passes.AnalysisCache`) lets
        the heuristic fallback consume the cache's structural analyses
        instead of privately rebuilding them; predictions are identical
        either way.
        """
        from repro.observability import tracer as tracing

        self._reset_perf()
        tracer = tracing.active()
        if tracer.enabled:
            with tracer.span("predict"):
                return self._predict_module(
                    module, ssa_infos, entry, entry_param_ranges, analysis_cache
                )
        return self._predict_module(
            module, ssa_infos, entry, entry_param_ranges, analysis_cache
        )

    def _predict_module(
        self,
        module: Module,
        ssa_infos: Dict[str, SSAInfo],
        entry: str,
        entry_param_ranges: Optional[Dict[str, RangeSet]],
        analysis_cache=None,
    ) -> ModulePrediction:
        heuristic = (
            self.fallback.as_fallback(analyses=analysis_cache)
            if self.fallback
            else None
        )
        self.last_incremental = None
        if (
            self.interprocedural
            and self.incremental_store is not None
            and self.config.incremental
        ):
            # Imported lazily: the incremental subsystem is optional at
            # runtime and must not tax the cold import path.
            from repro.incremental.driver import analyse_module_incremental

            prediction, outcome = analyse_module_incremental(
                module,
                ssa_infos,
                self.incremental_store,
                config=self.config,
                heuristic=heuristic,
                entry=entry,
                entry_param_ranges=entry_param_ranges,
                analysis_cache=analysis_cache,
            )
            self.last_incremental = outcome
            return prediction
        if self.interprocedural:
            return analyse_module(
                module,
                ssa_infos,
                config=self.config,
                heuristic=heuristic,
                entry=entry,
                entry_param_ranges=entry_param_ranges,
                analysis_cache=analysis_cache,
            )
        predictions: Dict[str, FunctionPrediction] = {}
        import repro.core.counters as counters_mod

        total = counters_mod.Counters()
        for name, function in module.functions.items():
            prediction = analyse_function(
                function,
                ssa_infos[name],
                config=self.config,
                heuristic=heuristic,
                param_ranges=entry_param_ranges if name == entry else None,
            )
            predictions[name] = prediction
            total.merge(prediction.counters)
        return ModulePrediction(module, predictions, total, rounds=1)

    def _reset_perf(self) -> None:
        """Zero the perf-layer stats so they describe this run only.

        Cache *contents* deliberately persist across runs: every memo is
        keyed on the full arguments of a pure function (with recorded
        work-counter deltas replayed on hits), so warm entries from
        previously analysed modules change wall time but never results.
        The exported hit/miss stats therefore depend on what the process
        analysed before -- like wall time, and unlike the predictions
        and work counters, which are byte-identical for any cache state
        (the property ``--jobs N`` relies on).
        """
        if self.config.perf:
            perf.stats.reset_stats()
            perf.configure(
                memo_size=self.config.perf_memo_size,
                intern_size=self.config.perf_intern_size,
            )

    # -- Predictor interface (single function, intraprocedural) ---------------------

    def predict_function(self, function: Function, context=None) -> Dict[str, float]:
        # ``context`` (the heuristics' FunctionContext) is accepted for
        # interface compatibility; VRP derives everything from the IR.
        from repro.ir import SSAEdges  # noqa: F401  (documented dependency)
        from repro.ir.ssa import SSAInfo as _SSAInfo

        self._reset_perf()
        info = _reconstruct_ssa_info(function)
        heuristic = self.fallback.as_fallback() if self.fallback else None
        prediction = analyse_function(
            function, info, config=self.config, heuristic=heuristic
        )
        return dict(prediction.branch_probability)


def _reconstruct_ssa_info(function: Function) -> SSAInfo:
    """Recover parameter SSA names for an already-converted function.

    SSA construction names the entry version of parameter ``p`` as
    ``p.0``; this helper lets the Predictor interface work on functions
    prepared elsewhere without threading the SSAInfo through.
    """
    info = SSAInfo()
    for param in function.params:
        info.param_names[param] = f"{param}.0"
        info.original_name[f"{param}.0"] = param
    return info


def predict_branch_probabilities(
    module: Module,
    ssa_infos: Dict[str, SSAInfo],
    config: Optional[VRPConfig] = None,
    fallback: Optional[Predictor] = None,
    interprocedural: bool = True,
    entry: str = "main",
) -> Dict[Tuple[str, str], float]:
    """One-call convenience: (function, branch block) -> P(true edge)."""
    predictor = VRPPredictor(
        config=config, fallback=fallback, interprocedural=interprocedural
    )
    prediction = predictor.predict_module(module, ssa_infos, entry=entry)
    return prediction.all_branches()
