"""Bounded-LRU memoization for the hot pure range-algebra functions.

Importing this module installs the :func:`from_ranges`/:func:`merge_weighted`
hooks into :mod:`repro.core.rangeset` (module-level ``_FROM_RANGES_MEMO`` /
``_MERGE_WEIGHTED_MEMO`` variables), so *every* call site benefits; the
engine-facing wrappers (:func:`evaluate_binop`, :func:`compare_sets`, ...)
are called explicitly by :mod:`repro.core.propagation`.

Two invariants keep the layer behaviour-neutral:

* **Counter replay.**  ``evaluate_binop``/``evaluate_unop``/``compare_sets``
  tally one ``sub_operations`` per range pair internally; each cache entry
  stores the tally delta of its original evaluation and replays it on every
  hit, so the Figure-5/6 work counts stay byte-identical to a run without
  the layer (``benchmarks/seed_work_counts.json`` is asserted against both
  ways).
* **Gating.**  Every wrapper falls through to the original function when
  :func:`repro.core.perf.context.is_active` says the layer is off, so
  ``VRPConfig(perf=False)`` or ``REPRO_PERF=0`` bypasses caching entirely.

``compare_sets`` is only memoized for calls without a ``symbol_range``
callback (94% of them): with a callback the result depends on *live*
engine state that a key over the operands cannot capture.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core import counters
from repro.core import comparisons as _comparisons
from repro.core import range_arith as _range_arith
from repro.core import rangeset as _rangeset
from repro.core import refine as _refine
from repro.core.perf import interning
from repro.core.perf.context import is_active
from repro.core.perf.stats import stats

DEFAULT_MEMO_SIZE = 16384

_MISSING = object()


class LRUCache:
    """A bounded key -> value map with LRU eviction and stats tallying."""

    __slots__ = ("name", "capacity", "_table", "_stats")

    def __init__(self, name: str, capacity: int = DEFAULT_MEMO_SIZE):
        self.name = name
        self.capacity = capacity
        self._table: "OrderedDict" = OrderedDict()
        # CacheStats objects are zeroed in place on reset, never
        # replaced, so a one-time binding saves a lookup per hit.
        self._stats = stats().caches[name]

    def get(self, key):
        """The cached value, or the module ``_MISSING`` sentinel."""
        value = self._table.get(key, _MISSING)
        if value is _MISSING:
            self._stats.misses += 1
            return _MISSING
        self._stats.hits += 1
        self._table.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        table = self._table
        table[key] = value
        if len(table) > self.capacity:
            table.popitem(last=False)
            self._stats.evictions += 1

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()


_FROM_RANGES = LRUCache("from_ranges")
_MERGE_WEIGHTED = LRUCache("merge_weighted")
_BINOP = LRUCache("binop")
_UNOP = LRUCache("unop")
_COMPARE = LRUCache("compare")
_REFINE = LRUCache("refine")
_CONSTANT = LRUCache("constant")
_BOOLEAN = LRUCache("boolean")

_ALL_CACHES = (
    _FROM_RANGES,
    _MERGE_WEIGHTED,
    _BINOP,
    _UNOP,
    _COMPARE,
    _REFINE,
    _CONSTANT,
    _BOOLEAN,
)


# -- rangeset hooks (installed below; rangeset checks is_active itself) -----


def from_ranges(ranges, max_ranges, renormalise):
    """Memoized ``RangeSet.from_ranges`` (``ranges`` already a tuple)."""
    key = (ranges, max_ranges, renormalise)
    cached = _FROM_RANGES.get(key)
    if cached is not _MISSING:
        return cached
    result = interning.intern_rangeset(
        _rangeset._build_set(ranges, max_ranges, renormalise)
    )
    _FROM_RANGES.put(key, result)
    return result


def merge_weighted(contributions, max_ranges):
    """Memoized φ-merge (``contributions`` already a tuple of pairs)."""
    key = (contributions, max_ranges)
    cached = _MERGE_WEIGHTED.get(key)
    if cached is not _MISSING:
        return cached
    result = interning.intern_rangeset(
        _rangeset._merge_weighted(contributions, max_ranges)
    )
    _MERGE_WEIGHTED.put(key, result)
    return result


# -- engine-facing wrappers -------------------------------------------------


def evaluate_binop(op, a, b, max_ranges=_rangeset.DEFAULT_MAX_RANGES):
    """``range_arith.evaluate_binop`` with caching + sub-operation replay."""
    if not is_active():
        return _range_arith.evaluate_binop(op, a, b, max_ranges)
    key = (op, a, b, max_ranges)
    cached = _BINOP.get(key)
    if cached is not _MISSING:
        result, sub_ops = cached
        counters.active().sub_operations += sub_ops
        return result
    tally = counters.active()
    before = tally.sub_operations
    result = interning.intern_rangeset(
        _range_arith.evaluate_binop(op, a, b, max_ranges)
    )
    _BINOP.put(key, (result, tally.sub_operations - before))
    return result


def evaluate_unop(op, a, max_ranges=_rangeset.DEFAULT_MAX_RANGES):
    """``range_arith.evaluate_unop`` with caching + sub-operation replay."""
    if not is_active():
        return _range_arith.evaluate_unop(op, a, max_ranges)
    key = (op, a, max_ranges)
    cached = _UNOP.get(key)
    if cached is not _MISSING:
        result, sub_ops = cached
        counters.active().sub_operations += sub_ops
        return result
    tally = counters.active()
    before = tally.sub_operations
    result = interning.intern_rangeset(
        _range_arith.evaluate_unop(op, a, max_ranges)
    )
    _UNOP.put(key, (result, tally.sub_operations - before))
    return result


def compare_sets(
    op,
    a,
    b,
    a_name=None,
    b_name=None,
    exact_limit=_comparisons.DEFAULT_EXACT_LIMIT,
    symbol_range=None,
):
    """``comparisons.compare_sets`` with caching + sub-operation replay.

    Falls through uncached whenever ``symbol_range`` is given: that
    callback reads live engine state the memo key cannot represent.
    """
    if symbol_range is not None or not is_active():
        return _comparisons.compare_sets(
            op,
            a,
            b,
            a_name=a_name,
            b_name=b_name,
            exact_limit=exact_limit,
            symbol_range=symbol_range,
        )
    key = (op, a, b, a_name, b_name, exact_limit)
    cached = _COMPARE.get(key)
    if cached is not _MISSING:
        outcome, sub_ops = cached
        counters.active().sub_operations += sub_ops
        return outcome
    tally = counters.active()
    before = tally.sub_operations
    outcome = _comparisons.compare_sets(
        op, a, b, a_name=a_name, b_name=b_name, exact_limit=exact_limit
    )
    _COMPARE.put(key, (outcome, tally.sub_operations - before))
    return outcome


def refine_set(src, op, bound, max_ranges=_rangeset.DEFAULT_MAX_RANGES):
    """``refine.refine_set`` with caching (pure: nothing to replay)."""
    if not is_active():
        return _refine.refine_set(src, op, bound, max_ranges)
    key = (src, op, bound, max_ranges)
    cached = _REFINE.get(key)
    if cached is not _MISSING:
        return cached
    result = interning.intern_rangeset(
        _refine.refine_set(src, op, bound, max_ranges)
    )
    _REFINE.put(key, result)
    return result


def constant_set(value):
    """Cached ``RangeSet.constant``; int/float keys kept distinct."""
    if not is_active():
        return _rangeset.RangeSet.constant(value)
    key = (value.__class__, value)
    cached = _CONSTANT.get(key)
    if cached is not _MISSING:
        return cached
    result = interning.intern_rangeset(_rangeset.RangeSet.constant(value))
    _CONSTANT.put(key, result)
    return result


def boolean_set(probability_true):
    """Cached ``RangeSet.boolean`` for the 0/1 comparison distributions."""
    if not is_active():
        return _rangeset.RangeSet.boolean(probability_true)
    cached = _BOOLEAN.get(probability_true)
    if cached is not _MISSING:
        return cached
    result = interning.intern_rangeset(
        _rangeset.RangeSet.boolean(probability_true)
    )
    _BOOLEAN.put(probability_true, result)
    return result


# -- maintenance ------------------------------------------------------------


def configure(capacity: int) -> None:
    """Resize every memo cache (shrinking evicts oldest entries)."""
    for cache in _ALL_CACHES:
        cache.capacity = capacity
        while len(cache._table) > capacity:
            cache._table.popitem(last=False)


def clear() -> None:
    """Drop every memoized entry."""
    for cache in _ALL_CACHES:
        cache.clear()


def cache_sizes() -> dict:
    return {cache.name: len(cache) for cache in _ALL_CACHES}


# Install the rangeset hooks at import time; the call sites themselves
# check is_active() so the hooks are inert while the layer is off.
_rangeset._FROM_RANGES_MEMO = from_ranges
_rangeset._MERGE_WEIGHTED_MEMO = merge_weighted
