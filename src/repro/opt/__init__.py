"""Optimisation clients of value range propagation (paper §6).

* :mod:`repro.opt.unreachable` -- probability-0 edges and dead blocks;
* :mod:`repro.opt.constfold` -- the constant/copy subsumption rewrites;
* :mod:`repro.opt.dce` -- dead code elimination + certain-branch folding;
* :mod:`repro.opt.boundscheck` -- array bounds-check elimination;
* :mod:`repro.opt.array_alias` -- index-range alias disambiguation;
* :mod:`repro.opt.layout` -- Pettis–Hansen code layout from predictions;
* :mod:`repro.opt.speculation` -- hoisting usefulness for global scheduling;
* :mod:`repro.opt.superblock` -- trace (superblock) selection;
* :mod:`repro.opt.inlining` -- prediction-driven function inlining;
* :mod:`repro.opt.function_order` -- frequency-ordered function processing.
"""

from repro.opt.array_alias import (
    ArrayAccess,
    DependencePair,
    collect_accesses,
    disambiguated_fraction,
    independent_pairs,
    may_alias,
    provably_disjoint,
)
from repro.opt._verify import verify_after
from repro.opt.boundscheck import (
    SAFE,
    UNKNOWN,
    UNSAFE,
    AccessClassification,
    AccessReport,
    analyse_bounds_checks,
    classify_access,
    classify_index,
    dynamic_checks_eliminated,
    eliminated_fraction,
)
from repro.opt.constfold import (
    constants_from_prediction,
    copies_from_prediction,
    fold_constants,
    fold_copies,
)
from repro.opt.dce import eliminate_dead_code, fold_certain_branches
from repro.opt.function_order import allocation_priority, function_order
from repro.opt.inlining import (
    InlineDecision,
    InlineError,
    inline_call,
    inline_hot_calls,
)
from repro.opt.layout import chain_layout, fallthrough_fraction, layout_quality
from repro.opt.speculation import (
    HoistCandidate,
    execution_probability,
    hoisting_candidates,
    path_probability,
    useless_speculation,
)
from repro.opt.superblock import (
    Trace,
    dynamic_trace_coverage,
    form_traces,
    trace_statistics,
)
from repro.opt.unreachable import dead_edges, unreachable_blocks

__all__ = [
    "AccessClassification",
    "AccessReport",
    "ArrayAccess",
    "DependencePair",
    "HoistCandidate",
    "InlineDecision",
    "InlineError",
    "Trace",
    "dynamic_trace_coverage",
    "eliminate_dead_code",
    "fold_certain_branches",
    "form_traces",
    "trace_statistics",
    "allocation_priority",
    "execution_probability",
    "function_order",
    "hoisting_candidates",
    "inline_call",
    "inline_hot_calls",
    "path_probability",
    "useless_speculation",
    "SAFE",
    "UNKNOWN",
    "UNSAFE",
    "analyse_bounds_checks",
    "chain_layout",
    "classify_access",
    "classify_index",
    "collect_accesses",
    "constants_from_prediction",
    "copies_from_prediction",
    "dead_edges",
    "disambiguated_fraction",
    "dynamic_checks_eliminated",
    "eliminated_fraction",
    "fallthrough_fraction",
    "fold_constants",
    "fold_copies",
    "independent_pairs",
    "layout_quality",
    "may_alias",
    "provably_disjoint",
    "unreachable_blocks",
    "verify_after",
]
