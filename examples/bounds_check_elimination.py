"""Array bounds-check elimination with value ranges (paper §6).

Analyses a program with a mix of provably-safe, unknown, and provably
out-of-bounds array accesses, and reports what fraction of the *dynamic*
checks a JIT or safe-language runtime could drop -- cross-checked
against an actual interpreter run.

Run:  python examples/bounds_check_elimination.py
"""

from repro.core.propagation import analyse_function
from repro.ir import prepare_for_analysis
from repro.lang import compile_source
from repro.opt import analyse_bounds_checks, dynamic_checks_eliminated, eliminated_fraction
from repro.profiling import run_module

PROGRAM = """
func main(n) {
  array histogram[64];
  array scratch[16];

  // Hot loop: index provably in [0, 63] -- checks removable.
  for (i = 0; i < 4096; i = i + 1) {
    var bucket = input() % 64;
    histogram[bucket] = histogram[bucket] + 1;
  }

  // Strided sweep: also provably safe.
  var total = 0;
  for (i = 0; i < 64; i = i + 4) {
    total = total + histogram[i];
  }

  // Cold path with an unknown index: the check must stay.
  if (n >= 0) {
    if (n < 16) {
      scratch[n] = total;
    }
  }
  return total;
}
"""


def main() -> None:
    module = compile_source(PROGRAM)
    function = module.function("main")
    info = prepare_for_analysis(function)
    prediction = analyse_function(function, info)

    reports = analyse_bounds_checks(function, prediction)
    print("=== Access classification ===")
    for report in reports:
        print(
            f"  {report.kind:5s} {report.array}[{report.index_range}] "
            f"(size {report.size}) in {report.block_label}: {report.classification}"
        )

    print()
    static = eliminated_fraction(reports)
    dynamic = dynamic_checks_eliminated(reports, prediction)
    print(f"static accesses proven safe : {static:6.1%}")
    print(f"predicted dynamic checks cut: {dynamic:6.1%}")

    run = run_module(module, args=[7], input_values=[i * 31 % 4096 for i in range(4096)])
    total_dynamic = 0
    safe_dynamic = 0
    safe_blocks = {r.block_label for r in reports if r.classification == "safe"}
    per_block = {}
    for report in reports:
        per_block[report.block_label] = per_block.get(report.block_label, 0) + 1
    for (func, label), count in run.block_counts.items():
        if func != "main" or label not in per_block:
            continue
        executed = count * per_block[label]
        total_dynamic += executed
        if label in safe_blocks:
            safe_dynamic += executed
    print(f"measured dynamic checks cut : {safe_dynamic / total_dynamic:6.1%}")


if __name__ == "__main__":
    main()
