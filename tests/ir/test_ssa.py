"""SSA construction tests."""

import pytest

from repro.ir import prepare_for_analysis
from repro.ir.cfg import CFG, remove_unreachable_blocks, split_critical_edges
from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.ssa import PARAM_DEF, build_ssa_edges, construct_ssa
from repro.ir.values import Temp
from repro.ir.verifier import verify_function
from repro.lang import compile_source


def to_ssa(source: str, name: str = "main"):
    module = compile_source(source)
    function = module.function(name)
    remove_unreachable_blocks(function)
    split_critical_edges(function)
    info = construct_ssa(function)
    return function, info


class TestConstruction:
    def test_if_join_gets_phi(self):
        function, _ = to_ssa(
            "func main(n) { var x = 0; if (n > 0) { x = 1; } else { x = 2; } return x; }"
        )
        phis = [p for block in function.blocks.values() for p in block.phis()]
        assert any(p.dest.name.startswith("x.") for p in phis)

    def test_loop_header_gets_phi(self):
        function, _ = to_ssa(
            "func main(n) { var i = 0; while (i < n) { i = i + 1; } return i; }"
        )
        cfg = CFG(function)
        headers = {dst for _, dst in cfg.back_edges}
        assert headers
        for header in headers:
            names = [p.dest.name for p in function.block(header).phis()]
            assert any(name.startswith("i.") for name in names)

    def test_single_assignment_property(self):
        function, info = to_ssa(
            "func main(n) { var x = 1; x = x + 1; x = x * 2; return x; }"
        )
        defined = set(info.param_names.values())
        for instr in function.instructions():
            result = instr.result
            if result is not None:
                assert result.name not in defined, f"{result.name} defined twice"
                defined.add(result.name)

    def test_params_get_entry_versions(self):
        _, info = to_ssa("func main(a, b) { return a + b; }", "main")
        assert info.param_names == {"a": "a.0", "b": "b.0"}

    def test_verifier_accepts_result(self):
        function, info = to_ssa(
            """
            func main(n) {
              var t = 0;
              for (i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { t = t + i; } else { t = t - 1; }
              }
              return t;
            }
            """
        )
        verify_function(function, ssa=True, param_names=set(info.param_names.values()))

    def test_no_phi_for_block_local_temp(self):
        # A temp defined and used within one block needs no phi.
        function, _ = to_ssa(
            "func main(n) { if (n > 0) { n = n + 1; } return n; }"
        )
        phis = [p for block in function.blocks.values() for p in block.phis()]
        assert all(not p.dest.name.startswith("t$") for p in phis)

    def test_original_name_mapping(self):
        _, info = to_ssa("func main(n) { var x = 1; x = 2; return x; }")
        originals = {info.original_name[n] for n in info.original_name if n.startswith("x.")}
        assert originals == {"x"}

    def test_undef_on_maybe_uninitialised_path(self):
        # y is only assigned in the then-branch; the join phi must carry
        # an Undef for the other path rather than crash.
        function, _ = to_ssa(
            "func main(n) { if (n > 0) { y = 1; } return y; }"
        )
        verify_function(function)


class TestSSAEdges:
    def test_def_use_chains(self):
        function, info = to_ssa(
            "func main(n) { var x = n + 1; var y = x * 2; return y; }"
        )
        edges = build_ssa_edges(function, info)
        # n.0 is used by exactly one instruction (the add).
        uses = edges.uses_of["n.0"]
        assert len(uses) == 1
        assert edges.def_of["n.0"] == PARAM_DEF

    def test_every_definition_registered(self):
        function, info = to_ssa(
            "func main(n) { var t = 0; while (t < n) { t = t + 2; } return t; }"
        )
        edges = build_ssa_edges(function, info)
        for instr in function.instructions():
            if instr.result is not None:
                assert instr.result.name in edges.def_of

    def test_duplicate_definition_rejected(self):
        function = compile_source("func main(n) { var x = 1; x = 2; return x; }").function("main")
        # Not in SSA form: same name defined twice.
        with pytest.raises(ValueError):
            build_ssa_edges(function)

    def test_defining_instruction_lookup(self):
        function, info = to_ssa("func main(n) { var x = n * 3; return x; }")
        edges = build_ssa_edges(function, info)
        definition = edges.defining_instruction("x.0")
        assert definition is not None
        assert definition.result == Temp("x.0")
        assert edges.defining_instruction("n.0") is None  # parameter


class TestPreparePipeline:
    def test_prepare_for_analysis_full(self):
        module = compile_source(
            """
            func main(n) {
              var acc = 0;
              for (i = 0; i < 10; i = i + 1) {
                if (i > 5 && n > 0) { acc = acc + 1; }
              }
              return acc;
            }
            """
        )
        function = module.function("main")
        info = prepare_for_analysis(function)
        assert info.phi_count > 0
        # Pipeline leaves no unreachable blocks.
        assert CFG(function).reachable() == set(function.blocks)

    def test_prepare_without_assertions(self):
        module = compile_source("func main(n) { if (n > 3) { n = 0; } return n; }")
        function = module.function("main")
        prepare_for_analysis(function, assertions=False)
        pis = [i for block in function.blocks.values() for i in block.pis()]
        assert pis == []
