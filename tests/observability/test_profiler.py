"""Profiler invariants: self/cum partition, stacks, hot functions."""

from repro.observability.profiler import (
    ROOT_SPAN,
    ProfileReport,
    profile_source,
)
from repro.observability.tracer import Tracer

SOURCE = """
func main(n) {
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i > 10) { s = s + 2; } else { s = s + 1; }
  }
  return s;
}
"""


def profiled():
    return profile_source(SOURCE, module_name="prof")


class TestSelfTimes:
    def test_self_times_partition_the_wall_exactly(self):
        report = profiled().report
        # The root span's children tile it: sum(self) == wall with no
        # float tolerance needed beyond repr-level noise.
        assert abs(report.self_seconds_total - report.wall_seconds) < 1e-9
        assert report.wall_seconds > 0.0

    def test_cumulative_bounds_self(self):
        for span in profiled().report.spans:
            assert span.cum_seconds >= span.self_seconds >= 0.0
            assert span.count >= 1

    def test_expected_spans_present(self):
        names = {span.name for span in profiled().report.spans}
        assert ROOT_SPAN in names
        assert "pass:predict" in names
        assert "pipeline:predict" in names
        assert "analysis:prediction" in names
        assert {"lex", "parse", "lower", "ssa"} <= names


class TestProducts:
    def test_hot_functions_counted(self):
        report = profiled().report
        assert report.hot_functions
        name, count = report.hot_functions[0]
        assert name == "main"
        assert count > 0

    def test_collapsed_stacks_are_rooted_and_weighted(self):
        report = profiled().report
        rendered = report.render_collapsed()
        assert rendered
        for line in rendered.splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack.startswith(ROOT_SPAN)
            assert int(weight) > 0

    def test_collapsed_total_approximates_wall(self):
        # Collapsed weights are self-times in integer microseconds, so
        # their sum reconstructs the wall up to 1us truncation per span.
        report = profiled().report
        total_us = sum(report.collapsed.values())
        span_count = sum(span.count for span in report.spans)
        assert abs(total_us - report.wall_seconds * 1e6) <= span_count + 1

    def test_render_text_shows_the_invariant(self):
        report = profiled().report
        text = report.render_text()
        assert "wall:" in text and "self-time sum:" in text
        assert "pipeline: predict" in text

    def test_as_metrics_shape(self):
        metrics = profiled().report.as_metrics()
        assert set(metrics) == {
            "wall_seconds", "self_seconds_total", "pipeline", "spans",
            "hot_functions",
        }
        assert metrics["pipeline"] == ["predict"]
        for span in metrics["spans"]:
            assert set(span) == {"name", "count", "self_seconds", "cum_seconds"}


class TestFromTracer:
    def test_without_root_span_falls_back_to_top_level(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        report = ProfileReport.from_tracer(tracer)
        expected = sum(span.seconds for span in tracer.spans)
        assert abs(report.wall_seconds - expected) < 1e-9

    def test_open_spans_are_ignored(self):
        tracer = Tracer()
        open_span = tracer.span("open")
        open_span.__enter__()
        with tracer.span("closed"):
            pass
        open_span.__exit__(None, None, None)
        # Recorded with the open span still open at aggregation time:
        tracer2 = Tracer()
        hanging = tracer2.span("hanging")
        hanging.__enter__()
        with tracer2.span("done"):
            pass
        report = ProfileReport.from_tracer(tracer2)
        names = {span.name for span in report.spans}
        assert "hanging" not in names
        assert "done" in names
        hanging.__exit__(None, None, None)

    def test_explicit_passes_name_the_pipeline(self):
        session = profile_source(SOURCE, passes=["predict"])
        assert session.report.pipeline == ["predict"]
