"""Prometheus exposition: rendering from ServerStats and the strict parser."""

import pytest

from repro.observability.prometheus import (
    MetricFamily,
    PrometheusParseError,
    parse_prometheus_text,
    render_server_metrics,
)
from repro.server.stats import LATENCY_BUCKETS_MS, ServerStats


def populated_snapshot() -> dict:
    stats = ServerStats()
    stats.record_request("/v1/predict", 200, 3.0, cached="memory")
    stats.record_request("/v1/predict", 200, 30.0)
    stats.record_request("/v1/predict", 400, 1.0)
    stats.record_request("/healthz", 200, 0.5)
    stats.record_request("/v1/check", 200, 9000.0, degraded=True)
    stats.record_rejected("queue_full")
    return stats.snapshot(
        cache_stats={
            "memory": {"entries": 2, "hits": 1, "misses": 4},
            "disk": {"hits": 0, "misses": 0},
        },
        queue_depth=1,
        queue_high_water=3,
    )


class TestRender:
    def test_round_trips_through_the_parser(self):
        text = render_server_metrics(
            populated_snapshot(), uptime_s=12.5, workers=4
        )
        families = parse_prometheus_text(text)
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_request_latency_seconds"]["type"] == "histogram"
        assert families["repro_uptime_seconds"]["type"] == "gauge"

    def test_counter_values(self):
        text = render_server_metrics(populated_snapshot())
        families = parse_prometheus_text(text)

        def value(family, wanted_labels, name=None):
            for sample_name, labels, sample_value in families[family]["samples"]:
                if labels == wanted_labels and (
                    name is None or sample_name == name
                ):
                    return sample_value
            raise AssertionError(f"no sample {wanted_labels} in {family}")

        assert value("repro_requests_total", {"endpoint": "/v1/predict"}) == 3
        assert value("repro_request_errors_total", {"endpoint": "/v1/predict"}) == 1
        assert value("repro_responses_total", {"status": "200"}) == 4
        assert value("repro_results_total", {"tier": "memory"}) == 1
        assert value("repro_results_total", {"tier": "fresh"}) == 3
        assert value("repro_degraded_total", {}) == 1
        assert value("repro_rejected_total", {"reason": "queue_full"}) == 1
        assert value("repro_cache_entries", {"tier": "memory"}) == 2
        assert value("repro_queue_depth", {}) == 1
        assert value("repro_queue_high_water", {}) == 3

    def test_histogram_is_cumulative_with_inf(self):
        text = render_server_metrics(populated_snapshot())
        families = parse_prometheus_text(text)
        samples = families["repro_request_latency_seconds"]["samples"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name.endswith("_bucket") and labels["endpoint"] == "/v1/predict"
        ]
        # One bucket per SLO bound plus +Inf.
        assert len(buckets) == len(LATENCY_BUCKETS_MS) + 1
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 3  # total count
        count = [
            value
            for name, labels, value in samples
            if name.endswith("_count") and labels == {"endpoint": "/v1/predict"}
        ]
        assert count == [3]

    def test_slow_request_lands_in_inf_only(self):
        text = render_server_metrics(populated_snapshot())
        families = parse_prometheus_text(text)
        check_buckets = {
            labels["le"]: value
            for name, labels, value in families[
                "repro_request_latency_seconds"
            ]["samples"]
            if name.endswith("_bucket") and labels["endpoint"] == "/v1/check"
        }
        assert check_buckets["5"] == 0  # 9s is past the last 5s bound
        assert check_buckets["+Inf"] == 1

    def test_invalid_metric_name_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MetricFamily("bad name", "counter", "help")


class TestParser:
    def test_requires_type_before_samples(self):
        with pytest.raises(PrometheusParseError, match="no preceding TYPE"):
            parse_prometheus_text("repro_x_total 1\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(PrometheusParseError, match="unknown metric type"):
            parse_prometheus_text("# TYPE repro_x bogus\n")

    def test_rejects_duplicate_type(self):
        text = "# TYPE a counter\na 1\n# TYPE a counter\n"
        with pytest.raises(PrometheusParseError, match="duplicate TYPE"):
            parse_prometheus_text(text)

    def test_rejects_malformed_labels(self):
        text = '# TYPE a counter\na{key=unquoted} 1\n'
        with pytest.raises(PrometheusParseError, match="malformed label"):
            parse_prometheus_text(text)

    def test_rejects_unparseable_value(self):
        text = "# TYPE a counter\na notanumber\n"
        with pytest.raises(PrometheusParseError, match="unparseable value"):
            parse_prometheus_text(text)

    def test_rejects_histogram_without_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\n"
        )
        with pytest.raises(PrometheusParseError, match="_count"):
            parse_prometheus_text(text)

    def test_rejects_bucket_without_le(self):
        text = (
            "# TYPE h histogram\n"
            "h_bucket 1\n"
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        with pytest.raises(PrometheusParseError, match="'le'"):
            parse_prometheus_text(text)

    def test_accepts_inf_values_and_labels(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.001"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.25\n"
            "h_count 3\n"
        )
        families = parse_prometheus_text(text)
        assert len(families["h"]["samples"]) == 4
