"""Enable/disable state for the analysis performance layer.

Two switches compose:

* a **process-global** default (:func:`set_global_enabled`), seeded from
  the ``REPRO_PERF`` environment variable so an entire test run can be
  executed with the layer off (``REPRO_PERF=0``) to prove the layer has
  no behavioural coupling;
* a **per-run override** carried in a :class:`contextvars.ContextVar`
  (:func:`activate`), set by the propagation engine from
  :attr:`repro.core.config.VRPConfig.perf` so concurrent engines with
  different configs do not fight over a global.

This module is imported by the lattice-value modules themselves
(``ranges``/``rangeset``) and therefore must not import anything from
:mod:`repro.core` -- it is the dependency-free root of the perf layer.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from typing import Iterator, Optional

_GLOBAL_ENABLED = os.environ.get("REPRO_PERF", "1").lower() not in (
    "0",
    "false",
    "off",
)

_ACTIVE: contextvars.ContextVar[Optional[bool]] = contextvars.ContextVar(
    "repro-perf-active", default=None
)


def globally_enabled() -> bool:
    """The process-wide default for the perf layer."""
    return _GLOBAL_ENABLED


def set_global_enabled(enabled: bool) -> None:
    """Set the process-wide default (also the ``VRPConfig.perf`` default)."""
    global _GLOBAL_ENABLED
    _GLOBAL_ENABLED = bool(enabled)


def is_active() -> bool:
    """Whether perf caching applies right now (override, else global)."""
    override = _ACTIVE.get()
    if override is None:
        return _GLOBAL_ENABLED
    return override


@contextmanager
def activate(enabled: bool) -> Iterator[None]:
    """Force the perf layer on/off for the duration of the block."""
    token = _ACTIVE.set(bool(enabled))
    try:
        yield
    finally:
        _ACTIVE.reset(token)
