"""Hammer tests: ServerStats and the server tracer summary under contention.

The daemon runs on ``ThreadingHTTPServer``, so every counter in
:class:`repro.server.stats.ServerStats` is hit from many handler
threads at once while ``/metricsz`` snapshots concurrently.  These
tests drive that pattern hard and assert the totals reconcile exactly
-- a lost update anywhere shows up as a count mismatch.
"""

import threading

from repro.observability.events import PassBegin
from repro.server.httpd import ReproServer
from repro.server.stats import LATENCY_BUCKETS_MS, ServerStats

THREADS = 8
PER_THREAD = 250


def hammer(stats: ServerStats, snapshots: list) -> None:
    """THREADS writers interleaved with live snapshot readers."""
    barrier = threading.Barrier(THREADS + 1)

    def writer(seed: int) -> None:
        barrier.wait()
        for i in range(PER_THREAD):
            n = seed * PER_THREAD + i
            endpoint = "/v1/predict" if n % 3 else "/v1/check"
            status = 400 if n % 10 == 0 else 200
            cached = ("memory", "disk", None)[n % 3]
            stats.record_request(
                endpoint,
                status,
                elapsed_ms=float(n % 7000),
                cached=cached,
                degraded=(n % 25 == 0),
            )
            if n % 50 == 0:
                stats.record_rejected("queue_full")

    def reader() -> None:
        barrier.wait()
        for _ in range(100):
            snapshots.append(stats.snapshot())

    threads = [
        threading.Thread(target=writer, args=(seed,)) for seed in range(THREADS)
    ]
    threads.append(threading.Thread(target=reader))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def reconcile(snapshot: dict) -> None:
    """Every total in a snapshot must agree with every other."""
    endpoints = snapshot["endpoints"]
    for stats in endpoints.values():
        histogram = stats["histogram"]
        assert sum(histogram.values()) == stats["count"]
        assert stats["errors"] <= stats["count"]
    total = sum(stats["count"] for stats in endpoints.values())
    assert sum(snapshot["responses"].values()) == total
    ok = sum(
        count
        for status, count in snapshot["responses"].items()
        if int(status) < 400
    )
    assert sum(snapshot["results"].values()) == ok


class TestServerStatsHammer:
    def test_concurrent_totals_reconcile(self):
        stats = ServerStats()
        snapshots: list = []
        hammer(stats, snapshots)

        total = THREADS * PER_THREAD
        snapshot = stats.snapshot()
        reconcile(snapshot)
        endpoints = snapshot["endpoints"]
        assert sum(s["count"] for s in endpoints.values()) == total
        assert snapshot["responses"]["400"] == total // 10
        assert snapshot["degraded"] == total // 25
        assert snapshot["rejected"]["queue_full"] == total // 50
        # The bucket layout survived: one counter per bound, plus +inf.
        histogram = endpoints["/v1/predict"]["histogram"]
        assert len(histogram) == len(LATENCY_BUCKETS_MS) + 1

    def test_mid_flight_snapshots_are_internally_consistent(self):
        # Snapshots taken while writers run may be partial but must
        # never be torn: each one reconciles on its own.
        stats = ServerStats()
        snapshots: list = []
        hammer(stats, snapshots)
        assert snapshots
        for snapshot in snapshots:
            reconcile(snapshot)


class TestTracerSummaryHammer:
    def test_summary_during_concurrent_emit(self):
        # The pre-v6 bug: metrics_document iterated the live tracer's
        # event_counts outside the tracer lock while handler threads
        # emitted.  tracer_summary() copies under the lock; hammering
        # both sides must not raise or tear.
        server = ReproServer(port=0, workers=1)
        try:
            barrier = threading.Barrier(5)
            summaries: list = []

            def emitter() -> None:
                barrier.wait()
                for i in range(500):
                    server.emit_event(PassBegin(pass_name=f"p{i}", mutates=False))

            def summariser() -> None:
                barrier.wait()
                for _ in range(200):
                    summaries.append(server.tracer_summary())

            threads = [threading.Thread(target=emitter) for _ in range(4)]
            threads.append(threading.Thread(target=summariser))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            final = server.tracer_summary()
            assert final["event_counts"]["pass.begin"] == 2000
            for summary in summaries:
                assert set(summary) == {
                    "spans", "event_counts", "dropped_events",
                }
        finally:
            server.drain(timeout=5.0)
