"""Trace (superblock) formation from predicted probabilities.

The paper cites trace scheduling [Fisher81] and tail duplication
[ChangMahlkeHwu91] as consumers of branch predictions: a scheduler wants
long straight-line *traces* of blocks that execute together with high
probability.  This module grows traces greedily along the most likely
out-edge, stopping when the cumulative path probability drops below a
threshold -- exactly the selection step of trace scheduling, driven by
static predictions instead of a profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.propagation import FunctionPrediction
from repro.ir.cfg import CFG
from repro.ir.function import Function


@dataclass
class Trace:
    """A straight-line trace of blocks with its path probability."""

    blocks: List[str] = field(default_factory=list)
    probability: float = 1.0  # P(reaching the end | entering the head)
    frequency: float = 0.0  # predicted executions of the head

    @property
    def length(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return (
            f"Trace({' -> '.join(self.blocks)}, p={self.probability:.2f}, "
            f"freq={self.frequency:.1f})"
        )


def form_traces(
    function: Function,
    prediction: FunctionPrediction,
    min_path_probability: float = 0.5,
    min_edge_probability: float = 0.6,
) -> List[Trace]:
    """Partition the reachable blocks into traces, hottest seeds first.

    Growth is bidirectional (as in classic trace selection): forward
    along the most probable successor edge, then backward along
    predecessors whose most probable successor is the trace head.  An
    extension requires (a) the edge to be likely
    (``min_edge_probability``), (b) the cumulative forward path to stay
    above ``min_path_probability``, (c) the block to be unclaimed, and
    (d) the edge not to be a back edge (traces do not wrap around loops;
    the loop body itself becomes the trace).
    """
    cfg = CFG(function)
    unclaimed: Set[str] = set(cfg.reachable())
    seeds = sorted(
        unclaimed,
        key=lambda label: -prediction.block_frequency.get(label, 0.0),
    )
    traces: List[Trace] = []
    for seed in seeds:
        if seed not in unclaimed:
            continue
        trace = Trace(
            blocks=[seed],
            probability=1.0,
            frequency=prediction.block_frequency.get(seed, 0.0),
        )
        unclaimed.discard(seed)
        current = seed
        while True:  # grow forward
            successors = cfg.successors[current]
            if not successors:
                break
            best = max(
                successors,
                key=lambda succ: prediction.probability_of_edge(current, succ),
            )
            edge_probability = prediction.probability_of_edge(current, best)
            extended = trace.probability * edge_probability
            if (
                best not in unclaimed
                or cfg.is_back_edge(current, best)
                or edge_probability < min_edge_probability
                or extended < min_path_probability
            ):
                break
            trace.blocks.append(best)
            trace.probability = extended
            unclaimed.discard(best)
            current = best
        head = seed
        while True:  # grow backward
            candidates = [
                pred
                for pred in cfg.predecessors[head]
                if pred in unclaimed and not cfg.is_back_edge(pred, head)
            ]
            best_pred = None
            best_probability = 0.0
            for pred in candidates:
                edge_probability = prediction.probability_of_edge(pred, head)
                # The predecessor must fall through to the head most of
                # the time, or splicing it in breaks its own hot path.
                if edge_probability >= min_edge_probability and (
                    edge_probability > best_probability
                ):
                    best_pred = pred
                    best_probability = edge_probability
            if best_pred is None:
                break
            trace.blocks.insert(0, best_pred)
            unclaimed.discard(best_pred)
            head = best_pred
            trace.frequency = max(
                trace.frequency, prediction.block_frequency.get(head, 0.0)
            )
        traces.append(trace)
    traces.sort(key=lambda t: -t.frequency)
    return traces


def trace_statistics(traces: List[Trace]) -> Dict[str, float]:
    """Summary numbers a trace scheduler cares about."""
    if not traces:
        return {"count": 0, "mean_length": 0.0, "weighted_length": 0.0}
    total_weight = sum(t.frequency for t in traces) or 1.0
    return {
        "count": float(len(traces)),
        "mean_length": sum(t.length for t in traces) / len(traces),
        # Average trace length experienced by a dynamic instruction.
        "weighted_length": sum(t.length * t.frequency for t in traces) / total_weight,
        "longest": float(max(t.length for t in traces)),
    }


def dynamic_trace_coverage(
    traces: List[Trace],
    dynamic_edge_counts: Dict[tuple, int],
) -> float:
    """Fraction of dynamic control transfers that stay inside a trace.

    Measured against real (interpreter) edge counts: high coverage means
    the statically selected traces are the paths the program actually
    takes -- the property trace scheduling's profitability rests on.
    """
    position: Dict[str, tuple] = {}
    for index, trace in enumerate(traces):
        for offset, label in enumerate(trace.blocks):
            position[label] = (index, offset)
    total = 0
    inside = 0
    for (src, dst), count in dynamic_edge_counts.items():
        if src not in position or dst not in position:
            continue
        total += count
        src_trace, src_offset = position[src]
        dst_trace, dst_offset = position[dst]
        if src_trace == dst_trace and dst_offset == src_offset + 1:
            inside += count
    return inside / total if total else 0.0
