"""Interning (hash-consing) invariants of the perf layer.

The contract under test: ``intern(x) is intern(y)`` exactly when
``x == y`` -- including the ⊤/⊥ singletons and symbolic bounds -- and
bounded tables may evict at any time without changing any result.
"""

import math

import pytest

from repro.core import perf
from repro.core.bounds import Bound
from repro.core.config import VRPConfig
from repro.core.perf import interning
from repro.core.perf.interning import DEFAULT_INTERN_SIZE
from repro.core.perf.memo import DEFAULT_MEMO_SIZE
from repro.core.predictor import VRPPredictor
from repro.core.ranges import StridedRange
from repro.core.rangeset import BOTTOM, RangeSet, TOP
from repro.ir import prepare_module
from repro.lang import compile_source


@pytest.fixture(autouse=True)
def fresh_tables():
    perf.reset()
    perf.configure(memo_size=DEFAULT_MEMO_SIZE, intern_size=DEFAULT_INTERN_SIZE)
    yield
    perf.reset()
    perf.configure(memo_size=DEFAULT_MEMO_SIZE, intern_size=DEFAULT_INTERN_SIZE)


def make_bounds():
    """Fresh Bound objects covering numeric, infinite, and symbolic cases."""
    return [
        Bound(-3),
        Bound(0),
        Bound(1),
        Bound(1.0),  # == Bound(1): must share its canonical object
        Bound(2.5),
        Bound(math.inf),
        Bound(-math.inf),
        Bound.symbolic("n"),
        Bound.symbolic("n", 4),
        Bound.symbolic("m", 4),
    ]


def make_ranges():
    return [
        StridedRange.single(1.0, 0),
        StridedRange.single(1.0, 7),
        StridedRange.single(0.5, 7),
        StridedRange(1.0, Bound(0), Bound(10), 1),
        StridedRange(1.0, Bound(0), Bound(10), 2),
        StridedRange(1.0, Bound(0), Bound.symbolic("n"), 1),
        StridedRange(1.0, Bound.symbolic("n"), Bound.symbolic("n", 8), 1),
    ]


def make_rangesets():
    return [
        RangeSet.top(),
        RangeSet.bottom(),
        RangeSet.constant(3),
        RangeSet.constant(3.0),
        RangeSet.boolean(0.25),
        RangeSet.from_ranges([StridedRange(1.0, Bound(0), Bound(9), 1)]),
        RangeSet.from_ranges(
            [StridedRange(1.0, Bound(0), Bound.symbolic("k"), 1)]
        ),
        RangeSet.from_ranges(
            [
                StridedRange(0.5, Bound(0), Bound(4), 1),
                StridedRange(0.5, Bound(10), Bound(14), 1),
            ]
        ),
    ]


class TestIdentityIffEquality:
    """intern(x) is intern(y)  <=>  x == y, for every value kind."""

    def test_bounds(self):
        for a in make_bounds():
            for b in make_bounds():  # fresh, structurally distinct objects
                identical = interning.intern_bound(a) is interning.intern_bound(b)
                assert identical == (a == b), (a, b)

    def test_ranges(self):
        for a in make_ranges():
            for b in make_ranges():
                identical = interning.intern_range(a) is interning.intern_range(b)
                assert identical == (a == b), (a, b)

    def test_rangesets(self):
        for a in make_rangesets():
            for b in make_rangesets():
                identical = interning.intern_rangeset(a) is interning.intern_rangeset(b)
                assert identical == (a == b), (a, b)

    def test_top_bottom_intern_to_module_singletons(self):
        assert interning.intern_rangeset(RangeSet.top()) is TOP
        assert interning.intern_rangeset(RangeSet.bottom()) is BOTTOM

    def test_interned_range_bounds_are_canonical(self):
        first = interning.intern_range(
            StridedRange(1.0, Bound.symbolic("n"), Bound.symbolic("n", 8), 1)
        )
        lo = interning.intern_bound(Bound.symbolic("n"))
        assert first.lo is lo


class TestEviction:
    """Bounded tables: eviction loses identity, never correctness."""

    def test_tables_respect_capacity(self):
        perf.configure(intern_size=4)
        for value in range(100):
            interning.intern_bound(Bound(value))
        assert len(interning._BOUNDS) <= 4

    def test_evicted_values_still_compare_equal(self):
        perf.configure(intern_size=2)
        originals = [interning.intern_bound(Bound(v)) for v in range(50)]
        # Bound(0) has long been evicted: a re-intern returns a *new*
        # canonical object that is still structurally equal.
        again = interning.intern_bound(Bound(0))
        assert again == originals[0]

    def test_tiny_tables_do_not_change_predictions(self):
        source = """
        func main(n) {
          var acc = 0;
          for (i = 0; i < 40; i = i + 1) {
            if (i % 3 == 0) { acc = acc + 2; }
            else { acc = acc + 1; }
          }
          if (acc > 10) { return acc; }
          return 0;
        }
        """
        module = compile_source(source)
        infos = prepare_module(module)
        reference = VRPPredictor(config=VRPConfig(perf=False)).predict_module(
            module, infos
        )
        tiny = VRPPredictor(
            config=VRPConfig(perf=True, perf_memo_size=2, perf_intern_size=2)
        ).predict_module(module, infos)
        assert tiny.all_branches() == reference.all_branches()
        assert tiny.counters.as_dict() == reference.counters.as_dict()


class TestSanitizerRoundTrip:
    """Interned (canonical) lattice values pass the engine sanitizer."""

    def test_sanitized_run_with_perf_layer(self):
        source = """
        func main(n) {
          var total = 0;
          for (i = 0; i < 25; i = i + 1) {
            if (i < n) { total = total + i; }
          }
          return total;
        }
        """
        module = compile_source(source)
        infos = prepare_module(module)
        checked = VRPPredictor(
            config=VRPConfig(perf=True, sanitize=True)
        ).predict_module(module, infos)
        plain = VRPPredictor(config=VRPConfig(perf=False)).predict_module(
            module, infos
        )
        assert checked.all_branches() == plain.all_branches()
