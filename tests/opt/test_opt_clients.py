"""Optimisation client tests (paper §6 applications)."""

import pytest

from repro.core.rangeset import RangeSet
from repro.opt import (
    SAFE,
    UNKNOWN,
    UNSAFE,
    analyse_bounds_checks,
    chain_layout,
    classify_index,
    collect_accesses,
    constants_from_prediction,
    copies_from_prediction,
    dead_edges,
    disambiguated_fraction,
    dynamic_checks_eliminated,
    eliminated_fraction,
    fallthrough_fraction,
    fold_constants,
    fold_copies,
    independent_pairs,
    layout_quality,
    may_alias,
    provably_disjoint,
    unreachable_blocks,
)

from tests.helpers import analyse


class TestUnreachable:
    def test_dead_then_block_found(self):
        prediction = analyse(
            "func main(n) { var x = 5; if (x > 10) { n = 1; } return n; }"
        )
        dead = unreachable_blocks(prediction.function, prediction)
        assert dead  # the then-arm never executes

    def test_live_code_not_flagged(self):
        prediction = analyse(
            "func main(n) { var x = 5; if (x < 10) { n = 1; } return n; }"
        )
        dead = unreachable_blocks(prediction.function, prediction)
        # The else/fall-through path may contain a zero-frequency
        # assertion block; the then block itself must be live.
        (label,) = prediction.branch_probability
        then_target = prediction.function.block(label).terminator.true_target
        assert then_target not in dead

    def test_dead_edges_reported(self):
        prediction = analyse(
            "func main(n) { var x = 5; if (x > 10) { n = 1; } return n; }"
        )
        edges = dead_edges(prediction.function, prediction)
        (label,) = prediction.branch_probability
        branch = prediction.function.block(label).terminator
        assert (label, branch.true_target) in edges


class TestConstFold:
    def test_constants_extracted(self):
        prediction = analyse(
            "func main(n) { var a = 6; var b = a * 7; return b; }"
        )
        constants = constants_from_prediction(prediction)
        assert constants["b.0"] == 42

    def test_fold_constants_rewrites_uses(self):
        prediction = analyse(
            "func main(n) { var a = 6; var b = a * 7; return b; }"
        )
        replaced = fold_constants(prediction.function, prediction)
        assert replaced >= 1
        from repro.ir.instructions import Return
        from repro.ir.values import Constant

        returns = [
            i for i in prediction.function.instructions() if isinstance(i, Return)
        ]
        assert any(r.value == Constant(42) for r in returns)

    def test_copies_extracted(self):
        prediction = analyse(
            "func main(n) { var a = n; var b = a; return b; }",
            param_ranges={"n": RangeSet.symbol("n.0")},
        )
        copies = copies_from_prediction(prediction)
        assert copies.get("a.0") == "n.0"
        assert copies.get("b.0") == "n.0"

    def test_fold_copies_rewrites(self):
        prediction = analyse(
            "func main(n) { var a = n; var b = a + 1; return b; }",
            param_ranges={"n": RangeSet.symbol("n.0")},
        )
        replaced = fold_copies(prediction.function, prediction)
        assert replaced >= 1


class TestBoundsChecks:
    def test_classify_index(self):
        assert classify_index(RangeSet.span(0, 9), 10) == SAFE
        assert classify_index(RangeSet.span(0, 10), 10) == UNKNOWN
        assert classify_index(RangeSet.span(10, 20), 10) == UNSAFE
        assert classify_index(RangeSet.span(-5, -1), 10) == UNSAFE
        assert classify_index(RangeSet.bottom(), 10) == UNKNOWN
        assert classify_index(RangeSet.span(0, 5), None) == UNKNOWN

    def test_loop_indexed_access_proven_safe(self):
        prediction = analyse(
            """
            func main(n) {
              array a[100];
              for (i = 0; i < 100; i = i + 1) { a[i] = i; }
              return a[0];
            }
            """
        )
        reports = analyse_bounds_checks(prediction.function, prediction)
        stores = [r for r in reports if r.kind == "store"]
        assert all(r.classification == SAFE for r in stores)
        assert eliminated_fraction(reports) == pytest.approx(1.0)

    def test_unknown_index_needs_check(self):
        prediction = analyse(
            """
            func main(n) {
              array a[100];
              a[n] = 1;
              return a[0];
            }
            """
        )
        reports = analyse_bounds_checks(prediction.function, prediction)
        store = next(r for r in reports if r.kind == "store")
        assert store.classification == UNKNOWN

    def test_masked_index_safe(self):
        prediction = analyse(
            """
            func main(n) {
              array a[64];
              a[n % 64] = 1;
              return a[0];
            }
            """
        )
        reports = analyse_bounds_checks(prediction.function, prediction)
        store = next(r for r in reports if r.kind == "store")
        assert store.classification == SAFE

    def test_dynamic_elimination_weighted(self):
        prediction = analyse(
            """
            func main(n) {
              array a[10];
              for (i = 0; i < 10; i = i + 1) { a[i] = i; }
              a[n] = 0;
              return a[0];
            }
            """
        )
        reports = analyse_bounds_checks(prediction.function, prediction)
        fraction = dynamic_checks_eliminated(reports, prediction)
        # The hot in-loop store is safe; the cold unknown store is not.
        assert fraction > 0.8


class TestArrayAlias:
    def test_even_odd_strides_disjoint(self):
        assert provably_disjoint(RangeSet.span(0, 98, 2), RangeSet.span(1, 99, 2))

    def test_overlapping_ranges_alias(self):
        assert not provably_disjoint(RangeSet.span(0, 50), RangeSet.span(40, 90))

    def test_separated_ranges_disjoint(self):
        assert provably_disjoint(RangeSet.span(0, 49), RangeSet.span(50, 99))

    def test_different_arrays_never_alias(self):
        prediction = analyse(
            """
            func main(n) {
              array a[10];
              array b[10];
              a[0] = 1;
              b[0] = 2;
              return a[0] + b[0];
            }
            """
        )
        accesses = collect_accesses(prediction.function, prediction)
        a_store = next(x for x in accesses if x.array == "a" and x.kind == "store")
        b_store = next(x for x in accesses if x.array == "b" and x.kind == "store")
        assert not may_alias(a_store, b_store)

    def test_halves_split_loop_disambiguated(self):
        prediction = analyse(
            """
            func main(n) {
              array a[100];
              for (i = 0; i < 50; i = i + 1) {
                a[i] = a[i + 50] + 1;
              }
              return a[0];
            }
            """
        )
        accesses = collect_accesses(prediction.function, prediction)
        pairs = independent_pairs(accesses)
        in_loop = [
            p
            for p in pairs
            if not (p.first.index_range.is_bottom or p.second.index_range.is_bottom)
        ]
        assert any(p.independent for p in in_loop)
        assert disambiguated_fraction(pairs) > 0.0


class TestLayout:
    def test_hot_path_becomes_fallthrough(self):
        prediction = analyse(
            """
            func main(n) {
              var x = 1;
              var t = 0;
              if (x > 100) { t = 999; } else { t = 1; }
              return t;
            }
            """
        )
        layout = chain_layout(prediction.function, prediction.edge_frequency)
        assert set(layout) == set(prediction.function.blocks)
        assert layout[0] == prediction.function.entry_label
        # The hot else-arm must directly follow the branch block.
        (label,) = prediction.branch_probability
        branch = prediction.function.block(label).terminator
        position = {block: i for i, block in enumerate(layout)}
        assert position[branch.false_target] == position[label] + 1

    def test_layout_quality_improves_fallthrough(self):
        source = """
        func main(n) {
          var t = 0;
          for (i = 0; i < 40; i = i + 1) {
            if (i % 8 == 0) { t = t + 100; } else { t = t + 1; }
          }
          return t;
        }
        """
        prediction = analyse(source)
        from tests.helpers import compile_and_prepare
        from repro.profiling import run_module

        module, _ = compile_and_prepare(source)
        run = run_module(module, args=[0])
        dynamic = {
            (src, dst): count
            for (func, src, dst), count in run.edge_counts.items()
            if func == "main"
        }
        original, optimised = layout_quality(
            prediction.function, prediction.edge_frequency, dynamic
        )
        assert optimised >= original

    def test_fallthrough_fraction_bounds(self):
        assert fallthrough_fraction([], {}) == 0.0
        assert fallthrough_fraction(["a", "b"], {("a", "b"): 10}) == 1.0
        assert fallthrough_fraction(["b", "a"], {("a", "b"): 10}) == 0.0
