"""SARIF 2.1.0 export: structure, level mapping, and the validator."""

from __future__ import annotations

import json

import pytest

from repro.diagnostics import (
    ERROR,
    INFO,
    LEVEL_FOR_SEVERITY,
    RULES,
    SARIF_VERSION,
    WARNING,
    check_source,
    render_sarif,
    sarif_report,
    validate_sarif,
)

DEFECT_FIXTURES = [
    "dead_branch_a.toy",
    "bounds_a.toy",
    "div_b.toy",
    "nonterm_a.toy",
    "uninit_b.toy",
    "zero_trip_a.toy",
]


@pytest.mark.parametrize("name", DEFECT_FIXTURES)
def test_real_reports_validate(fixture_source, name):
    report = check_source(fixture_source(name), program=name)
    assert report.findings
    log = sarif_report(report)
    assert validate_sarif(log) == []


def test_log_shape(fixture_source):
    report = check_source(fixture_source("div_a.toy"), program="div_a.toy")
    log = sarif_report(report)
    assert log["version"] == SARIF_VERSION == "2.1.0"
    assert log["$schema"].endswith("sarif-2.1.0.json")
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-check"
    # The full rule catalogue ships with every log, findings or not.
    assert [r["id"] for r in driver["rules"]] == [r.id for r in RULES]
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning", "note")
    result = run["results"][0]
    assert result["ruleId"] == "div-by-zero"
    assert result["level"] == "error"
    assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
    location = result["locations"][0]
    assert location["physicalLocation"]["artifactLocation"]["uri"] == "div_a.toy"
    assert location["physicalLocation"]["region"]["startLine"] >= 1
    assert location["logicalLocations"][0]["kind"] == "function"
    assert "evidence" in result["properties"]


def test_level_mapping_is_total():
    assert LEVEL_FOR_SEVERITY == {
        ERROR: "error",
        WARNING: "warning",
        INFO: "note",
    }


def test_artifact_uri_override(fixture_source):
    report = check_source(fixture_source("div_a.toy"), program="div_a.toy")
    log = sarif_report(report, artifact_uri="src/prog.toy")
    uri = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert uri == "src/prog.toy"


def test_render_is_json(fixture_source):
    report = check_source(fixture_source("div_a.toy"), program="div_a.toy")
    assert json.loads(render_sarif(report)) == sarif_report(report)


def test_empty_report_validates():
    report = check_source("func main() { return 0; }", program="empty")
    assert report.findings == []
    log = sarif_report(report)
    assert validate_sarif(log) == []
    assert log["runs"][0]["results"] == []


class TestValidatorRejects:
    def _valid(self, fixture_source) -> dict:
        report = check_source(
            fixture_source("bounds_a.toy"), program="bounds_a.toy"
        )
        return sarif_report(report)

    def test_wrong_version(self, fixture_source):
        log = self._valid(fixture_source)
        log["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(log))

    def test_missing_runs(self):
        assert validate_sarif({"version": SARIF_VERSION, "runs": []})

    def test_missing_driver_name(self, fixture_source):
        log = self._valid(fixture_source)
        del log["runs"][0]["tool"]["driver"]["name"]
        assert any("driver.name" in p for p in validate_sarif(log))

    def test_bad_level(self, fixture_source):
        log = self._valid(fixture_source)
        log["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in p for p in validate_sarif(log))

    def test_unknown_rule_id(self, fixture_source):
        log = self._valid(fixture_source)
        log["runs"][0]["results"][0]["ruleId"] = "no-such-rule"
        assert any("ruleId" in p for p in validate_sarif(log))

    def test_mismatched_rule_index(self, fixture_source):
        log = self._valid(fixture_source)
        log["runs"][0]["results"][0]["ruleIndex"] = 0  # dead-branch slot
        assert any("ruleIndex" in p for p in validate_sarif(log))

    def test_bad_start_line(self, fixture_source):
        log = self._valid(fixture_source)
        region = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(log))
