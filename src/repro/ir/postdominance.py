"""Postdominator computation (used by heuristic predictors).

Runs the same iterative algorithm as :mod:`repro.ir.dominance` on the
reversed CFG with a virtual exit node joining all return blocks (and, as
an engineering necessity, blocks of infinite loops, which otherwise have
no path to any exit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import CFG

VIRTUAL_EXIT = "<exit>"


class PostDominatorTree:
    """Immediate postdominators over a CFG snapshot."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        reachable = cfg.reachable()
        # Reverse graph: successors of X are X's CFG predecessors.
        self._rsucc: Dict[str, List[str]] = {VIRTUAL_EXIT: []}
        self._rpred: Dict[str, List[str]] = {VIRTUAL_EXIT: []}
        for label in reachable:
            self._rsucc[label] = list(cfg.predecessors[label])
            self._rpred[label] = []
        exits = [
            label for label in reachable if not cfg.successors[label]
        ]
        # Blocks unable to reach an exit (infinite loops) get a virtual
        # exit edge so the fixed point covers them.
        can_exit = self._blocks_reaching(exits)
        for label in reachable:
            if label in exits or label not in can_exit:
                self._rsucc[VIRTUAL_EXIT].append(label)
        for label, succs in self._rsucc.items():
            for succ in succs:
                self._rpred[succ].append(label)
        self.ipdom: Dict[str, Optional[str]] = {}
        self._compute()

    def _blocks_reaching(self, exits: List[str]) -> Set[str]:
        seen: Set[str] = set(exits)
        worklist = list(exits)
        while worklist:
            label = worklist.pop()
            for pred in self.cfg.predecessors[label]:
                if pred not in seen:
                    seen.add(pred)
                    worklist.append(pred)
        return seen

    def _compute(self) -> None:
        order = self._reverse_postorder()
        index = {label: i for i, label in enumerate(order)}
        ipdom: Dict[str, Optional[str]] = {label: None for label in order}
        ipdom[VIRTUAL_EXIT] = VIRTUAL_EXIT
        changed = True
        while changed:
            changed = False
            for label in order:
                if label == VIRTUAL_EXIT:
                    continue
                preds = [p for p in self._rpred[label] if ipdom.get(p) is not None]
                if not preds:
                    continue
                new = preds[0]
                for pred in preds[1:]:
                    new = self._intersect(ipdom, index, new, pred)
                if ipdom[label] != new:
                    ipdom[label] = new
                    changed = True
        ipdom[VIRTUAL_EXIT] = None
        self.ipdom = ipdom

    def _reverse_postorder(self) -> List[str]:
        visited: Set[str] = {VIRTUAL_EXIT}
        postorder: List[str] = []
        stack = [(VIRTUAL_EXIT, 0)]
        while stack:
            node, child_index = stack.pop()
            succs = self._rsucc[node]
            if child_index < len(succs):
                stack.append((node, child_index + 1))
                child = succs[child_index]
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                postorder.append(node)
        postorder.reverse()
        return postorder

    @staticmethod
    def _intersect(ipdom, index, a: str, b: str) -> str:
        while a != b:
            while index.get(a, 0) > index.get(b, 0):
                a = ipdom[a]
            while index.get(b, 0) > index.get(a, 0):
                b = ipdom[b]
        return a

    def postdominates(self, a: str, b: str) -> bool:
        """True when every path from ``b`` to the exit passes through ``a``."""
        node: Optional[str] = b
        while node is not None and node != VIRTUAL_EXIT:
            if node == a:
                return True
            node = self.ipdom.get(node)
        return a == node
