"""Ablation: array-content tracking (the paper's alias-analysis knob).

Paper §3.5: "conditional branches based on a value loaded from memory
often cannot be predicted ... Depending on the quality of the alias
analysis being performed ... this might occur anywhere from 10% to 90%
of the time."

Two measurements:

* on *table-driven* programs (class tables, flag arrays, palettes) the
  simplest content analysis rescues the load-controlled branches from
  heuristic fallback -- asserted;
* on the fp suite the load-controlled branches are self-referential
  accumulators whose contents widen to ⊥ either way -- reported for
  context, showing the knob's workload dependence (the paper's
  "anywhere from 10% to 90%").
"""

from benchmarks.conftest import emit
from repro.core import VRPConfig, VRPPredictor
from repro.ir import prepare_module
from repro.lang import compile_source

TABLE_DRIVEN = {
    "classtable": """
        func main(n) {
          array kind[128];
          for (c = 0; c < 128; c = c + 1) {
            kind[c] = c % 5;
          }
          var letters = 0;
          for (i = 0; i < 500; i = i + 1) {
            var c = input() % 128;
            if (kind[c] == 4) { letters = letters + 1; }
          }
          return letters;
        }
    """,
    "flagarray": """
        func main(n) {
          array seen[64];
          for (i = 0; i < 200; i = i + 1) {
            seen[input() % 64] = 1;
          }
          var count = 0;
          for (i = 0; i < 64; i = i + 1) {
            if (seen[i] == 1) { count = count + 1; }
          }
          return count;
        }
    """,
    "palette": """
        func main(n) {
          array palette[16];
          for (i = 0; i < 16; i = i + 1) {
            palette[i] = (i * 17) % 256;
          }
          var bright = 0;
          for (q = 0; q < 300; q = q + 1) {
            var colour = palette[input() % 16];
            if (colour > 128) { bright = bright + 1; }
          }
          return bright;
        }
    """,
}


def fallbacks_for_source(source, track_arrays):
    module = compile_source(source)
    infos = prepare_module(module)
    config = VRPConfig(track_arrays=track_arrays)
    prediction = VRPPredictor(config=config).predict_module(module, infos)
    return len(prediction.all_branches()), len(prediction.heuristic_branches())


def count_suite_fallbacks(prepared_workloads, track_arrays):
    config = VRPConfig(track_arrays=track_arrays)
    total, heuristic = 0, 0
    for prepared in prepared_workloads:
        prediction = VRPPredictor(config=config).predict_module(
            prepared.module, prepared.ssa_infos
        )
        total += len(prediction.all_branches())
        heuristic += len(prediction.heuristic_branches())
    return total, heuristic


def test_array_tracking_ablation(benchmark, results_dir, prepared_fp_suite):
    targeted = benchmark.pedantic(
        lambda: {
            name: (
                fallbacks_for_source(src, False),
                fallbacks_for_source(src, True),
            )
            for name, src in TABLE_DRIVEN.items()
        },
        rounds=1,
        iterations=1,
    )
    suite_off = count_suite_fallbacks(prepared_fp_suite, False)
    suite_on = count_suite_fallbacks(prepared_fp_suite, True)

    lines = ["Ablation: array-content tracking (paper's 10%-90% alias knob)", ""]
    lines.append("Table-driven programs (load-controlled branches):")
    lines.append(f"{'program':>12s} {'branches':>9s} {'fallbacks off':>14s} {'fallbacks on':>13s}")
    for name, ((branches, off), (_, on)) in targeted.items():
        lines.append(f"{name:>12s} {branches:>9d} {off:>14d} {on:>13d}")
    lines.append("")
    lines.append(
        "fp suite (self-referential accumulators, tracking cannot help): "
        f"{suite_off[1]}/{suite_off[0]} fallbacks off, "
        f"{suite_on[1]}/{suite_on[0]} on"
    )
    emit(results_dir, "ablation_arrays.txt", "\n".join(lines))

    # On table-driven code the analysis must free branches from heuristics.
    for name, ((_, off), (_, on)) in targeted.items():
        assert on < off, f"tracking freed no branch in {name}"
