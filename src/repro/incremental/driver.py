"""The incremental interprocedural driver.

A module's analysis decomposes exactly along the weakly connected
components of its call graph (:mod:`repro.incremental.depgraph`): no
call edge crosses a component boundary, so each component's fixed point
is self-contained and Tarjan's bottom-up order restricted to one
component equals the order a whole-module run would visit it in.  The
driver exploits that:

1. fingerprint every function (:mod:`repro.incremental.fingerprint`)
   and address each component by the salted hash of its members'
   semantic fingerprints (plus the entry seeding, when the entry
   function is a member);
2. components whose address hits the store *and* whose members' exact
   fingerprints still match are **replayed**: final predictions, jump
   and return function state, and context-refined seeds are
   deserialized verbatim;
3. every other component is **reanalyzed**: a sub-module holding just
   its functions runs through the ordinary
   :class:`~repro.core.interprocedural.InterproceduralVRP`, and the
   result is stored for next time;
4. the module-level products -- summary taint, provenance sources,
   summaries -- are recomputed over the union, so rendered predict /
   check / ranges output is byte-identical to a cold run.

The exact-fingerprint guard exists because rendered output mentions SSA
names and block labels, and because return ranges may carry a callee's
symbolic names into a caller's values: a rename-only edit keeps the
component's address (the semantic fingerprints are rename-stable) but
must still reanalyze it, and doing so refreshes the stored entry under
the same address.

Work counters and fixed-point statistics are reconstructed from the
store and match a cold run at ``context_depth`` 0; at k >= 1 the
context memo trajectory differs (a cold run re-analyses contexts during
rounds an isolated component never runs), so only the rendered analysis
output -- not the counter telemetry -- is part of the byte-identity
contract there.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Set, Tuple

from repro.core import counters as counters_mod
from repro.core.callgraph import CallGraph
from repro.core.config import VRPConfig
from repro.core.interprocedural import InterproceduralVRP, ModulePrediction
from repro.core.propagation import FunctionPrediction, HeuristicFn
from repro.core.rangeset import RangeSet
from repro.incremental import serialize
from repro.incremental.depgraph import SummaryDepGraph
from repro.incremental.fingerprint import (
    exact_fingerprint,
    fingerprint_salt,
    function_fingerprint,
)
from repro.incremental.serialize import PayloadError
from repro.incremental.store import IncrementalStore
from repro.ir.function import Module
from repro.ir.ssa import SSAInfo

#: Bumped whenever the stored payload layout changes.
PAYLOAD_VERSION = 1


class IncrementalOutcome:
    """What one incremental run replayed, reanalyzed, and why."""

    def __init__(
        self,
        reanalyzed: Tuple[str, ...],
        replayed: Tuple[str, ...],
        components_reanalyzed: int,
        components_replayed: int,
        store_hits: int,
        store_misses: int,
        store_stats: dict,
    ):
        #: Functions whose analysis ran this time, sorted.
        self.reanalyzed = reanalyzed
        #: Functions replayed from the store, sorted.
        self.replayed = replayed
        self.components_reanalyzed = components_reanalyzed
        self.components_replayed = components_replayed
        #: Component-level store lookups for *this run*.
        self.store_hits = store_hits
        self.store_misses = store_misses
        #: Cumulative store counters (post-run snapshot).
        self.store_stats = store_stats

    def as_metrics(self) -> dict:
        """The metrics schema v8 ``incremental`` document."""
        return {
            "reanalyzed": len(self.reanalyzed),
            "replayed": len(self.replayed),
            "components": {
                "reanalyzed": self.components_reanalyzed,
                "replayed": self.components_replayed,
            },
            "store": {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "evictions": int(
                    self.store_stats.get("memory", {}).get("evictions", 0)
                ),
            },
        }

    def __repr__(self) -> str:
        return (
            f"IncrementalOutcome(reanalyzed={len(self.reanalyzed)}, "
            f"replayed={len(self.replayed)})"
        )


def component_key(
    members: Tuple[str, ...],
    semantic_fps: Dict[str, str],
    salt: str,
    entry: str,
    entry_param_ranges: Optional[Dict[str, RangeSet]],
) -> str:
    """The store address of one component's summaries."""
    entry_seed = None
    if entry in members:
        entry_seed = {
            "entry": entry,
            "ranges": [
                [param, serialize.rangeset_to_json(rangeset)]
                for param, rangeset in sorted((entry_param_ranges or {}).items())
            ],
        }
    document = json.dumps(
        {
            "v": PAYLOAD_VERSION,
            "salt": salt,
            "members": [[name, semantic_fps[name]] for name in members],
            "entry": entry_seed,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def analyse_module_incremental(
    module: Module,
    ssa_infos: Dict[str, SSAInfo],
    store: IncrementalStore,
    config: Optional[VRPConfig] = None,
    heuristic: Optional[HeuristicFn] = None,
    entry: str = "main",
    entry_param_ranges: Optional[Dict[str, RangeSet]] = None,
    max_rounds: int = 8,
    analysis_cache=None,
) -> Tuple[ModulePrediction, IncrementalOutcome]:
    """Analyse a prepared module, replaying clean components from ``store``.

    Returns the :class:`ModulePrediction` (byte-identical in rendered
    form to :func:`repro.core.interprocedural.analyse_module`) and the
    :class:`IncrementalOutcome` describing what was reused.
    """
    config = config or VRPConfig()
    # The assembly shell provides the cached callgraph, purity, and the
    # post-convergence product methods; its fixed point never runs.
    shell = InterproceduralVRP(
        module,
        ssa_infos,
        config=config,
        heuristic=heuristic,
        entry=entry,
        entry_param_ranges=entry_param_ranges,
        max_rounds=max_rounds,
        analysis_cache=analysis_cache,
    )
    depgraph = SummaryDepGraph(shell.callgraph)
    salt = fingerprint_salt(config)
    semantic_fps = {
        name: function_fingerprint(function, salt=salt)
        for name, function in module.functions.items()
    }
    exact_fps = {
        name: exact_fingerprint(function)
        for name, function in module.functions.items()
    }

    predictions: Dict[str, FunctionPrediction] = {}
    param_sets: Dict[str, Dict[str, RangeSet]] = {}
    return_sets: Dict[str, RangeSet] = {}
    refined: Dict[str, Dict[str, dict]] = {}
    reanalyzed: Set[str] = set()
    replayed: Set[str] = set()
    components_reanalyzed = 0
    components_replayed = 0
    store_hits = 0
    store_misses = 0
    rounds_used = 0
    round_cap_components = 0
    contexts_analyzed = 0
    context_counters = counters_mod.Counters()
    summary_cache_stats = {"hits": 0, "misses": 0, "evictions": 0}

    for members in depgraph.components:
        key = component_key(
            members, semantic_fps, salt, entry, entry_param_ranges
        )
        payload, _tier = store.get(key)
        decoded = None
        if payload is not None:
            decoded = _decode_component(module, members, exact_fps, payload)
        if decoded is None:
            store_misses += 1
            decoded = _analyse_component(
                module,
                ssa_infos,
                members,
                config,
                heuristic,
                entry,
                entry_param_ranges,
                max_rounds,
            )
            store.put(key, _encode_component(members, exact_fps, decoded))
            reanalyzed.update(members)
            components_reanalyzed += 1
        else:
            store_hits += 1
            replayed.update(members)
            components_replayed += 1
        predictions.update(decoded["predictions"])
        param_sets.update(decoded["param_sets"])
        return_sets.update(decoded["return_sets"])
        refined.update(decoded["refined"])
        rounds_used = max(rounds_used, decoded["rounds"])
        if decoded["round_cap"]:
            round_cap_components += 1
        contexts_analyzed += decoded["contexts_analyzed"]
        context_counters.merge(decoded["context_counters"])
        for field in summary_cache_stats:
            summary_cache_stats[field] += int(
                decoded["summary_cache"].get(field, 0)
            )

    store.note_functions(hits=len(replayed), misses=len(reanalyzed))
    if not depgraph.components:
        # A cold run's fixed point needs one no-change round past round
        # 1 even over an empty module; match its reported round count.
        rounds_used = 2

    # -- assembly: module-level products over the union ----------------------
    shell.predictions = {
        name: predictions[name]
        for name in shell.callgraph.bottom_up_order()
        if name in predictions
    }
    shell.param_sets = param_sets
    shell.return_sets = return_sets
    shell.round_cap_hit = round_cap_components > 0
    shell._contexts_analyzed = contexts_analyzed
    shell._context_refined = _refresh_refined_sites(shell.callgraph, refined)

    cache_lookups = summary_cache_stats["hits"] + summary_cache_stats["misses"]
    summary_cache_stats["hit_rate"] = round(
        summary_cache_stats["hits"] / cache_lookups if cache_lookups else 0.0, 6
    )

    total = counters_mod.Counters()
    for prediction in shell.predictions.values():
        total.merge(prediction.counters)
    total.merge(context_counters)
    total.interprocedural_round_caps += round_cap_components

    summary_taint, taint_sources = shell._compute_taint()
    prediction = ModulePrediction(
        module,
        dict(shell.predictions),
        total,
        rounds_used,
        summaries=shell._build_summaries(),
        summary_taint=summary_taint,
        taint_sources=taint_sources,
        interprocedural={
            "rounds": rounds_used,
            "max_rounds": max_rounds,
            "converged": round_cap_components == 0,
            "round_cap_hits": round_cap_components,
            "context_depth": shell.context_depth,
            "contexts_analyzed": contexts_analyzed,
            "summary_cache": summary_cache_stats,
        },
    )
    outcome = IncrementalOutcome(
        reanalyzed=tuple(sorted(reanalyzed)),
        replayed=tuple(sorted(replayed)),
        components_reanalyzed=components_reanalyzed,
        components_replayed=components_replayed,
        store_hits=store_hits,
        store_misses=store_misses,
        store_stats=store.stats(),
    )
    return prediction, outcome


# -- per-component analysis --------------------------------------------------


def _analyse_component(
    module: Module,
    ssa_infos: Dict[str, SSAInfo],
    members: Tuple[str, ...],
    config: VRPConfig,
    heuristic: Optional[HeuristicFn],
    entry: str,
    entry_param_ranges: Optional[Dict[str, RangeSet]],
    max_rounds: int,
) -> dict:
    """Run the ordinary fixed point over one component in isolation.

    The sub-module keeps the original module's function insertion order
    (it drives call-site discovery order and hence jump-function merge
    order) and the original function objects (no cloning).
    """
    member_set = set(members)
    sub = Module(module.name)
    for name, function in module.functions.items():
        if name in member_set:
            sub.add_function(function)
    driver = InterproceduralVRP(
        sub,
        {name: ssa_infos[name] for name in sub.functions},
        config=config,
        heuristic=heuristic,
        entry=entry,
        entry_param_ranges=entry_param_ranges,
        max_rounds=max_rounds,
    )
    # The summary cache tallies into the perf layer's *global* record;
    # store this component's delta, not a cumulative snapshot, so the
    # assembled module total reproduces a cold run's telemetry.
    cache_before = driver._context_cache.stats()
    sub_prediction = driver.run()
    cache_after = driver._context_cache.stats()
    cache_delta = {
        field: cache_after[field] - cache_before[field]
        for field in ("hits", "misses", "evictions")
    }
    return {
        "predictions": dict(driver.predictions),
        "param_sets": dict(driver.param_sets),
        "return_sets": dict(driver.return_sets),
        "refined": {
            name: dict(dests)
            for name, dests in driver._context_refined.items()
            if dests
        },
        "rounds": sub_prediction.rounds,
        "round_cap": driver.round_cap_hit,
        "contexts_analyzed": driver._contexts_analyzed,
        "context_counters": driver._context_counters,
        "summary_cache": cache_delta,
    }


# -- payload encoding --------------------------------------------------------


def _encode_component(
    members: Tuple[str, ...], exact_fps: Dict[str, str], decoded: dict
) -> dict:
    refined = []
    for name in members:
        dests = decoded["refined"].get(name)
        if not dests:
            continue
        refined.append(
            [
                name,
                [
                    # Sites are re-derived from the live IR on replay so
                    # line numbers never go stale; store only identity.
                    [dest, _strip_sites(descriptor)]
                    for dest, descriptor in dests.items()
                ],
            ]
        )
    return {
        "v": PAYLOAD_VERSION,
        "exact": {name: exact_fps[name] for name in members},
        "functions": [
            [name, serialize.prediction_to_json(decoded["predictions"][name])]
            for name in members
        ],
        "param_sets": [
            [name, serialize.rangeset_map_to_json(decoded["param_sets"][name])]
            for name in members
            if name in decoded["param_sets"]
        ],
        "return_sets": [
            [name, serialize.rangeset_to_json(decoded["return_sets"][name])]
            for name in members
            if name in decoded["return_sets"]
        ],
        "refined": refined,
        "rounds": decoded["rounds"],
        "round_cap": decoded["round_cap"],
        "contexts_analyzed": decoded["contexts_analyzed"],
        "context_counters": serialize.counters_to_json(
            decoded["context_counters"]
        ),
        "summary_cache": dict(decoded["summary_cache"]),
    }


def _strip_sites(descriptor: dict) -> dict:
    return {
        field: value for field, value in descriptor.items() if field != "sites"
    }


def _decode_component(
    module: Module,
    members: Tuple[str, ...],
    exact_fps: Dict[str, str],
    payload: dict,
) -> Optional[dict]:
    """Deserialize one component entry; ``None`` means treat as a miss."""
    try:
        if payload.get("v") != PAYLOAD_VERSION:
            return None
        stored_exact = payload.get("exact")
        if stored_exact != {name: exact_fps[name] for name in members}:
            # Same semantics, different names/labels: rendered output
            # would differ, so the entry is not replayable.
            return None
        predictions: Dict[str, FunctionPrediction] = {}
        for name, data in payload["functions"]:
            predictions[name] = serialize.prediction_from_json(
                module.functions[name], data
            )
        if set(predictions) != set(members):
            return None
        param_sets = {
            name: serialize.rangeset_map_from_json(data)
            for name, data in payload["param_sets"]
        }
        return_sets = {
            name: serialize.rangeset_from_json(data)
            for name, data in payload["return_sets"]
        }
        refined: Dict[str, Dict[str, dict]] = {}
        for name, dests in payload.get("refined", ()):
            refined[name] = {dest: dict(descriptor) for dest, descriptor in dests}
        return {
            "predictions": predictions,
            "param_sets": param_sets,
            "return_sets": return_sets,
            "refined": refined,
            "rounds": int(payload["rounds"]),
            "round_cap": bool(payload["round_cap"]),
            "contexts_analyzed": int(payload["contexts_analyzed"]),
            "context_counters": serialize.counters_from_json(
                payload["context_counters"]
            ),
            "summary_cache": dict(payload["summary_cache"]),
        }
    except (KeyError, TypeError, ValueError, PayloadError):
        return None


def _refresh_refined_sites(
    callgraph: CallGraph, refined: Dict[str, Dict[str, dict]]
) -> Dict[str, Dict[str, dict]]:
    """Rebuild context-refined seed descriptors against the live IR.

    Stored descriptors carry only the identity (caller, dest, callee,
    range); call-site locations are re-derived here so provenance
    chains cite current line numbers even after pure line-shift edits.
    """
    out: Dict[str, Dict[str, dict]] = {}
    for name, dests in refined.items():
        rebuilt: Dict[str, dict] = {}
        sites = callgraph.sites_in_caller(name)
        for dest, descriptor in dests.items():
            site = next(
                (
                    s
                    for s in sites
                    if s.instruction.dest is not None
                    and s.instruction.dest.name == dest
                ),
                None,
            )
            rebuilt[dest] = {
                "kind": descriptor.get("kind", "call"),
                "function": descriptor.get("function", name),
                "callee": descriptor.get("callee"),
                "range": descriptor.get("range"),
                "sites": [
                    {
                        "function": site.caller,
                        "block": site.block_label,
                        "line": getattr(site.instruction, "loc", None),
                        "callee": site.callee,
                    }
                ]
                if site is not None
                else [],
            }
        out[name] = rebuilt
    return out
