"""Control-flow graph queries over a :class:`~repro.ir.function.Function`.

The CFG is implied by block terminators; this module materialises
predecessor maps, traversal orders, back-edge identification (via DFS
from the entry, as the paper prescribes for loop-carried detection) and
critical-edge splitting (needed so each assertion edge has its own block).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Branch, Jump, Phi

Edge = Tuple[str, str]


class CFG:
    """A snapshot of a function's control-flow structure.

    Construct a new one after any structural mutation of the function.
    """

    def __init__(self, function: Function):
        self.function = function
        self.successors: Dict[str, List[str]] = {}
        self.predecessors: Dict[str, List[str]] = {label: [] for label in function.blocks}
        for label, block in function.blocks.items():
            succs = block.successors()
            self.successors[label] = succs
            for succ in succs:
                if succ not in self.predecessors:
                    raise KeyError(f"terminator of {label} targets unknown block {succ!r}")
                self.predecessors[succ].append(label)
        self._back_edges: FrozenSet[Edge] = frozenset()
        self._dfs_order: List[str] = []
        self._compute_dfs()

    # -- traversal ---------------------------------------------------------

    def _compute_dfs(self) -> None:
        entry = self.function.entry_label
        assert entry is not None
        color: Dict[str, int] = {}  # 0 unseen (absent), 1 on stack, 2 done
        back_edges: Set[Edge] = set()
        order: List[str] = []
        # Iterative DFS with explicit colour marking to find back edges.
        stack: List[Tuple[str, int]] = [(entry, 0)]
        color[entry] = 1
        order.append(entry)
        while stack:
            node, child_index = stack.pop()
            succs = self.successors[node]
            if child_index < len(succs):
                stack.append((node, child_index + 1))
                child = succs[child_index]
                state = color.get(child, 0)
                if state == 0:
                    color[child] = 1
                    order.append(child)
                    stack.append((child, 0))
                elif state == 1:
                    back_edges.add((node, child))
            else:
                color[node] = 2
        self._back_edges = frozenset(back_edges)
        self._dfs_order = order

    @property
    def back_edges(self) -> FrozenSet[Edge]:
        """Edges (src, dst) that close a cycle in DFS from the entry."""
        return self._back_edges

    def is_back_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._back_edges

    def dfs_preorder(self) -> List[str]:
        """Reachable blocks in DFS pre-order from the entry."""
        return list(self._dfs_order)

    def reverse_postorder(self) -> List[str]:
        entry = self.function.entry_label
        assert entry is not None
        visited: Set[str] = set()
        postorder: List[str] = []
        stack: List[Tuple[str, int]] = [(entry, 0)]
        visited.add(entry)
        while stack:
            node, child_index = stack.pop()
            succs = self.successors[node]
            if child_index < len(succs):
                stack.append((node, child_index + 1))
                child = succs[child_index]
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                postorder.append(node)
        postorder.reverse()
        return postorder

    def reachable(self) -> Set[str]:
        return set(self._dfs_order)

    # -- edges ---------------------------------------------------------------

    def edges(self) -> List[Edge]:
        out: List[Edge] = []
        for src, succs in self.successors.items():
            for dst in succs:
                out.append((src, dst))
        return out

    def is_critical(self, src: str, dst: str) -> bool:
        """An edge is critical when src has >1 successors and dst >1 preds."""
        return len(self.successors[src]) > 1 and len(self.predecessors[dst]) > 1


def split_critical_edges(function: Function) -> int:
    """Give every conditional out-edge a destination with a unique predecessor.

    Out-edges of a :class:`Branch` whose destination has more than one
    predecessor get a fresh forwarding block inserted.  Returns the number
    of edges split.  Must run *before* SSA construction (phis are assumed
    absent in multi-predecessor destinations being split; pre-existing phi
    incomings are redirected only for the single-slot case).  After this
    pass assertion (Pi) nodes can be placed at the top of each branch
    successor.
    """
    pred_count: Dict[str, int] = {label: 0 for label in function.blocks}
    for block in function.blocks.values():
        for succ in block.successors():
            pred_count[succ] += 1
    split_count = 0
    for label in list(function.blocks):
        term = function.blocks[label].terminator
        if not isinstance(term, Branch):
            continue
        for slot in ("true_target", "false_target"):
            dst = getattr(term, slot)
            if pred_count[dst] <= 1:
                continue
            mid = function.new_block(hint="split")
            mid.append(Jump(dst))
            setattr(term, slot, mid.label)
            _redirect_phis(function.block(dst), old_pred=label, new_pred=mid.label)
            split_count += 1
    return split_count


def _redirect_phis(block: BasicBlock, old_pred: str, new_pred: str) -> None:
    for phi in block.phis():
        phi.incomings = [
            (new_pred if label == old_pred else label, value)
            for label, value in phi.incomings
        ]


def remove_unreachable_blocks(function: Function) -> List[str]:
    """Delete blocks not reachable from the entry; returns removed labels.

    Phi incomings from removed predecessors are dropped.
    """
    cfg = CFG(function)
    reachable = cfg.reachable()
    removed = [label for label in function.blocks if label not in reachable]
    for label in removed:
        del function.blocks[label]
    for block in function.blocks.values():
        for phi in block.phis():
            phi.incomings = [
                (label, value) for label, value in phi.incomings if label in reachable
            ]
    return removed
