"""Operand values for the three-address IR.

The IR distinguishes three kinds of operands:

* :class:`Constant` -- an immediate integer (or float) known at compile time.
* :class:`Temp` -- a virtual register.  Before SSA construction several
  instructions may define the same :class:`Temp` name; after SSA
  construction every name has exactly one definition point.
* :class:`Undef` -- an explicitly undefined value (used for variables that
  may be read before being written on some path).

Values are compared by content, not identity, so a :class:`Temp` is simply
a symbolic handle onto its name.
"""

from __future__ import annotations

from typing import Union


class Value:
    """Base class for all IR operand values."""

    __slots__ = ()

    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def is_temp(self) -> bool:
        return isinstance(self, Temp)


class Constant(Value):
    """An immediate integer (or float) operand."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float]):
        if isinstance(value, bool):
            value = int(value)
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))


class Temp(Value):
    """A virtual register, identified by name.

    After SSA construction names carry a version suffix (``x.2``) and every
    name has a single definition.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Temp({self.name!r})"

    def __str__(self) -> str:
        return f"%{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Temp) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Temp", self.name))


class Undef(Value):
    """An undefined value (read-before-write on some path)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Undef()"

    def __str__(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undef)

    def __hash__(self) -> int:
        return hash("Undef")


UNDEF = Undef()
