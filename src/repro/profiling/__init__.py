"""Execution profiling substrate: IR interpreter + profile aggregation.

Stands in for the paper's instrumented binaries: interpreting a module
yields exact block/edge/branch counts.  ``train`` runs build a
:class:`BranchProfile` (the profile-guided predictor); ``ref`` runs
define the ground truth predictors are scored against.
"""

from repro.profiling.interpreter import (
    AssertionViolation,
    ExecutionResult,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    run_module,
)
from repro.profiling.profile_data import BranchProfile, ProfilePredictor

__all__ = [
    "AssertionViolation",
    "BranchProfile",
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
    "ProfilePredictor",
    "StepLimitExceeded",
    "run_module",
]
