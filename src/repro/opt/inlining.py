"""Function inlining guided by predicted call frequencies (paper §6).

"Code layout, cache optimization & inlining": compilers inline simple,
hot calls.  With VRP the heat of a call site is *predicted*, no profile
needed.  The transformation here works directly on SSA-form functions:

* the call block is split at the call; the tail keeps the instructions
  after it (and the terminator);
* the callee's blocks are cloned with every label, temp and array name
  prefixed (single assignment is preserved by construction);
* parameters become copies into the cloned parameter versions;
* every cloned ``return v`` becomes a jump to the tail, whose new phi
  merges the return values into the call's destination.

The result passes the SSA verifier and executes identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.callgraph import CallGraph
from repro.core.interprocedural import ModulePrediction
from repro.ir.function import BasicBlock, Function, Module
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Input,
    Instruction,
    Jump,
    Load,
    Phi,
    Pi,
    Return,
    Store,
    UnOp,
)
from repro.ir.values import Constant, Temp, Undef, Value
from repro.opt._verify import verify_after


class InlineError(Exception):
    """Raised when a call site cannot be inlined."""


def inline_call(caller: Function, call: Call, callee: Function, tag: str) -> None:
    """Inline one call site in place.  ``tag`` must be unique per inline."""
    if callee.name == caller.name:
        raise InlineError("cannot inline a direct self-recursive call")
    if len(call.args) != len(callee.params):
        raise InlineError("arity mismatch at call site")
    call_block = call.block
    if call_block is None or call_block.label not in caller.blocks:
        raise InlineError("call instruction is not attached to the caller")

    rename = _Renamer(tag)
    cloned_blocks, return_sites = _clone_callee(callee, rename)

    # Split the call block: everything after the call moves to the tail.
    tail = BasicBlock(f"{tag}$cont")
    index = call_block.instructions.index(call)
    moved = call_block.instructions[index + 1 :]
    call_block.instructions = call_block.instructions[:index]
    for instr in moved:
        instr.block = tail
        tail.instructions.append(instr)

    # Successor phis referenced the call block; they now come from the tail.
    for succ_label in tail.successors() if tail.is_terminated() else []:
        succ = caller.blocks.get(succ_label)
        if succ is None:
            continue
        for phi in succ.phis():
            phi.incomings = [
                (tail.label if label == call_block.label else label, value)
                for label, value in phi.incomings
            ]

    # Bind arguments to the cloned parameter versions, then enter the clone.
    for param, argument in zip(callee.params, call.args):
        call_block.instructions.append(
            _attach(Copy(Temp(rename.temp(f"{param}.0")), argument), call_block)
        )
    entry_label = rename.label(callee.entry_label or "")
    call_block.instructions.append(_attach(Jump(entry_label), call_block))

    # Return values converge on the tail.
    if call.dest is not None:
        if len(return_sites) == 1:
            label, value = return_sites[0]
            tail.instructions.insert(0, _attach(Copy(call.dest, value), tail))
        else:
            phi = Phi(call.dest, [(label, value) for label, value in return_sites])
            tail.instructions.insert(0, _attach(phi, tail))

    for name, size in callee.arrays.items():
        caller.arrays[rename.array(name)] = size
    for block in cloned_blocks:
        caller.blocks[block.label] = block
    caller.blocks[tail.label] = tail
    verify_after(caller, "inline_call")


class _Renamer:
    """Prefixes labels, temps and arrays so clones never collide."""

    def __init__(self, tag: str):
        self.tag = tag

    def label(self, label: str) -> str:
        return f"{self.tag}${label}"

    def temp(self, name: str) -> str:
        return f"{self.tag}${name}"

    def array(self, name: str) -> str:
        return f"{self.tag}${name}"

    def value(self, value: Value) -> Value:
        if isinstance(value, Temp):
            return Temp(self.temp(value.name))
        return value


def _attach(instr: Instruction, block: BasicBlock) -> Instruction:
    instr.block = block
    return instr


def _clone_callee(
    callee: Function, rename: _Renamer
) -> Tuple[List[BasicBlock], List[Tuple[str, Value]]]:
    """Cloned blocks (returns rewritten to jumps) + (label, value) per return."""
    blocks: List[BasicBlock] = []
    return_sites: List[Tuple[str, Value]] = []
    tail_label = f"{rename.tag}$cont"
    for label, block in callee.blocks.items():
        clone = BasicBlock(rename.label(label))
        for instr in block.instructions:
            if isinstance(instr, Return):
                return_sites.append((clone.label, rename.value(instr.value)))
                clone.instructions.append(_attach(Jump(tail_label), clone))
            else:
                clone.instructions.append(_attach(_clone(instr, rename), clone))
        blocks.append(clone)
    if not return_sites:
        raise InlineError(f"{callee.name} has no return")
    return blocks, return_sites


def _clone(instr: Instruction, rename: _Renamer) -> Instruction:
    clone = _clone_raw(instr, rename)
    clone.loc = instr.loc
    return clone


def _clone_raw(instr: Instruction, rename: _Renamer) -> Instruction:
    value = rename.value
    if isinstance(instr, BinOp):
        return BinOp(value(instr.dest), instr.op, value(instr.lhs), value(instr.rhs))
    if isinstance(instr, UnOp):
        return UnOp(value(instr.dest), instr.op, value(instr.operand))
    if isinstance(instr, Cmp):
        return Cmp(value(instr.dest), instr.op, value(instr.lhs), value(instr.rhs))
    if isinstance(instr, Copy):
        return Copy(value(instr.dest), value(instr.src))
    if isinstance(instr, Phi):
        return Phi(
            value(instr.dest),
            [(rename.label(label), value(incoming)) for label, incoming in instr.incomings],
        )
    if isinstance(instr, Pi):
        parent = rename.temp(instr.parent) if instr.parent else None
        return Pi(
            value(instr.dest), value(instr.src), instr.op, value(instr.bound), parent
        )
    if isinstance(instr, Load):
        return Load(value(instr.dest), rename.array(instr.array), value(instr.index))
    if isinstance(instr, Store):
        return Store(rename.array(instr.array), value(instr.index), value(instr.value))
    if isinstance(instr, Call):
        dest = value(instr.dest) if instr.dest is not None else None
        return Call(dest, instr.callee, [value(a) for a in instr.args])
    if isinstance(instr, Input):
        return Input(value(instr.dest))
    if isinstance(instr, Jump):
        return Jump(rename.label(instr.target))
    if isinstance(instr, Branch):
        return Branch(
            value(instr.cond),
            rename.label(instr.true_target),
            rename.label(instr.false_target),
        )
    raise InlineError(f"cannot clone {instr!r}")


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


@dataclass
class InlineDecision:
    caller: str
    callee: str
    block_label: str
    frequency: float
    callee_size: int


def inline_hot_calls(
    module: Module,
    prediction: ModulePrediction,
    max_callee_size: int = 40,
    min_frequency: float = 0.5,
    max_inlines: int = 16,
    entry: str = "main",
) -> List[InlineDecision]:
    """Inline small, hot, non-recursive callees; returns what was done.

    Call-site heat is the *predicted* block frequency from VRP.  The
    module is mutated; callers should re-run prediction afterwards.
    """
    callgraph = CallGraph(module)
    recursive = {
        name for name in module.functions if callgraph.is_recursive(name)
    }
    candidates: List[InlineDecision] = []
    for site in callgraph.call_sites:
        callee = module.functions.get(site.callee)
        if callee is None or site.callee in recursive:
            continue
        if site.caller == site.callee:
            continue
        caller_prediction = prediction.functions.get(site.caller)
        if caller_prediction is None:
            continue
        frequency = caller_prediction.block_frequency.get(site.block_label, 0.0)
        size = callee.instruction_count()
        if frequency >= min_frequency and size <= max_callee_size:
            candidates.append(
                InlineDecision(
                    caller=site.caller,
                    callee=site.callee,
                    block_label=site.block_label,
                    frequency=frequency,
                    callee_size=size,
                )
            )
    candidates.sort(key=lambda d: -d.frequency)
    performed: List[InlineDecision] = []
    for sequence, decision in enumerate(candidates[:max_inlines]):
        caller = module.function(decision.caller)
        callee = module.function(decision.callee)
        call = _find_call(caller, decision.block_label, decision.callee)
        if call is None:
            continue  # a prior inline restructured this block
        inline_call(caller, call, callee, tag=f"inl{sequence}")
        performed.append(decision)
    return performed


def _find_call(caller: Function, block_label: str, callee: str) -> Optional[Call]:
    block = caller.blocks.get(block_label)
    if block is None:
        return None
    for instr in block.instructions:
        if isinstance(instr, Call) and instr.callee == callee:
            return instr
    return None
