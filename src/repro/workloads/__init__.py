"""Synthetic benchmark programs standing in for SPEC92.

``suite("int")`` / ``suite("fp")`` return the ten integer-style and ten
numeric-style workloads; each carries distinct train and ref inputs
(see :mod:`repro.workloads.registry` for why that distinction matters).
"""

from repro.workloads.registry import (
    Workload,
    all_workloads,
    get_workload,
    lcg_stream,
    suite,
)

__all__ = ["Workload", "all_workloads", "get_workload", "lcg_stream", "suite"]
