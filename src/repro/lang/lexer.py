"""Lexer for the toy language.

Supports integer literals (decimal and hexadecimal), identifiers,
keywords, the operator set in :mod:`repro.lang.tokens`, ``//`` line
comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from typing import List

from repro.lang.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenKind


class LexError(Exception):
    """Raised on an unrecognised character or malformed literal."""

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"lex error at {line}:{column}: {message}")


class Lexer:
    """Single-pass lexer producing a token list ending with EOF."""

    def __init__(self, source: str):
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.position >= len(self.source):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # -- internals ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.source):
                if self.source[self.position] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.position += 1

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.position >= len(self.source):
                        raise LexError("unterminated block comment", start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        char = self._peek()
        line, column = self.line, self.column
        if char.isdigit():
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_word(line, column)
        for op in OPERATORS:
            if self.source.startswith(op, self.position):
                self._advance(len(op))
                return Token(TokenKind.OP, op, line, column)
        if char in PUNCTUATION:
            self._advance()
            return Token(TokenKind.PUNCT, char, line, column)
        raise LexError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.position
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek().isalnum():
                self._advance()
            text = self.source[start : self.position]
            try:
                value = int(text, 16)
            except ValueError:
                raise LexError(f"malformed hex literal {text!r}", line, column) from None
            return Token(TokenKind.INT, text, line, column, value=value)
        while self._peek().isdigit():
            self._advance()
        if self._peek() in (".", "e", "E"):
            raise LexError("floating-point literals are not supported", line, column)
        text = self.source[start : self.position]
        return Token(TokenKind.INT, text, line, column, value=int(text))

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.position]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
