"""Interprocedural value range propagation (paper §3.7).

Jump functions: at each call site, the argument operands' range sets are
recorded; a callee's formal parameter range is the call-frequency
weighted merge of the jump functions over its call sites.  Return
functions flow the callee's merged return range back into call results.
"The entire program is treated almost as if it were one huge control
flow graph": we iterate per-function propagation in bottom-up call-graph
order until parameter and return ranges reach a fixed point (recursive
components iterate; a round cap bounds pathological cases, and hitting
it while ranges are still moving raises the
``vrp.interprocedural.round_cap`` event plus a counter instead of
settling silently).

Context sensitivity (``VRPConfig.context_depth``, default 0): with
k >= 1, a call to a provably *range-effect-free* callee is no longer
answered from the all-sites merge -- the callee is re-analysed under the
site's own abstracted argument ranges, to a nesting depth of k, with the
(function, context) → return-range results memoized in a
:class:`~repro.core.summaries.SummaryCache`.  k = 0 short-circuits all
of that and reproduces the context-insensitive analysis byte-for-byte.

After the fixed point converges the driver distils
:class:`~repro.core.summaries.ModuleSummaries` and a *summary taint*
map -- which SSA names in each function are data-dependent on an
interprocedural fact (a parameter seeded from call sites, or a call
result seeded from a callee's return range).  ``repro explain`` turns
that into per-branch provenance tags and ``repro check`` into
cross-function provenance chains.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core import counters as counters_mod
from repro.core.callgraph import CallGraph
from repro.core.config import VRPConfig
from repro.core.perf import context as perf_context
from repro.core.propagation import (
    FunctionPrediction,
    HeuristicFn,
    PropagationEngine,
)
from repro.core.rangeset import BOTTOM, RangeSet, TOP, merge_weighted
from repro.core.summaries import (
    ModuleSummaries,
    SummaryCache,
    abstract_argument_set,
    build_summaries,
    compute_purity,
    context_key,
)
from repro.ir.function import Module
from repro.ir.instructions import Branch, Call
from repro.ir.ssa import SSAInfo, build_ssa_edges
from repro.ir.values import Constant, Temp

#: Branch provenance tags (``repro explain``).
PROVENANCE_HEURISTIC = "heuristic"
PROVENANCE_INTERPROCEDURAL = "interprocedural"
PROVENANCE_INTRAPROCEDURAL = "intraprocedural"


class ModulePrediction:
    """Predictions for every function of a module.

    The keyword-only extras are filled in by :class:`InterproceduralVRP`;
    single-function (intraprocedural) constructions leave them at their
    defaults and every accessor degrades gracefully.
    """

    def __init__(
        self,
        module: Module,
        functions: Dict[str, FunctionPrediction],
        counters: counters_mod.Counters,
        rounds: int,
        *,
        summaries: Optional[ModuleSummaries] = None,
        summary_taint: Optional[Dict[str, Dict[str, Tuple[str, ...]]]] = None,
        taint_sources: Optional[Dict[str, Dict[str, dict]]] = None,
        interprocedural: Optional[dict] = None,
    ):
        self.module = module
        self.functions = functions
        self.counters = counters
        self.rounds = rounds
        #: Per-function interprocedural summaries (None on the intra path).
        self.summaries = summaries
        #: function -> tainted SSA name -> seed names that reach it.
        self.summary_taint = summary_taint or {}
        #: function -> seed SSA name -> provenance descriptor.
        self.taint_sources = taint_sources or {}
        #: Fixed-point statistics (metrics schema v7), or None.
        self.interprocedural = interprocedural

    def branch_probability(self, function: str, label: str) -> Optional[float]:
        prediction = self.functions.get(function)
        if prediction is None:
            return None
        return prediction.branch_probability.get(label)

    def all_branches(self) -> Dict[Tuple[str, str], float]:
        out: Dict[Tuple[str, str], float] = {}
        for name, prediction in self.functions.items():
            for label, probability in prediction.branch_probability.items():
                out[(name, label)] = probability
        return out

    def heuristic_branches(self) -> set:
        return {
            (name, label)
            for name, prediction in self.functions.items()
            for label in prediction.used_heuristic
        }

    # -- interprocedural provenance -------------------------------------------

    def tainted_names(self, function: str) -> Set[str]:
        """SSA names in ``function`` that depend on interprocedural facts."""
        return set(self.summary_taint.get(function, ()))

    def provenance_chain(self, function: str, name: str) -> List[dict]:
        """Call-site provenance for one tainted SSA name (possibly [])."""
        seeds = self.summary_taint.get(function, {}).get(name, ())
        sources = self.taint_sources.get(function, {})
        return [sources[seed] for seed in seeds if seed in sources]

    def branch_provenance(self, function: str, label: str) -> str:
        """Where branch ``label``'s probability came from.

        ``heuristic`` -- the Ball-Larus fallback decided it;
        ``interprocedural`` -- resolved from ranges whose value depends
        on a summary (parameter jump function or callee return range);
        ``intraprocedural`` -- resolved from purely local ranges.
        """
        prediction = self.functions.get(function)
        if prediction is None or label not in prediction.branch_probability:
            return PROVENANCE_INTRAPROCEDURAL
        if label in prediction.used_heuristic:
            return PROVENANCE_HEURISTIC
        fn = self.module.functions.get(function)
        block = fn.blocks.get(label) if fn is not None else None
        if block is not None and block.instructions:
            terminator = block.instructions[-1]
            if isinstance(terminator, Branch) and isinstance(terminator.cond, Temp):
                if terminator.cond.name in self.summary_taint.get(function, {}):
                    return PROVENANCE_INTERPROCEDURAL
        return PROVENANCE_INTRAPROCEDURAL

    def __repr__(self) -> str:
        return (
            f"ModulePrediction({self.module.name!r}, "
            f"{len(self.functions)} functions, rounds={self.rounds})"
        )


class InterproceduralVRP:
    """Whole-program value range propagation driver."""

    def __init__(
        self,
        module: Module,
        ssa_infos: Dict[str, SSAInfo],
        config: Optional[VRPConfig] = None,
        heuristic: Optional[HeuristicFn] = None,
        entry: str = "main",
        entry_param_ranges: Optional[Dict[str, RangeSet]] = None,
        max_rounds: int = 8,
        analysis_cache=None,
    ):
        self.module = module
        self.ssa_infos = ssa_infos
        self.config = config or VRPConfig()
        self.heuristic = heuristic
        self.entry = entry
        self.entry_param_ranges = entry_param_ranges or {}
        self.max_rounds = max_rounds
        # The call graph is an invalidation-aware pass-manager analysis;
        # consume the cached instance when the caller runs under an
        # AnalysisCache instead of rebuilding it per run.
        if analysis_cache is not None:
            self.callgraph: CallGraph = analysis_cache.get("callgraph")
        else:
            self.callgraph = CallGraph(module)
        # Jump-function results: function -> param name -> merged range.
        self.param_sets: Dict[str, Dict[str, RangeSet]] = {}
        # Return functions: function -> merged return range.
        self.return_sets: Dict[str, RangeSet] = {}
        self.predictions: Dict[str, FunctionPrediction] = {}
        # -- context sensitivity ----------------------------------------------
        self.context_depth = max(0, int(self.config.context_depth))
        self.purity: Dict[str, bool] = (
            compute_purity(module, self.callgraph) if self.context_depth else {}
        )
        self._context_cache = SummaryCache()
        self._context_counters = counters_mod.Counters()
        self._contexts_analyzed = 0
        #: Callees currently being analysed in some context (cycle guard).
        self._context_stack: Set[str] = set()
        #: Call results the contexts refined past the merged summary:
        #: caller -> dest SSA name -> taint-seed descriptor.  Only the
        #: top-level (per-function) engines record here; throwaway
        #: context engines do not describe the functions they analyse.
        self._context_refined: Dict[str, Dict[str, dict]] = {}
        self.round_cap_hit = False

    # -- driver ---------------------------------------------------------------

    def run(self) -> ModulePrediction:
        # Activated here as well as per-engine so the cross-engine work
        # (jump-function merges below) shares the caches.
        with perf_context.activate(self.config.perf):
            return self._run()

    def _run(self) -> ModulePrediction:
        from repro.observability import events as trace_events
        from repro.observability import tracer as tracing

        tracer = tracing.active()
        total = counters_mod.Counters()
        order = self.callgraph.bottom_up_order()
        rounds_used = 0
        changed = False
        for round_number in range(1, self.max_rounds + 1):
            rounds_used = round_number
            changed = False
            # Memoized context results embed *other* callees' return
            # ranges as of this round; those move between rounds, so the
            # memo is only valid within one (stats stay cumulative).
            self._context_cache.clear()
            with tracer.span("interprocedural-round"):
                for name in order:
                    prediction = self._analyse_one(name)
                    self.predictions[name] = prediction
                    if self._record_return(name, prediction):
                        changed = True
                if self._recompute_jump_functions():
                    changed = True
            if not changed and round_number > 1:
                break
        if changed and rounds_used == self.max_rounds:
            # The cap silenced a still-moving fixed point: the ranges of
            # the recursive components were frozen as-is, not converged.
            self.round_cap_hit = True
            total.interprocedural_round_caps += 1
            tracer.emit(
                trace_events.RoundCap(
                    module=self.module.name,
                    rounds=rounds_used,
                    functions=tuple(self._recursive_functions()),
                )
            )
        for prediction in self.predictions.values():
            total.merge(prediction.counters)
        total.merge(self._context_counters)
        summary_taint, taint_sources = self._compute_taint()
        return ModulePrediction(
            self.module,
            dict(self.predictions),
            total,
            rounds_used,
            summaries=self._build_summaries(),
            summary_taint=summary_taint,
            taint_sources=taint_sources,
            interprocedural=self._stats(rounds_used),
        )

    def _recursive_functions(self) -> List[str]:
        out: List[str] = []
        for component in self.callgraph.sccs():
            if len(component) > 1 or self.callgraph.is_recursive(component[0]):
                out.extend(component)
        return sorted(out)

    def _stats(self, rounds_used: int) -> dict:
        return {
            "rounds": rounds_used,
            "max_rounds": self.max_rounds,
            "converged": not self.round_cap_hit,
            "round_cap_hits": 1 if self.round_cap_hit else 0,
            "context_depth": self.context_depth,
            "contexts_analyzed": self._contexts_analyzed,
            "summary_cache": self._context_cache.stats(),
        }

    # -- per-function analysis -----------------------------------------------------

    def _analyse_one(self, name: str) -> FunctionPrediction:
        function = self.module.function(name)
        info = self.ssa_infos[name]
        engine = PropagationEngine(
            function,
            info,
            config=self.config,
            heuristic=self.heuristic,
            param_ranges=self._params_for(name),
            call_effect=self._call_effect,
        )
        if self.context_depth:
            self._context_refined[name] = {}
            engine.call_effect = self._context_effect(
                engine, self.context_depth, record=True
            )
        return engine.run()

    def _params_for(self, name: str) -> Dict[str, RangeSet]:
        if name == self.entry:
            base = {
                param: self.entry_param_ranges.get(param, BOTTOM)
                for param in self.module.function(name).params
            }
            return base
        known = self.param_sets.get(name)
        if known is None:
            # Not called (yet): unknown parameters.
            return {param: BOTTOM for param in self.module.function(name).params}
        return known

    def _call_effect(self, call: Call) -> RangeSet:
        return self.return_sets.get(call.callee, BOTTOM)

    # -- context-sensitive call effects (k >= 1) -----------------------------------

    def _context_effect(
        self, engine: PropagationEngine, depth: int, record: bool = False
    ) -> Callable[[Call], RangeSet]:
        """A call-effect closure answering calls per calling context."""

        def effect(call: Call) -> RangeSet:
            return self._context_call(engine, call, depth, record=record)

        return effect

    def _context_call(
        self, engine: PropagationEngine, call: Call, depth: int, record: bool = False
    ) -> RangeSet:
        callee = call.callee
        merged = self._call_effect(call)
        function = self.module.functions.get(callee)
        if function is None or not self.purity.get(callee, False):
            # Undefined or effectful callee: the merged summary is all
            # the context could ever soundly say.
            return merged
        params = function.params
        if len(call.args) != len(params):
            return merged
        arg_sets = tuple(
            abstract_argument_set(engine.value_of(arg)) for arg in call.args
        )
        if all(rangeset.is_bottom for rangeset in arg_sets):
            # The context carries no information beyond the merge.
            return merged
        key = context_key(callee, arg_sets, depth)
        cached = self._context_cache.get(key)
        if cached is not None:
            self._record_refinement(engine, call, cached, record)
            return cached
        if callee in self._context_stack:
            # Recursive context chain: answer from the merged fixed
            # point rather than unrolling the recursion.
            return merged
        result = self._analyse_in_context(callee, params, arg_sets, depth)
        self._context_cache.put(key, result)
        self._record_refinement(engine, call, result, record)
        return result

    def _record_refinement(
        self, engine: PropagationEngine, call: Call, result: RangeSet, record: bool
    ) -> None:
        """Remember a call result the context answered better than ⊥.

        These become taint seeds alongside the merged return functions,
        so ``branch_provenance`` and the diagnostics' provenance chains
        also cover ranges that exist *only* because of the context --
        the merged summary of such a callee is typically poisoned.
        """
        if not record or call.dest is None or result.is_bottom:
            return
        site = next(
            (
                s
                for s in self.callgraph.sites_in_caller(engine.function.name)
                if s.instruction is call
            ),
            None,
        )
        self._context_refined[engine.function.name][call.dest.name] = {
            "kind": "call",
            "function": engine.function.name,
            "callee": call.callee,
            "range": str(result),
            "sites": [self._site_descriptor(site)] if site is not None else [],
        }

    def _analyse_in_context(
        self,
        callee: str,
        params: List[str],
        arg_sets: Tuple[RangeSet, ...],
        depth: int,
    ) -> RangeSet:
        from repro.observability import tracer as tracing

        tracer = tracing.active()
        function = self.module.function(callee)
        info = self.ssa_infos[callee]
        self._context_stack.add(callee)
        try:
            with tracer.span(f"analysis:summary:{callee}"):
                context_engine = PropagationEngine(
                    function,
                    info,
                    config=self.config,
                    heuristic=self.heuristic,
                    param_ranges=dict(zip(params, arg_sets)),
                    call_effect=self._call_effect,
                )
                if depth > 1:
                    context_engine.call_effect = self._context_effect(
                        context_engine, depth - 1
                    )
                prediction = context_engine.run()
        finally:
            self._context_stack.discard(callee)
        self._contexts_analyzed += 1
        self._context_counters.merge(prediction.counters)
        result = prediction.return_set
        if result.is_top:
            result = BOTTOM
        return result

    # -- fixed-point bookkeeping ------------------------------------------------------

    def _record_return(self, name: str, prediction: FunctionPrediction) -> bool:
        new_set = prediction.return_set
        if new_set.is_top:
            new_set = BOTTOM
        old_set = self.return_sets.get(name)
        if old_set is not None and old_set.approx_equal(new_set, self.config.tolerance):
            return False
        self.return_sets[name] = new_set
        return True

    def _recompute_jump_functions(self) -> bool:
        """Merge argument ranges over all call sites, call-frequency weighted."""
        changed = False
        accumulated: Dict[str, List[List[Tuple[float, RangeSet]]]] = {}
        for site in self.callgraph.call_sites:
            caller_prediction = self.predictions.get(site.caller)
            if caller_prediction is None:
                continue
            callee = site.callee
            if callee not in self.module.functions:
                continue
            params = self.module.function(callee).params
            weight = caller_prediction.block_frequency.get(site.block_label, 0.0)
            if weight <= 0.0:
                weight = 1e-6  # cold call sites still contribute a little
            slots = accumulated.setdefault(
                callee, [[] for _ in params]
            )
            for position, arg in enumerate(site.instruction.args):
                if position >= len(params):
                    break
                slots[position].append(
                    (weight, self._argument_range(caller_prediction, arg))
                )
        for callee, slots in accumulated.items():
            params = self.module.function(callee).params
            merged: Dict[str, RangeSet] = {}
            for position, param in enumerate(params):
                contributions = slots[position] if position < len(slots) else []
                merged_set = merge_weighted(
                    contributions, max_ranges=self.config.max_ranges
                )
                if merged_set.is_top:
                    merged_set = BOTTOM
                merged[param] = merged_set
            old = self.param_sets.get(callee)
            if old is None or any(
                not old.get(param, BOTTOM).approx_equal(
                    merged[param], self.config.tolerance
                )
                for param in params
            ):
                self.param_sets[callee] = merged
                changed = True
        return changed

    def _argument_range(
        self, prediction: FunctionPrediction, arg
    ) -> RangeSet:
        if isinstance(arg, Constant):
            return RangeSet.constant(arg.value)
        if isinstance(arg, Temp):
            value = prediction.values.get(arg.name, BOTTOM)
            if value.is_top:
                return BOTTOM
            # Symbolic ranges name SSA variables of the *caller*; they are
            # meaningless inside the callee, so widen them away.
            if value.is_set and value.symbols():
                hull = value.hull()
                if hull is not None and not hull.symbols():
                    return RangeSet.from_ranges([hull])
                return BOTTOM
            return value
        return BOTTOM

    # -- post-convergence products ------------------------------------------------

    def _build_summaries(self) -> ModuleSummaries:
        purity = self.purity or compute_purity(self.module, self.callgraph)
        block_frequencies = {
            name: prediction.block_frequency
            for name, prediction in self.predictions.items()
        }
        return build_summaries(
            self.module,
            self.callgraph,
            purity,
            self.param_sets,
            self.return_sets,
            block_frequencies,
        )

    def _compute_taint(
        self,
    ) -> Tuple[Dict[str, Dict[str, Tuple[str, ...]]], Dict[str, Dict[str, dict]]]:
        """Which SSA names depend on interprocedural facts, and why.

        Seeds are (a) formal parameters of non-entry functions whose
        jump function produced a real range (entry parameters are
        external assumptions, not summaries) and (b) call results whose
        callee's return range is a real range (⊥ seeds contribute
        nothing a heuristic tag would not already say).  Taint closes
        forward over SSA def-use edges; every tainted name remembers
        which seeds reach it, so diagnostics can cite the call sites.
        """
        taint: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        sources: Dict[str, Dict[str, dict]] = {}
        for name, function in self.module.functions.items():
            prediction = self.predictions.get(name)
            if prediction is None:
                continue
            info = self.ssa_infos[name]
            seeds: Dict[str, dict] = {}
            if name != self.entry:
                merged = self.param_sets.get(name, {})
                for param, ssa_name in info.param_names.items():
                    rangeset = merged.get(param)
                    if rangeset is not None and not rangeset.is_bottom:
                        seeds[ssa_name] = {
                            "kind": "param",
                            "function": name,
                            "param": param,
                            "range": str(rangeset),
                            "sites": [
                                self._site_descriptor(site)
                                for site in self.callgraph.sites_of_callee(name)
                            ],
                        }
            for site in self.callgraph.sites_in_caller(name):
                instr = site.instruction
                if instr.dest is None:
                    continue
                returned = self.return_sets.get(site.callee)
                if returned is None or returned.is_bottom:
                    continue
                seeds[instr.dest.name] = {
                    "kind": "call",
                    "function": name,
                    "callee": site.callee,
                    "range": str(returned),
                    "sites": [self._site_descriptor(site)],
                }
            # Context-refined call results (k >= 1): real ranges that
            # exist only per calling context, invisible to the merged
            # return functions above.
            seeds.update(self._context_refined.get(name, {}))
            if not seeds:
                continue
            sources[name] = seeds
            taint[name] = self._forward_taint(function, info, seeds)
        return taint, sources

    def _site_descriptor(self, site) -> dict:
        return {
            "function": site.caller,
            "block": site.block_label,
            "line": getattr(site.instruction, "loc", None),
            "callee": site.callee,
        }

    def _forward_taint(
        self, function, info: SSAInfo, seeds: Dict[str, dict]
    ) -> Dict[str, Tuple[str, ...]]:
        edges = build_ssa_edges(function, info)
        reach: Dict[str, Set[str]] = {seed: {seed} for seed in seeds}
        worklist = list(seeds)
        while worklist:
            current = worklist.pop()
            current_reach = reach[current]
            for use in edges.uses_of.get(current, ()):
                result = use.result
                if result is None:
                    continue
                target = reach.setdefault(result.name, set())
                before = len(target)
                target.update(current_reach)
                if len(target) != before:
                    worklist.append(result.name)
        return {name: tuple(sorted(names)) for name, names in reach.items()}


def analyse_module(
    module: Module,
    ssa_infos: Dict[str, SSAInfo],
    config: Optional[VRPConfig] = None,
    heuristic: Optional[HeuristicFn] = None,
    entry: str = "main",
    entry_param_ranges: Optional[Dict[str, RangeSet]] = None,
    max_rounds: int = 8,
    analysis_cache=None,
) -> ModulePrediction:
    """Run interprocedural value range propagation over a module."""
    driver = InterproceduralVRP(
        module,
        ssa_infos,
        config=config,
        heuristic=heuristic,
        entry=entry,
        entry_param_ranges=entry_param_ranges,
        max_rounds=max_rounds,
        analysis_cache=analysis_cache,
    )
    return driver.run()
