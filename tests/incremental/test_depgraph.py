"""SummaryDepGraph: weakly connected components and invalidation sets."""

from repro.core.callgraph import CallGraph
from repro.incremental.depgraph import SummaryDepGraph

from tests.incremental.helpers import MULTI_COMPONENT, build


def graph_of(source: str) -> SummaryDepGraph:
    module, _ = build(source)
    return SummaryDepGraph(CallGraph(module))


class TestComponents:
    def test_three_components(self):
        graph = graph_of(MULTI_COMPONENT)
        assert sorted(sorted(c) for c in graph.components) == [
            ["apply", "helper", "main"],
            ["island"],
            ["leaf", "outer"],
        ]

    def test_members_are_in_bottom_up_order(self):
        graph = graph_of(MULTI_COMPONENT)
        component = graph.component_of("main")
        # Callees come first: helper before apply before main, matching
        # the interprocedural driver's replay/storage order.
        assert component == ("helper", "apply", "main")

    def test_component_index_is_consistent(self):
        graph = graph_of(MULTI_COMPONENT)
        for index, members in enumerate(graph.components):
            for name in members:
                assert graph.component_index[name] == index

    def test_recursion_stays_in_one_component(self):
        graph = graph_of(
            """
            func fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
            func main(n) { return fact(n); }
            """
        )
        assert len(graph.components) == 1
        assert graph.component_of("fact") == graph.component_of("main")

    def test_mutual_recursion_stays_in_one_component(self):
        graph = graph_of(
            """
            func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            func main(n) { return even(n); }
            """
        )
        assert len(graph.components) == 1

    def test_callers_and_callees_share_a_component(self):
        # Weak connectivity: a shared *callee* links two otherwise
        # unrelated callers, because its summary feeds both.
        graph = graph_of(
            """
            func shared(x) { return x + 1; }
            func a(n) { return shared(n); }
            func b(n) { return shared(n * 2); }
            func main(n) { return a(n) + b(n); }
            """
        )
        assert len(graph.components) == 1


class TestInvalidation:
    def test_affected_is_the_whole_component(self):
        graph = graph_of(MULTI_COMPONENT)
        assert graph.affected(["helper"]) == {"helper", "apply", "main"}
        assert graph.affected(["leaf"]) == {"leaf", "outer"}
        assert graph.affected(["island"]) == {"island"}

    def test_affected_unions_components(self):
        graph = graph_of(MULTI_COMPONENT)
        assert graph.affected(["island", "outer"]) == {
            "island", "leaf", "outer"
        }

    def test_dependents_excludes_the_edit_itself(self):
        graph = graph_of(MULTI_COMPONENT)
        assert graph.dependents(["helper"]) == {"apply", "main"}
        assert graph.dependents(["island"]) == set()

    def test_unknown_names_are_ignored(self):
        graph = graph_of(MULTI_COMPONENT)
        assert graph.affected(["nosuch"]) == set()
        assert graph.affected([]) == set()
