"""Hypothesis profiles for the property/fuzz tests.

Default ("ci"): derandomized, so the suite is deterministic run to run.
Exploration: set HYPOTHESIS_PROFILE=fuzz (optionally with
``--hypothesis-seed=N``) to search fresh random cases.
"""

import os

from hypothesis import settings

settings.register_profile("ci", derandomize=True)
settings.register_profile("fuzz", derandomize=False)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
