"""The sharded tier: routing, affinity, backpressure, drain, parity."""

import http.client
import json
import threading

import pytest

from repro.cli import main
from repro.observability.metrics import validate_report_dict
from repro.server import ReproServer, ServeClient, ServerError
from repro.server.frontend import ShardedServer
from repro.server.service import request_identity

PROGRAM = """
func main(n) {
  var total = 0;
  for (i = 0; i < 50; i = i + 1) {
    if (i > 40) { total = total + i; }
  }
  return total;
}
"""

OTHER = "func main(n) { if (n > 0) { return 1; } return 0; }"


def start_sharded(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("queue_size", 8)
    server = ShardedServer(port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.port)
    client.wait_ready()
    return server, client


@pytest.fixture
def sharded():
    server, client = start_sharded()
    yield server, client
    server.drain(timeout=10)


def raw_post(port, path, body_bytes, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("POST", path, body=body_bytes, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, sharded):
        _, client = sharded
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["inflight"] == 0
        assert health["shards"] == 2

    def test_predict(self, sharded):
        _, client = sharded
        response = client.analyze("predict", PROGRAM)
        assert response["status"] == "ok"
        assert response["output"].startswith("function")
        assert "main" in response["output"]
        assert response["cached"] is None

    def test_batch_preserves_order_and_isolates_errors(self, sharded):
        _, client = sharded
        results = client.batch(
            [
                {"command": "predict", "source": PROGRAM},
                {"command": "predict", "source": "func main( { oops"},
                {"command": "ir", "source": OTHER},
            ]
        )
        assert [r["status"] for r in results] == ["ok", "error", "ok"]
        assert "define" in results[2]["output"] or results[2]["output"]

    def test_unknown_route_404(self, sharded):
        server, _ = sharded
        status, _, _ = raw_post(server.port, "/v1/nope", b"{}")
        assert status == 404

    def test_malformed_json_400(self, sharded):
        server, _ = sharded
        status, _, body = raw_post(server.port, "/v1/predict", b"{nope")
        assert status == 400
        assert json.loads(body)["status"] == "error"

    def test_protocol_error_400(self, sharded):
        server, _ = sharded
        status, _, body = raw_post(server.port, "/v1/predict", b"{}")
        assert status == 400
        assert "source" in json.loads(body)["error"]

    def test_missing_content_length_411(self, sharded):
        server, _ = sharded
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/predict", skip_host=False)
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 411
        finally:
            connection.close()

    def test_oversized_body_413(self):
        server, client = start_sharded(shards=1, max_request_bytes=256)
        try:
            with pytest.raises(ServerError) as info:
                client.analyze("predict", "x" * 500)
            assert info.value.status == 413
        finally:
            server.drain(timeout=10)

    def test_trace_id_echoed(self, sharded):
        server, _ = sharded
        trace_id = "ab" * 16
        status, headers, _ = raw_post(
            server.port,
            "/v1/predict",
            json.dumps({"source": OTHER}).encode(),
            headers={"X-Repro-Trace-Id": trace_id},
        )
        assert status == 200
        assert headers.get("X-Repro-Trace-Id") == trace_id


class TestCacheAffinity:
    def test_repeat_hits_shard_memory_cache(self, sharded):
        _, client = sharded
        first = client.analyze("predict", PROGRAM)
        second = client.analyze("predict", PROGRAM)
        assert first["cached"] is None
        assert second["cached"] == "memory"
        assert first["key"] == second["key"]

    def test_routing_follows_the_ring(self, sharded):
        server, client = sharded
        # The request's content address must land on the ring's shard:
        # compute the route the front end will take, submit, and check
        # that exactly that shard's served counter moved.
        *_, key = request_identity({"source": PROGRAM}, "predict")
        expected = server.ring.route(key)
        before = [s["served"] for s in server.shard_snapshots()]
        client.analyze("predict", PROGRAM)
        after = [s["served"] for s in server.shard_snapshots()]
        for shard_id, (was, now) in enumerate(zip(before, after)):
            if shard_id == expected:
                assert now == was + 1
            else:
                assert now == was

    def test_distinct_programs_spread_over_shards(self, sharded):
        server, client = sharded
        from repro.server.loadgen import make_corpus

        for source in make_corpus(16):
            client.analyze("predict", source)
        served = [s["served"] for s in server.shard_snapshots()]
        assert sum(served) >= 16
        assert all(count > 0 for count in served), served

    def test_disk_cache_shared_across_shard_boundaries(self, tmp_path):
        # Same cache dir, two servers: an entry written by server A's
        # shard is a disk hit in server B (whose memory LRU is cold),
        # then promotes into B's shard-local memory tier.
        cache_dir = str(tmp_path / "cache")
        first, client = start_sharded(shards=1, cache_dir=cache_dir)
        try:
            client.analyze("predict", PROGRAM)
        finally:
            assert first.drain(timeout=10)
        second, client = start_sharded(shards=2, cache_dir=cache_dir)
        try:
            warm = client.analyze("predict", PROGRAM)
            assert warm["cached"] == "disk"
            again = client.analyze("predict", PROGRAM)
            assert again["cached"] == "memory"
        finally:
            assert second.drain(timeout=10)


class TestMetrics:
    def test_metricsz_document_validates_and_carries_shards(self, sharded):
        _, client = sharded
        client.analyze("predict", PROGRAM)
        document = client.metricsz()
        validate_report_dict(document)
        server_doc = document["server"]
        assert document["meta"]["shards"] == 2
        shards = server_doc["shards"]
        assert [s["shard"] for s in shards] == [0, 1]
        for shard in shards:
            assert shard["alive"] is True
            assert shard["queue"]["depth"] == 0
        assert sum(s["served"] for s in shards) >= 1
        # Aggregated cache stats keep the legacy shape CI asserts on.
        assert server_doc["cache"]["memory"]["entries"] >= 1
        assert "tracer" in server_doc

    def test_prometheus_scrape_has_shard_labels(self, sharded):
        _, client = sharded
        from repro.observability.prometheus import parse_prometheus_text

        client.analyze("predict", PROGRAM)
        families = parse_prometheus_text(client.metricsz_prometheus())
        depth = families["repro_shard_queue_depth"]["samples"]
        assert sorted(labels["shard"] for _, labels, _ in depth) == ["0", "1"]
        assert "repro_shard_queue_high_water" in families
        assert "repro_queue_depth" in families  # aggregate survives


class TestBackpressure:
    def test_full_shard_queue_is_503_with_retry_after(self):
        server, client = start_sharded(shards=1, queue_size=1)
        try:
            # Saturate the single shard: its queue admits one request,
            # so concurrent extras must bounce with 503 + Retry-After.
            import concurrent.futures

            slow = PROGRAM.replace("50", "200000")
            outcomes = []

            def submit():
                try:
                    response = client.analyze("predict", slow)
                    outcomes.append(("ok", response["status"]))
                except ServerError as error:
                    outcomes.append(("rejected", error.status))

            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
                list(pool.map(lambda _: submit(), range(6)))
            rejected = [o for o in outcomes if o[0] == "rejected"]
            assert all(status == 503 for _, status in rejected)
            # At least one must have been served; with queue_size=1 at
            # least one of six concurrent submissions must bounce.
            assert any(o[0] == "ok" for o in outcomes)
            assert rejected
        finally:
            server.drain(timeout=10)

    def test_retry_after_header_is_integer_seconds(self):
        server, _ = start_sharded(shards=1, queue_size=1)
        try:
            import concurrent.futures

            slow = json.dumps(
                {"source": PROGRAM.replace("50", "200000")}
            ).encode()

            def submit(_):
                return raw_post(server.port, "/v1/predict", slow)

            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
                responses = list(pool.map(submit, range(6)))
            rejected = [r for r in responses if r[0] == 503]
            assert rejected
            for _, headers, _ in rejected:
                retry_after = headers.get("Retry-After")
                assert retry_after is not None
                assert 1 <= int(retry_after) <= 60
        finally:
            server.drain(timeout=10)


class TestDrain:
    def test_drain_collects_every_shard(self):
        server, client = start_sharded(shards=2)
        client.analyze("predict", OTHER)
        assert server.drain(timeout=10) is True
        for handle in server.shards:
            assert not handle.process.is_alive()

    def test_drain_is_idempotent(self):
        server, _ = start_sharded(shards=1)
        assert server.drain(timeout=10) is True
        assert server.drain(timeout=10) is True

    def test_drain_without_serving_collects_shards(self):
        server = ShardedServer(port=0, shards=1)
        assert server.drain(timeout=10) is True
        assert not server.shards[0].process.is_alive()

    def test_post_during_drain_is_503(self):
        import socket
        import time

        server, client = start_sharded(shards=1)
        # A genuinely slow request (the interpreter actually runs the
        # loop) keeps the drain in its finish-in-flight phase while the
        # test pokes at it.
        slow = "func main(n) { s = 0; for (i = 0; i < 400000; i = i + 1) { s = s + i; } return s; }"
        background = threading.Thread(
            target=lambda: client.analyze("run", slow, options={"args": [0]}),
            daemon=True,
        )
        # A connection opened *before* the drain with partial bytes on
        # the wire survives the idle sweep; its request completes during
        # the drain and must bounce with 503.
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        sock.sendall(b"PO")
        background.start()
        time.sleep(0.2)  # let the slow request reach its shard
        drainer = threading.Thread(
            target=lambda: server.drain(timeout=30), daemon=True
        )
        drainer.start()
        time.sleep(0.3)  # listener closed, loop finishing in-flight
        assert server.draining is True
        body = json.dumps({"source": OTHER}).encode()
        sock.sendall(
            b"ST /v1/predict HTTP/1.0\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        raw = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
        sock.close()
        assert b"503" in raw.split(b"\r\n", 1)[0]
        assert b"draining" in raw
        background.join(timeout=30)
        drainer.join(timeout=30)
        assert server._drained.is_set()


class TestByteParity:
    def test_sharded_matches_legacy_and_cli(self, capsys, tmp_path, sharded):
        _, client = sharded
        path = tmp_path / "p.toy"
        path.write_text(PROGRAM, encoding="utf-8")
        assert main(["predict", str(path)]) == 0
        cli_output = capsys.readouterr().out

        legacy = ReproServer(port=0, workers=2)
        thread = threading.Thread(target=legacy.serve_forever, daemon=True)
        thread.start()
        try:
            legacy_client = ServeClient(port=legacy.port)
            legacy_client.wait_ready()
            legacy_response = legacy_client.analyze("predict", PROGRAM)
        finally:
            legacy.drain(timeout=10)

        sharded_response = client.analyze("predict", PROGRAM)
        assert sharded_response["output"] == cli_output
        assert sharded_response["output"] == legacy_response["output"]
        assert sharded_response["key"] == legacy_response["key"]

    def test_shard_count_does_not_change_bytes(self, sharded):
        _, client2 = sharded
        server1, client1 = start_sharded(shards=1)
        try:
            for source in (PROGRAM, OTHER):
                one = client1.analyze("predict", source)
                many = client2.analyze("predict", source)
                assert one["output"] == many["output"]
                assert one["key"] == many["key"]
        finally:
            server1.drain(timeout=10)


class TestShardCrash:
    def test_dead_shard_fails_pending_and_respawns(self, sharded):
        server, client = sharded
        victim = server.shards[0]
        old_pid = victim.process.pid
        # SIGKILL: shards ignore SIGTERM on purpose (drain protocol).
        victim.process.kill()
        victim.process.join(timeout=5)
        # The next request routed to the dead shard observes the EOF,
        # triggers a respawn, and subsequent requests succeed on the
        # replacement process.
        deadline_responses = []
        from repro.server.loadgen import make_corpus

        for source in make_corpus(8, offset=9000):
            try:
                deadline_responses.append(client.analyze("predict", source))
            except ServerError:
                deadline_responses.append(None)
        assert any(r is not None for r in deadline_responses)
        assert server.shards[0].process.is_alive()
        assert server.shards[0].process.pid != old_pid
        assert server.shards[0].restarts >= 1
        response = client.analyze("predict", PROGRAM)
        assert response["status"] == "ok"
